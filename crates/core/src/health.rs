//! Index self-verification: the checks behind the quarantine-and-degrade
//! lifecycle.
//!
//! A Planar index is *redundant* — every entry is recomputable from the
//! feature table and the index normal — so a corrupted index never has to
//! cost correctness: detect it, quarantine it, serve queries from the
//! remaining indices (or the exact scan fallback), and rebuild at leisure.
//! This module supplies the *detect* step:
//!
//! * [`SingleIndex::verify`] checks one index against the table it claims
//!   to describe — sorted-key invariant, finite keys, entry-count
//!   reconciliation against the live-point count, membership of every id,
//!   and sampled key recomputation;
//! * [`HealthIssue`] / [`IndexHealth`] / [`HealthReport`] describe what was
//!   found, per index and per set.
//!
//! The lifecycle verbs — `verify_all`, `quarantine`, `rebuild_quarantined`
//! — live on [`crate::PlanarIndexSet`]; quarantined indices are skipped by
//! the query planner, and when none remain usable, queries degrade to the
//! exact sequential scan with [`crate::ServedBy::Degraded`] provenance.

use crate::index::SingleIndex;
use crate::store::KeyStore;
use crate::table::FeatureTable;

/// Cap on recorded issues per index: verification is a diagnosis step, not
/// a full damage inventory, and a thoroughly corrupted index would
/// otherwise produce `O(n)` issue records.
pub const MAX_ISSUES_PER_INDEX: usize = 64;

/// One defect found while verifying a single Planar index.
#[derive(Debug, Clone, PartialEq)]
pub enum HealthIssue {
    /// Adjacent entries out of `(key, id)` order at this rank — the sorted
    /// list `L` invariant (paper §4.2) is broken, so rank queries lie.
    UnsortedKeys {
        /// Rank of the first entry that is smaller than its predecessor.
        rank: usize,
    },
    /// An entry's key is NaN or infinite; rank arithmetic on it is
    /// meaningless.
    NonFiniteKey {
        /// The id carrying the non-finite key.
        id: u32,
    },
    /// The index holds a different number of entries than there are live
    /// points.
    EntryCountMismatch {
        /// Live points in the set.
        expected: usize,
        /// Entries actually present in the index.
        found: usize,
    },
    /// An entry references an id that is out of range for the table or
    /// tombstoned — the index would resurrect deleted points.
    DeadOrUnknownId {
        /// The offending id.
        id: u32,
    },
    /// A sampled entry's stored key differs from `⟨c_raw, φ(x)⟩` recomputed
    /// from the current table row — the index answers queries about a point
    /// that is not where it says.
    KeyMismatch {
        /// The id whose key disagrees.
        id: u32,
        /// Key as stored in the index.
        stored: f64,
        /// Key recomputed from the table.
        computed: f64,
    },
}

impl core::fmt::Display for HealthIssue {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HealthIssue::UnsortedKeys { rank } => {
                write!(f, "entries out of order at rank {rank}")
            }
            HealthIssue::NonFiniteKey { id } => write!(f, "non-finite key for id {id}"),
            HealthIssue::EntryCountMismatch { expected, found } => {
                write!(f, "expected {expected} entries, found {found}")
            }
            HealthIssue::DeadOrUnknownId { id } => {
                write!(f, "entry references dead or unknown id {id}")
            }
            HealthIssue::KeyMismatch {
                id,
                stored,
                computed,
            } => write!(
                f,
                "stored key {stored} for id {id} but table gives {computed}"
            ),
        }
    }
}

/// Verification verdict for one index of a set.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexHealth {
    /// Position of the index within the set.
    pub pos: usize,
    /// Issues found; empty means the index passed every check. Capped at
    /// [`MAX_ISSUES_PER_INDEX`].
    pub issues: Vec<HealthIssue>,
}

impl IndexHealth {
    /// True when no issues were found.
    pub fn is_healthy(&self) -> bool {
        self.issues.is_empty()
    }
}

/// Verification verdict for a whole [`crate::PlanarIndexSet`].
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// One verdict per index, in position order.
    pub indices: Vec<IndexHealth>,
}

impl HealthReport {
    /// True when every index passed.
    pub fn healthy(&self) -> bool {
        self.indices.iter().all(IndexHealth::is_healthy)
    }

    /// Positions of the indices that failed verification.
    pub fn failing_positions(&self) -> Vec<usize> {
        self.indices
            .iter()
            .filter(|h| !h.is_healthy())
            .map(|h| h.pos)
            .collect()
    }
}

/// Verification verdict for a whole [`crate::ShardedIndexSet`]: one
/// [`HealthReport`] per shard, in shard order.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedHealthReport {
    /// Per-shard verdicts.
    pub shards: Vec<HealthReport>,
}

impl ShardedHealthReport {
    /// True when every index of every shard passed.
    pub fn healthy(&self) -> bool {
        self.shards.iter().all(HealthReport::healthy)
    }

    /// `(shard, failing index positions)` for every shard with at least
    /// one failing index, ascending by shard.
    pub fn failing(&self) -> Vec<(usize, Vec<usize>)> {
        self.shards
            .iter()
            .enumerate()
            .filter_map(|(s, r)| {
                let failing = r.failing_positions();
                (!failing.is_empty()).then_some((s, failing))
            })
            .collect()
    }
}

impl<S: KeyStore> SingleIndex<S> {
    /// Verify this index against the table it describes.
    ///
    /// Checks, in one pass over the entries:
    ///
    /// 1. the sorted-key invariant (`(key, id)` total order);
    /// 2. every key finite;
    /// 3. every id in range and live (`deleted[id] == false`);
    /// 4. entry count equal to `expected_len` (the live-point count);
    /// 5. for roughly `key_samples` evenly spaced entries, the stored key
    ///    numerically equal to `⟨c_raw, φ(x)⟩` recomputed from the table
    ///    (numeric equality, so a canonicalized `0.0` matches a recomputed
    ///    `-0.0`).
    ///
    /// Returns all issues found, capped at [`MAX_ISSUES_PER_INDEX`]. An
    /// empty vector means healthy. `key_samples == 0` skips check 5.
    pub fn verify(
        &self,
        table: &FeatureTable,
        deleted: &[bool],
        expected_len: usize,
        key_samples: usize,
    ) -> Vec<HealthIssue> {
        let mut issues = Vec::new();
        let n = self.len();
        // `None` disables check 5 entirely; `rank % usize::MAX == 0` would
        // still sample rank 0.
        let stride = (key_samples > 0).then(|| (n / key_samples).max(1));
        let mut prev: Option<crate::store::Entry> = None;
        for (rank, e) in self.entries().enumerate() {
            if issues.len() >= MAX_ISSUES_PER_INDEX {
                return issues;
            }
            if let Some(p) = prev {
                if p.total_cmp(&e) == core::cmp::Ordering::Greater {
                    issues.push(HealthIssue::UnsortedKeys { rank });
                }
            }
            prev = Some(e);
            if !e.key.is_finite() {
                issues.push(HealthIssue::NonFiniteKey { id: e.id });
                continue;
            }
            let id = e.id as usize;
            if id >= table.len() || deleted.get(id).copied().unwrap_or(false) {
                issues.push(HealthIssue::DeadOrUnknownId { id: e.id });
                continue;
            }
            if stride.is_some_and(|s| rank % s == 0) {
                let computed = self.raw_key(table.row(e.id));
                if e.key != computed {
                    issues.push(HealthIssue::KeyMismatch {
                        id: e.id,
                        stored: e.key,
                        computed,
                    });
                }
            }
        }
        if n != expected_len && issues.len() < MAX_ISSUES_PER_INDEX {
            issues.push(HealthIssue::EntryCountMismatch {
                expected: expected_len,
                found: n,
            });
        }
        issues
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::HeapSize;
    use crate::store::{Entry, KeyStore, VecStore};
    use planar_geom::Normalizer;

    fn table() -> FeatureTable {
        FeatureTable::from_rows(
            2,
            vec![
                vec![1.0, 2.0],
                vec![3.0, 1.0],
                vec![2.0, 2.0],
                vec![5.0, 4.0],
            ],
        )
        .unwrap()
    }

    fn healthy_index(table: &FeatureTable) -> SingleIndex<VecStore> {
        SingleIndex::build(table, &Normalizer::identity(2), vec![1.0, 1.0]).unwrap()
    }

    #[test]
    fn healthy_index_passes_all_checks() {
        let t = table();
        let idx = healthy_index(&t);
        let deleted = vec![false; t.len()];
        assert!(idx.verify(&t, &deleted, t.len(), t.len()).is_empty());
    }

    #[test]
    fn entry_count_mismatch_is_reported() {
        let t = table();
        let idx = healthy_index(&t);
        let deleted = vec![false; t.len()];
        let issues = idx.verify(&t, &deleted, t.len() - 1, 0);
        assert_eq!(
            issues,
            vec![HealthIssue::EntryCountMismatch {
                expected: t.len() - 1,
                found: t.len(),
            }]
        );
    }

    #[test]
    fn dead_and_unknown_ids_are_reported() {
        let t = table();
        let idx = healthy_index(&t);
        let mut deleted = vec![false; t.len()];
        deleted[2] = true; // tombstoned but still indexed
        let issues = idx.verify(&t, &deleted, t.len() - 1, 0);
        assert!(issues.contains(&HealthIssue::DeadOrUnknownId { id: 2 }));
        // EntryCountMismatch too: 4 entries vs 3 live.
        assert!(issues
            .iter()
            .any(|i| matches!(i, HealthIssue::EntryCountMismatch { .. })));
    }

    #[test]
    fn key_mismatch_is_caught_by_sampling() {
        let t = table();
        let norm = Normalizer::identity(2);
        // Store claims id 1 has key 999 instead of 4.
        let entries = vec![
            Entry::new(3.0, 0),
            Entry::new(4.0, 2),
            Entry::new(9.0, 3),
            Entry::new(999.0, 1),
        ];
        let idx = SingleIndex::from_parts(
            vec![1.0, 1.0],
            norm.raw_normal(&[1.0, 1.0]),
            VecStore::build(entries),
        );
        let deleted = vec![false; t.len()];
        let issues = idx.verify(&t, &deleted, t.len(), t.len());
        assert!(issues.contains(&HealthIssue::KeyMismatch {
            id: 1,
            stored: 999.0,
            computed: 4.0,
        }));
    }

    #[test]
    fn zero_key_samples_skips_recomputation_even_at_rank_zero() {
        let t = table();
        let norm = Normalizer::identity(2);
        // Rank 0 carries a wrong (but order-preserving) key: 2.5 vs the
        // true 3.0. Check 5 must stay silent with key_samples == 0 and
        // fire with sampling on.
        let entries = vec![
            Entry::new(2.5, 0),
            Entry::new(4.0, 1),
            Entry::new(4.0, 2),
            Entry::new(9.0, 3),
        ];
        let idx = SingleIndex::from_parts(
            vec![1.0, 1.0],
            norm.raw_normal(&[1.0, 1.0]),
            VecStore::build(entries),
        );
        let deleted = vec![false; t.len()];
        assert!(idx.verify(&t, &deleted, t.len(), 0).is_empty());
        assert!(idx
            .verify(&t, &deleted, t.len(), t.len())
            .contains(&HealthIssue::KeyMismatch {
                id: 0,
                stored: 2.5,
                computed: 3.0,
            }));
    }

    #[test]
    fn non_finite_keys_are_reported() {
        let t = table();
        let norm = Normalizer::identity(2);
        let entries = vec![Entry::new(3.0, 0), Entry::new(f64::INFINITY, 1)];
        let idx = SingleIndex::from_parts(
            vec![1.0, 1.0],
            norm.raw_normal(&[1.0, 1.0]),
            VecStore::build(entries),
        );
        let deleted = vec![false; t.len()];
        let issues = idx.verify(&t, &deleted, 2, 0);
        assert!(issues.contains(&HealthIssue::NonFiniteKey { id: 1 }));
    }

    /// A deliberately trusting store that preserves build order, so the
    /// sorted-invariant check can actually be exercised (the real stores
    /// sort on build).
    #[derive(Debug)]
    struct RawStore(Vec<Entry>);

    impl HeapSize for RawStore {
        fn heap_size(&self) -> usize {
            self.0.capacity() * core::mem::size_of::<Entry>()
        }
    }

    impl KeyStore for RawStore {
        fn build(entries: Vec<Entry>) -> Self {
            Self(entries) // no sort: trusts its input
        }
        fn len(&self) -> usize {
            self.0.len()
        }
        fn rank_leq(&self, threshold: f64) -> usize {
            self.0.iter().filter(|e| e.key <= threshold).count()
        }
        fn rank_lt(&self, threshold: f64) -> usize {
            self.0.iter().filter(|e| e.key < threshold).count()
        }
        fn iter_asc(&self, from: usize, to: usize) -> impl Iterator<Item = Entry> + '_ {
            self.0[from..to].iter().copied()
        }
        fn iter_desc(&self, below: usize) -> impl Iterator<Item = Entry> + '_ {
            self.0[..below].iter().rev().copied()
        }
        fn insert(&mut self, e: Entry) {
            self.0.push(e);
        }
        fn remove(&mut self, e: Entry) -> bool {
            match self.0.iter().position(|x| x.total_cmp(&e).is_eq()) {
                Some(i) => {
                    self.0.remove(i);
                    true
                }
                None => false,
            }
        }
    }

    #[test]
    fn unsorted_entries_are_reported() {
        let t = table();
        let norm = Normalizer::identity(2);
        let entries = vec![Entry::new(9.0, 3), Entry::new(3.0, 0)];
        let idx = SingleIndex::from_parts(
            vec![1.0, 1.0],
            norm.raw_normal(&[1.0, 1.0]),
            RawStore::build(entries),
        );
        let deleted = vec![false; t.len()];
        let issues = idx.verify(&t, &deleted, 2, 0);
        assert!(issues.contains(&HealthIssue::UnsortedKeys { rank: 1 }));
    }

    #[test]
    fn report_aggregates_positions() {
        let report = HealthReport {
            indices: vec![
                IndexHealth {
                    pos: 0,
                    issues: vec![],
                },
                IndexHealth {
                    pos: 1,
                    issues: vec![HealthIssue::NonFiniteKey { id: 7 }],
                },
            ],
        };
        assert!(!report.healthy());
        assert_eq!(report.failing_positions(), vec![1]);
        assert_eq!(
            format!("{}", HealthIssue::NonFiniteKey { id: 7 }),
            "non-finite key for id 7"
        );
    }
}
