//! Crash-safe index persistence: a versioned, checksummed, *sectioned*
//! binary format with partial recovery.
//!
//! Index construction is loglinear (§4.2), but for large budgets over
//! millions of points a cold rebuild still costs tens of seconds; restart
//! recovery should not pay it. The format stores the feature table, the
//! parameter domain, tombstones, the selection strategy, every index
//! normal, **and every index's sorted key array** — so loading is a linear
//! pass (the stores are bulk-loaded from already-sorted entries) instead of
//! `O(budget · n log n)` of re-sorting.
//!
//! ## `PLNRIDX2` layout (all little-endian)
//!
//! ```text
//! magic "PLNRIDX2" | flags u32 | core_len u64
//! core section (core_len bytes):
//!     dim u32 | n u64
//!     table data: n·dim f64
//!     tombstones: n bytes (0/1)
//!     domain: axes u32, per axis tag u8 (0 discrete, 1 continuous) + payload
//!     strategy u8 | index count u32
//!     normals: count·dim f64
//!     quarantine flags: count bytes (0/1)
//!     index section lengths: count u64
//!     quantization policy (only when flags bit 0x1): tier tag u8 | slack f64
//! crc64 of the core section
//! per index i: section of length lens[i] —
//!     entry count u64 | entries (key f64, id u32)… | crc64 of the section
//!     minus its trailing crc
//! ```
//!
//! The *core* section holds everything needed to rebuild any index from
//! scratch (rows + normals), plus the framing (`lens`) of the per-index
//! sections — all under one CRC. Each index's entry array sits in its own
//! CRC-framed section, so a flipped bit or torn tail corrupts **one index**,
//! not the file: [`PlanarIndexSet::from_bytes_recover`] quarantines the bad
//! section(s) and [`PlanarIndexSet::load_or_recover`] rebuilds them from the
//! (intact) core. Version-1 files (`PLNRIDX1`, a single whole-file CRC) are
//! still readable — all-or-nothing, as they were written.
//!
//! Saving is atomic: bytes go to a temp file in the target's directory,
//! fsync, rename over the target, fsync the directory — with bounded
//! retry/backoff on transient IO errors ([`SaveOptions`]). A crash at any
//! point leaves either the old snapshot or the new one, never a torn file
//! at the target path.
//!
//! The normalizer is *not* stored: refitting it from the table reproduces
//! deltas that cover every stored row, which is the only property
//! correctness needs (keys are raw-space; see `planar_geom::translation`).

use crate::domain::{Domain, ParameterDomain};
use crate::fault::{SnapshotIo, StdIo};
use crate::multi::PlanarIndexSet;
use crate::quant::{QuantPolicy, QuantTier};
use crate::selection::SelectionStrategy;
use crate::shard::{Partitioner, ShardedIndexSet};
use crate::store::{Entry, KeyStore};
use crate::table::FeatureTable;
use crate::{PlanarError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const MAGIC_V1: &[u8; 8] = b"PLNRIDX1";
const MAGIC_V2: &[u8; 8] = b"PLNRIDX2";
/// Sharded manifest: a partitioner + assignment core wrapping one full
/// `PLNRIDX2` snapshot per shard (see [`ShardedIndexSet::to_bytes`]).
const MAGIC_SHARD: &[u8; 8] = b"PLNRSHD1";
/// magic + flags + core_len.
const V2_PREAMBLE: usize = 8 + 4 + 8;
/// Flags bit: the CRC-protected core ends with a quantization policy
/// (tier tag `u8` + slack `f64`). Snapshots written before the quantized
/// tier existed — and snapshots of sets with the tier off — clear the bit
/// and omit the bytes, so both directions stay compatible: old readers
/// never see the trailing bytes, new readers of old files default to
/// [`QuantTier::Off`].
const FLAG_QUANT_POLICY: u32 = 0x1;

/// CRC-64/XZ for integrity checking — the shared framing checksum of
/// [`crate::frame`], re-exported for this module's call sites.
pub(crate) use crate::frame::crc64;

fn corrupt(msg: impl Into<String>) -> PlanarError {
    PlanarError::Persist(msg.into())
}

/// Defensive bound: `count` items of `item_bytes` each must fit in the
/// remaining buffer *before* any allocation sized by `count` happens, so a
/// corrupted length field cannot trigger a multi-GB allocation.
fn check_fits(buf: &Bytes, count: usize, item_bytes: usize, what: &str) -> Result<usize> {
    let total = count
        .checked_mul(item_bytes)
        .ok_or_else(|| corrupt(format!("{what}: length overflows")))?;
    if buf.remaining() < total {
        return Err(corrupt(format!(
            "{what}: claims {total} bytes, only {} remain",
            buf.remaining()
        )));
    }
    Ok(total)
}

fn need(buf: &Bytes, bytes: usize, what: &str) -> Result<()> {
    if buf.remaining() < bytes {
        return Err(corrupt(format!("truncated {what}")));
    }
    Ok(())
}

fn put_domain(buf: &mut BytesMut, d: &Domain) {
    match d {
        Domain::Discrete(vals) => {
            buf.put_u8(0);
            buf.put_u32_le(vals.len() as u32);
            for v in vals {
                buf.put_f64_le(*v);
            }
        }
        Domain::Continuous { lo, hi } => {
            buf.put_u8(1);
            buf.put_f64_le(*lo);
            buf.put_f64_le(*hi);
        }
    }
}

fn get_domain(buf: &mut Bytes) -> Result<Domain> {
    need(buf, 1, "domain")?;
    match buf.get_u8() {
        0 => {
            need(buf, 4, "discrete domain")?;
            let k = buf.get_u32_le() as usize;
            check_fits(buf, k, 8, "discrete domain values")?;
            Ok(Domain::Discrete((0..k).map(|_| buf.get_f64_le()).collect()))
        }
        1 => {
            need(buf, 16, "continuous domain")?;
            Ok(Domain::Continuous {
                lo: buf.get_f64_le(),
                hi: buf.get_f64_le(),
            })
        }
        t => Err(corrupt(format!("unknown domain tag {t}"))),
    }
}

fn strategy_tag(s: SelectionStrategy) -> u8 {
    match s {
        SelectionStrategy::MinStretch => 0,
        SelectionStrategy::MinAngle => 1,
        SelectionStrategy::OracleCount => 2,
    }
}

fn strategy_from_tag(t: u8) -> Result<SelectionStrategy> {
    match t {
        0 => Ok(SelectionStrategy::MinStretch),
        1 => Ok(SelectionStrategy::MinAngle),
        2 => Ok(SelectionStrategy::OracleCount),
        other => Err(corrupt(format!("unknown strategy tag {other}"))),
    }
}

/// Durability knobs for [`PlanarIndexSet::save_to_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaveOptions {
    /// How many times to retry the temp-write + rename after a transient IO
    /// failure (so `retries + 1` attempts in total).
    pub retries: u32,
    /// Initial sleep between attempts; doubles after each failure.
    pub backoff: Duration,
}

impl Default for SaveOptions {
    fn default() -> Self {
        Self {
            retries: 3,
            backoff: Duration::from_millis(10),
        }
    }
}

impl SaveOptions {
    /// Override the retry count.
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Override the initial backoff.
    pub fn backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }

    /// No retries, no sleeping — for tests and latency-critical callers.
    pub fn fail_fast() -> Self {
        Self {
            retries: 0,
            backoff: Duration::ZERO,
        }
    }
}

/// What [`PlanarIndexSet::from_bytes_recover`] /
/// [`PlanarIndexSet::load_or_recover`] found and did.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Format version of the snapshot (1 or 2).
    pub version: u32,
    /// Indices recorded in the snapshot.
    pub total_indices: usize,
    /// Indices whose sections verified and were loaded intact.
    pub loaded: usize,
    /// Positions quarantined by *this* load because their section was
    /// corrupt or truncated.
    pub quarantined: Vec<usize>,
    /// Positions that were already flagged quarantined when the snapshot
    /// was written.
    pub already_quarantined: Vec<usize>,
    /// Positions rebuilt from the table after loading (only
    /// [`PlanarIndexSet::load_or_recover`] rebuilds).
    pub rebuilt: Vec<usize>,
    /// WAL records replayed on top of the snapshot (only
    /// [`PlanarIndexSet::open_durable`] replays; 0 for plain loads).
    pub wal_replayed: usize,
    /// Structurally complete WAL records dropped because they sit at or
    /// after the first invalid frame (CRC mismatch / torn write).
    pub wal_dropped: usize,
    /// Torn trailing bytes truncated from the WAL — a crash mid-write,
    /// detected and repaired, never an error.
    pub wal_torn_bytes: usize,
    /// LSN watermark after recovery: every record at or below it is
    /// reflected in the returned state.
    pub wal_watermark: u64,
}

impl RecoveryReport {
    /// True when nothing was corrupt or quarantined: the snapshot loaded
    /// exactly as written, all indices usable.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
            && self.already_quarantined.is_empty()
            && self.rebuilt.is_empty()
    }
}

/// Atomic snapshot write shared by the single-set and sharded savers: each
/// attempt writes the full byte image to a uniquely named temp file in the
/// target's directory (durably: write + fsync) and renames it over the
/// target, retrying transient failures with doubling backoff. The target
/// path always holds either the previous snapshot or the complete new one.
/// Also used by `crate::wal` for its `CHECKPOINT` manifest.
pub(crate) fn atomic_save(
    bytes: &[u8],
    path: &Path,
    io: &mut dyn SnapshotIo,
    opts: &SaveOptions,
) -> Result<()> {
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let file_name = path
        .file_name()
        .ok_or_else(|| corrupt(format!("invalid save path {}", path.display())))?;
    let tmp = path.with_file_name(format!(
        ".{}.tmp.{}.{}",
        file_name.to_string_lossy(),
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let mut delay = opts.backoff;
    let mut last_err = String::new();
    for attempt in 0..=opts.retries {
        if attempt > 0 && !delay.is_zero() {
            std::thread::sleep(delay);
            delay = delay.saturating_mul(2);
        }
        match io
            .write_file(&tmp, bytes)
            .and_then(|()| io.rename(&tmp, path))
        {
            Ok(()) => return Ok(()),
            Err(e) => {
                last_err = e.to_string();
                let _ = io.remove_file(&tmp);
            }
        }
    }
    Err(corrupt(format!(
        "save failed after {} attempt(s): {last_err}",
        opts.retries + 1
    )))
}

/// Replication bootstrap: atomically install already-serialized snapshot
/// bytes at `path`. The replica received the image over the wire and has
/// no in-memory set to serialize, so this is [`atomic_save`] on raw bytes;
/// callers validate the image (e.g. `ShardedIndexSet::from_bytes`)
/// *before* installing so a corrupt ship never lands on disk.
pub(crate) fn install_snapshot_bytes(path: &Path, bytes: &[u8], opts: &SaveOptions) -> Result<()> {
    atomic_save(bytes, path, &mut crate::fault::StdIo, opts)
}

/// The CRC-protected core section, parsed.
struct CoreParts {
    table: FeatureTable,
    tombstones: Vec<bool>,
    domain: ParameterDomain,
    strategy: SelectionStrategy,
    normals: Vec<Vec<f64>>,
    quarantined: Vec<bool>,
    section_lens: Vec<usize>,
    quant: QuantPolicy,
}

fn parse_core(core: &[u8], flags: u32) -> Result<CoreParts> {
    let mut buf = Bytes::copy_from_slice(core);
    need(&buf, 12, "core header")?;
    let dim = buf.get_u32_le() as usize;
    let n = buf.get_u64_le() as usize;
    if dim == 0 {
        return Err(corrupt("zero dimensionality"));
    }
    // Rows (8·dim bytes each) + one tombstone byte per row must fit before
    // the table is allocated.
    let row_bytes = dim
        .checked_mul(8)
        .and_then(|b| b.checked_add(1))
        .ok_or_else(|| corrupt("table row size overflows"))?;
    check_fits(&buf, n, row_bytes, "table")?;
    let mut table = FeatureTable::with_capacity(dim, n)?;
    let mut row = vec![0.0; dim];
    for _ in 0..n {
        for slot in row.iter_mut() {
            *slot = buf.get_f64_le();
        }
        table.push_row(&row)?;
    }
    let mut tombstones = Vec::with_capacity(n);
    for _ in 0..n {
        tombstones.push(buf.get_u8() != 0);
    }
    need(&buf, 4, "domain count")?;
    let axes = buf.get_u32_le() as usize;
    if axes != dim {
        return Err(corrupt("domain dimensionality mismatch"));
    }
    let domain = ParameterDomain::new(
        (0..axes)
            .map(|_| get_domain(&mut buf))
            .collect::<Result<Vec<_>>>()?,
    )?;
    need(&buf, 5, "strategy/index count")?;
    let strategy = strategy_from_tag(buf.get_u8())?;
    let index_count = buf.get_u32_le() as usize;
    if index_count == 0 {
        return Err(corrupt("index set must contain at least one index"));
    }
    // normals (8·dim) + quarantine flag (1) + section length (8) per index.
    let per_index = dim
        .checked_mul(8)
        .and_then(|b| b.checked_add(9))
        .ok_or_else(|| corrupt("index descriptor size overflows"))?;
    check_fits(&buf, index_count, per_index, "index descriptors")?;
    let mut normals = Vec::with_capacity(index_count);
    for _ in 0..index_count {
        normals.push((0..dim).map(|_| buf.get_f64_le()).collect::<Vec<f64>>());
    }
    let mut quarantined = Vec::with_capacity(index_count);
    for _ in 0..index_count {
        quarantined.push(buf.get_u8() != 0);
    }
    let mut section_lens = Vec::with_capacity(index_count);
    for _ in 0..index_count {
        let len = buf.get_u64_le();
        section_lens.push(usize::try_from(len).map_err(|_| corrupt("section length overflows"))?);
    }
    let quant = if flags & FLAG_QUANT_POLICY != 0 {
        need(&buf, 9, "quantization policy")?;
        let tier = QuantTier::from_tag(buf.get_u8())
            .ok_or_else(|| corrupt("unknown quantization tier tag"))?;
        let slack = buf.get_f64_le();
        if !(slack.is_finite() && slack >= 1.0) {
            return Err(corrupt("quantization slack must be finite and >= 1"));
        }
        QuantPolicy { tier, slack }
    } else {
        QuantPolicy::off()
    };
    if buf.has_remaining() {
        return Err(corrupt("trailing bytes in core section"));
    }
    Ok(CoreParts {
        table,
        tombstones,
        domain,
        strategy,
        normals,
        quarantined,
        section_lens,
        quant,
    })
}

/// Parse one per-index section (`entry count | entries | crc`); `Err` means
/// the section is corrupt/truncated and the index must be quarantined.
fn parse_index_section(section: &[u8]) -> Result<Vec<Entry>> {
    if section.len() < 16 {
        return Err(corrupt("index section too short"));
    }
    let payload = crate::frame::open_sealed(section)
        .ok_or_else(|| corrupt("index section checksum mismatch"))?;
    let mut buf = Bytes::copy_from_slice(payload);
    let count = buf.get_u64_le() as usize;
    let total = check_fits(&buf, count, 12, "index entries")?;
    if total != buf.remaining() {
        return Err(corrupt("index section length disagrees with entry count"));
    }
    Ok((0..count)
        .map(|_| {
            let key = buf.get_f64_le();
            let id = buf.get_u32_le();
            Entry::new(key, id)
        })
        .collect())
}

/// Shared v2 load: parse the core strictly, then handle each index section
/// per `recover` (strict mode errors on the first bad section; recover mode
/// quarantines it and keeps going).
fn load_v2<S: KeyStore>(data: &[u8], recover: bool) -> Result<(PlanarIndexSet<S>, RecoveryReport)> {
    let mut buf = Bytes::copy_from_slice(&data[8..V2_PREAMBLE]);
    let flags = buf.get_u32_le();
    let core_len = buf.get_u64_le() as usize;
    let core_start = V2_PREAMBLE;
    let crc_end = crate::frame::sealed_end(core_start, core_len, data.len())
        .ok_or_else(|| corrupt("truncated core section"))?;
    let core = crate::frame::open_sealed(&data[core_start..crc_end])
        .ok_or_else(|| corrupt("core section checksum mismatch"))?;
    let parts = parse_core(core, flags)?;

    let mut report = RecoveryReport {
        version: 2,
        total_indices: parts.normals.len(),
        ..RecoveryReport::default()
    };
    for (pos, &q) in parts.quarantined.iter().enumerate() {
        if q {
            report.already_quarantined.push(pos);
        }
    }

    let mut entry_lists = Vec::with_capacity(parts.normals.len());
    let mut quarantined = parts.quarantined.clone();
    let mut offset = crc_end;
    for (pos, &len) in parts.section_lens.iter().enumerate() {
        let end = offset.checked_add(len);
        let section = end.filter(|&e| e <= data.len()).map(|e| &data[offset..e]);
        let parsed = match section {
            Some(bytes) => parse_index_section(bytes),
            None => Err(corrupt(format!("index section {pos} extends past EOF"))),
        };
        match parsed {
            Ok(entries) => entry_lists.push(entries),
            Err(e) => {
                if !recover {
                    return Err(e);
                }
                // Quarantine: keep the slot with no entries; the normal in
                // the core is enough to rebuild later.
                if !quarantined[pos] {
                    report.quarantined.push(pos);
                }
                quarantined[pos] = true;
                entry_lists.push(Vec::new());
            }
        }
        offset = offset.saturating_add(len);
    }
    if !recover && offset != data.len() {
        return Err(corrupt("trailing bytes after index sections"));
    }
    report.loaded = report.total_indices - report.quarantined.len();

    let mut set = PlanarIndexSet::assemble(
        parts.table,
        parts.domain,
        parts.strategy,
        parts.tombstones,
        parts.normals,
        entry_lists,
        quarantined,
    )?;
    if parts.quant.tier != QuantTier::Off {
        // Re-encode the quantized mirror from the freshly parsed rows —
        // only the policy is persisted, never the codes, so a bit flip in
        // the mirror can't survive a round trip.
        set.set_quant_policy(parts.quant);
    }
    Ok((set, report))
}

/// Load a `PLNRIDX1` (whole-file CRC) snapshot: all-or-nothing, as written.
fn load_v1<S: KeyStore>(data: &[u8]) -> Result<(PlanarIndexSet<S>, RecoveryReport)> {
    let body = crate::frame::open_sealed(data).ok_or_else(|| corrupt("checksum mismatch"))?;
    let mut buf = Bytes::copy_from_slice(&body[8..]);
    need(&buf, 16, "header")?;
    let _flags = buf.get_u32_le();
    let dim = buf.get_u32_le() as usize;
    let n = buf.get_u64_le() as usize;
    if dim == 0 {
        return Err(corrupt("zero dimensionality"));
    }
    let row_bytes = dim
        .checked_mul(8)
        .and_then(|b| b.checked_add(1))
        .ok_or_else(|| corrupt("table row size overflows"))?;
    check_fits(&buf, n, row_bytes, "table")?;
    let mut table = FeatureTable::with_capacity(dim, n)?;
    let mut row = vec![0.0; dim];
    for _ in 0..n {
        for slot in row.iter_mut() {
            *slot = buf.get_f64_le();
        }
        table.push_row(&row)?;
    }
    let mut tombstones = Vec::with_capacity(n);
    for _ in 0..n {
        tombstones.push(buf.get_u8() != 0);
    }
    need(&buf, 4, "domain count")?;
    let axes = buf.get_u32_le() as usize;
    if axes != dim {
        return Err(corrupt("domain dimensionality mismatch"));
    }
    let domain = ParameterDomain::new(
        (0..axes)
            .map(|_| get_domain(&mut buf))
            .collect::<Result<Vec<_>>>()?,
    )?;
    need(&buf, 5, "strategy/index count")?;
    let strategy = strategy_from_tag(buf.get_u8())?;
    let index_count = buf.get_u32_le() as usize;
    if index_count == 0 {
        return Err(corrupt("index set must contain at least one index"));
    }
    let mut normals = Vec::with_capacity(index_count);
    let mut entry_lists = Vec::with_capacity(index_count);
    for _ in 0..index_count {
        need(&buf, dim * 8 + 8, "index header")?;
        let normal: Vec<f64> = (0..dim).map(|_| buf.get_f64_le()).collect();
        let count = buf.get_u64_le() as usize;
        check_fits(&buf, count, 12, "index entries")?;
        let entries: Vec<Entry> = (0..count)
            .map(|_| {
                let key = buf.get_f64_le();
                let id = buf.get_u32_le();
                Entry::new(key, id)
            })
            .collect();
        normals.push(normal);
        entry_lists.push(entries);
    }
    let total = normals.len();
    let set = PlanarIndexSet::assemble(
        table,
        domain,
        strategy,
        tombstones,
        normals,
        entry_lists,
        vec![false; total],
    )?;
    let report = RecoveryReport {
        version: 1,
        total_indices: total,
        loaded: total,
        ..RecoveryReport::default()
    };
    Ok((set, report))
}

impl<S: KeyStore> PlanarIndexSet<S> {
    /// Serialize the full index set to bytes (`PLNRIDX2`: sectioned, one
    /// CRC for the core, one per index).
    pub fn to_bytes(&self) -> Bytes {
        let n = self.table().len();
        let dim = self.dim();
        let count = self.num_indices();

        // Per-index sections first, so the core can record their framing.
        let mut sections: Vec<BytesMut> = Vec::with_capacity(count);
        for pos in 0..count {
            let idx = self.index_at(pos).expect("pos < num_indices");
            let mut sec = BytesMut::with_capacity(16 + idx.len() * 12);
            sec.put_u64_le(idx.len() as u64);
            for e in idx.entries() {
                sec.put_f64_le(e.key);
                sec.put_u32_le(e.id);
            }
            crate::frame::seal_buf(&mut sec);
            sections.push(sec);
        }

        let mut core = BytesMut::with_capacity(32 + n * (dim * 8 + 1) + count * (dim * 8 + 9));
        core.put_u32_le(dim as u32);
        core.put_u64_le(n as u64);
        for (_, row) in self.table().iter() {
            for &v in row {
                core.put_f64_le(v);
            }
        }
        for id in 0..n as u32 {
            core.put_u8(u8::from(!self.is_live(id)));
        }
        core.put_u32_le(self.domain().dim() as u32);
        for d in self.domain().axes() {
            put_domain(&mut core, d);
        }
        core.put_u8(strategy_tag(self.strategy()));
        core.put_u32_le(count as u32);
        for pos in 0..count {
            let idx = self.index_at(pos).expect("pos < num_indices");
            for &c in idx.normal() {
                core.put_f64_le(c);
            }
        }
        for pos in 0..count {
            core.put_u8(u8::from(self.is_quarantined(pos)));
        }
        for sec in &sections {
            core.put_u64_le(sec.len() as u64);
        }
        let policy = self.quant_policy();
        let mut flags = 0u32;
        if policy.tier != QuantTier::Off {
            flags |= FLAG_QUANT_POLICY;
            core.put_u8(policy.tier.tag());
            core.put_f64_le(policy.slack);
        }

        let total: usize =
            V2_PREAMBLE + core.len() + 8 + sections.iter().map(|s| s.len()).sum::<usize>();
        let mut buf = BytesMut::with_capacity(total);
        buf.put_slice(MAGIC_V2);
        buf.put_u32_le(flags);
        buf.put_u64_le(core.len() as u64);
        let core_crc = crc64(&core);
        buf.put_slice(&core);
        buf.put_u64_le(core_crc);
        for sec in sections {
            buf.put_slice(&sec);
        }
        buf.freeze()
    }

    /// Deserialize an index set previously written by [`Self::to_bytes`]
    /// (either format version). Strict: **any** corrupt section is an
    /// error. Use [`Self::from_bytes_recover`] to salvage what verifies.
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] on truncation, bad magic, version/tag
    /// mismatches, or checksum failure of any section.
    pub fn from_bytes(data: &[u8]) -> Result<Self> {
        match Self::dispatch_magic(data)? {
            2 => load_v2(data, false).map(|(set, _)| set),
            _ => load_v1(data).map(|(set, _)| set),
        }
    }

    /// Deserialize, salvaging everything whose checksum verifies.
    ///
    /// The core section (table, domains, normals, framing) must be intact —
    /// without it nothing is trustworthy. A corrupt or truncated per-index
    /// section quarantines that one index (empty, flagged, skipped by the
    /// planner) instead of failing the load; its normal survives in the
    /// core, so [`Self::rebuild_quarantined`] can restore it. The report
    /// says exactly what happened. v1 snapshots have a single whole-file
    /// CRC and are therefore all-or-nothing.
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] when the preamble or core section is
    /// unreadable.
    pub fn from_bytes_recover(data: &[u8]) -> Result<(Self, RecoveryReport)> {
        match Self::dispatch_magic(data)? {
            2 => load_v2(data, true),
            _ => load_v1(data),
        }
    }

    fn dispatch_magic(data: &[u8]) -> Result<u32> {
        if data.len() < V2_PREAMBLE {
            return Err(corrupt("file too short"));
        }
        match &data[..8] {
            m if m == MAGIC_V2 => Ok(2),
            m if m == MAGIC_V1 => Ok(1),
            _ => Err(corrupt("bad magic (not a planar index file)")),
        }
    }

    /// Write to a file atomically (temp file + fsync + rename) with the
    /// default retry policy.
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] wrapping the last I/O failure after all
    /// retries are exhausted.
    pub fn save_to(&self, path: impl AsRef<Path>) -> Result<()> {
        self.save_to_with(path, &mut StdIo, &SaveOptions::default())
    }

    /// [`Self::save_to`] with an explicit IO layer and retry policy.
    ///
    /// Each attempt writes the full snapshot to a uniquely named temp file
    /// in the target's directory (durably: write + fsync) and renames it
    /// over the target. Transient failures are retried up to `opts.retries`
    /// times with doubling backoff; the temp file is removed best-effort
    /// after a failed attempt. The target path therefore always holds
    /// either the previous snapshot or the complete new one.
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] wrapping the last I/O failure.
    pub fn save_to_with(
        &self,
        path: impl AsRef<Path>,
        io: &mut dyn SnapshotIo,
        opts: &SaveOptions,
    ) -> Result<()> {
        atomic_save(&self.to_bytes(), path.as_ref(), io, opts)
    }

    /// Read from a file written by [`Self::save_to`]. Strict — see
    /// [`Self::from_bytes`]; use [`Self::load_or_recover`] for the
    /// salvaging path.
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] on I/O or format problems.
    pub fn load_from(path: impl AsRef<Path>) -> Result<Self> {
        let data = std::fs::read(path).map_err(|e| corrupt(format!("read failed: {e}")))?;
        Self::from_bytes(&data)
    }

    /// Load a snapshot, quarantining corrupt index sections and rebuilding
    /// them from the (intact) core — the restart-recovery entry point.
    ///
    /// Equivalent to [`Self::from_bytes_recover`] on the file's bytes
    /// followed by [`Self::rebuild_quarantined`]; the report's `rebuilt`
    /// records which positions were restored. After a clean return every
    /// index is usable, even if the file was partially corrupt.
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] when the file is unreadable or its core
    /// section does not verify.
    pub fn load_or_recover(path: impl AsRef<Path>) -> Result<(Self, RecoveryReport)> {
        let data = std::fs::read(path).map_err(|e| corrupt(format!("read failed: {e}")))?;
        let (mut set, mut report) = Self::from_bytes_recover(&data)?;
        report.rebuilt = set.rebuild_quarantined();
        Ok((set, report))
    }
}

// ---------------------------------------------------------------------------
// Sharded manifest (PLNRSHD1)
// ---------------------------------------------------------------------------
//
// ```text
// magic "PLNRSHD1" | flags u32 | core_len u64
// core section (core_len bytes):
//     partitioner tag u8 (0 round-robin, 1 pilot-key range) | shards u32
//     range only: dim u32 | pilot dim·f64 | splits (shards−1)·f64
//     n_global u64 | per global id: shard u32, local u32
// crc64 of the core section
// per shard s: section_len u64 | a full PLNRIDX2 snapshot | crc64 of it
// ```
//
// Damage containment is two-level. The outer per-shard CRC localizes
// corruption to one shard without parsing it; the wrapped PLNRIDX2 bytes
// carry their own core + per-index CRCs, so recovery re-enters
// [`PlanarIndexSet::from_bytes_recover`] and loses *at most the damaged
// index sections of the damaged shard*. A shard whose inner core (its rows)
// is corrupt fails the whole load: shards share nothing, so no other
// replica of those rows exists in the file.

/// What [`ShardedIndexSet::from_bytes_recover`] /
/// [`ShardedIndexSet::load_or_recover`] found and did: one
/// [`RecoveryReport`] per shard, in shard order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardedRecoveryReport {
    /// Per-shard recovery reports.
    pub shards: Vec<RecoveryReport>,
    /// WAL records replayed across all shards (only
    /// [`ShardedIndexSet::open_durable`] replays; 0 for plain loads).
    pub wal_replayed: usize,
    /// WAL records dropped at or after the first invalid frame, summed
    /// across shards.
    pub wal_dropped: usize,
    /// Torn trailing bytes truncated, summed across shards.
    pub wal_torn_bytes: usize,
    /// Per-shard LSN watermarks after replay (empty for plain loads):
    /// `shard_watermarks[s]` is the last LSN applied to shard `s`.
    pub shard_watermarks: Vec<u64>,
}

impl ShardedRecoveryReport {
    /// True when every shard loaded exactly as written.
    pub fn is_clean(&self) -> bool {
        self.shards.iter().all(RecoveryReport::is_clean)
    }

    /// `(shard, quarantined index positions)` for every shard where this
    /// load quarantined something, ascending by shard.
    pub fn quarantined(&self) -> Vec<(usize, Vec<usize>)> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.quarantined.is_empty())
            .map(|(s, r)| (s, r.quarantined.clone()))
            .collect()
    }
}

fn parse_shard_core(core: &[u8]) -> Result<(Partitioner, Vec<(u32, u32)>)> {
    let mut buf = Bytes::copy_from_slice(core);
    need(&buf, 5, "shard core header")?;
    let tag = buf.get_u8();
    let shards = buf.get_u32_le() as usize;
    if shards == 0 {
        return Err(corrupt("zero shard count"));
    }
    let partitioner = match tag {
        0 => Partitioner::RoundRobin { shards },
        1 => {
            need(&buf, 4, "pilot dimension")?;
            let dim = buf.get_u32_le() as usize;
            if dim == 0 {
                return Err(corrupt("zero pilot dimensionality"));
            }
            check_fits(&buf, dim, 8, "pilot vector")?;
            let pilot: Vec<f64> = (0..dim).map(|_| buf.get_f64_le()).collect();
            check_fits(&buf, shards - 1, 8, "split keys")?;
            let splits: Vec<f64> = (0..shards - 1).map(|_| buf.get_f64_le()).collect();
            if splits.iter().any(|v| !v.is_finite()) || splits.windows(2).any(|w| w[0] > w[1]) {
                return Err(corrupt("split keys not finite ascending"));
            }
            Partitioner::PilotKeyRange { pilot, splits }
        }
        t => return Err(corrupt(format!("unknown partitioner tag {t}"))),
    };
    need(&buf, 8, "assignment count")?;
    let n = buf.get_u64_le() as usize;
    check_fits(&buf, n, 8, "assignment")?;
    let assignment: Vec<(u32, u32)> = (0..n)
        .map(|_| {
            let shard = buf.get_u32_le();
            let local = buf.get_u32_le();
            (shard, local)
        })
        .collect();
    if buf.has_remaining() {
        return Err(corrupt("trailing bytes in shard core section"));
    }
    Ok((partitioner, assignment))
}

fn load_sharded<S: KeyStore>(
    data: &[u8],
    recover: bool,
) -> Result<(ShardedIndexSet<S>, ShardedRecoveryReport)> {
    let mut buf = Bytes::copy_from_slice(&data[8..V2_PREAMBLE]);
    let _flags = buf.get_u32_le();
    let core_len = buf.get_u64_le() as usize;
    let core_start = V2_PREAMBLE;
    let crc_end = crate::frame::sealed_end(core_start, core_len, data.len())
        .ok_or_else(|| corrupt("truncated shard core section"))?;
    let core = crate::frame::open_sealed(&data[core_start..crc_end])
        .ok_or_else(|| corrupt("shard core section checksum mismatch"))?;
    let (partitioner, assignment) = parse_shard_core(core)?;

    let mut sets = Vec::with_capacity(partitioner.shards());
    let mut reports = Vec::with_capacity(partitioner.shards());
    let mut offset = crc_end;
    for s in 0..partitioner.shards() {
        let header_end = offset
            .checked_add(8)
            .filter(|&e| e <= data.len())
            .ok_or_else(|| corrupt(format!("truncated shard {s} section header")))?;
        let len = u64::from_le_bytes(
            data[offset..header_end]
                .try_into()
                .map_err(|_| corrupt("bad shard section length"))?,
        );
        let len = usize::try_from(len).map_err(|_| corrupt("shard section length overflows"))?;
        let sec_end = crate::frame::sealed_end(header_end, len, data.len())
            .ok_or_else(|| corrupt(format!("shard {s} section extends past EOF")))?;
        let body = &data[header_end..sec_end - crate::frame::CRC_LEN];
        if crate::frame::open_sealed(&data[header_end..sec_end]).is_none() && !recover {
            return Err(corrupt(format!("shard {s} section checksum mismatch")));
        }
        // Even with a failed outer CRC, the wrapped PLNRIDX2 bytes carry
        // their own section CRCs — recovery descends and salvages every
        // index section that still verifies.
        if recover {
            let (set, report) = PlanarIndexSet::from_bytes_recover(body)
                .map_err(|e| corrupt(format!("shard {s}: {e}")))?;
            sets.push(set);
            reports.push(report);
        } else {
            sets.push(
                PlanarIndexSet::from_bytes(body).map_err(|e| corrupt(format!("shard {s}: {e}")))?,
            );
            reports.push(RecoveryReport::default());
        }
        offset = sec_end;
    }
    if !recover && offset != data.len() {
        return Err(corrupt("trailing bytes after shard sections"));
    }
    let set = ShardedIndexSet::assemble_shards(sets, partitioner, assignment)?;
    Ok((
        set,
        ShardedRecoveryReport {
            shards: reports,
            ..ShardedRecoveryReport::default()
        },
    ))
}

impl<S: KeyStore> ShardedIndexSet<S> {
    /// Serialize the sharded set: a `PLNRSHD1` manifest wrapping one full
    /// `PLNRIDX2` snapshot per shard, each in its own CRC-framed section,
    /// with the partitioner and the global→(shard, local) assignment in
    /// the CRC-protected core.
    pub fn to_bytes(&self) -> Bytes {
        let sections: Vec<Bytes> = (0..self.num_shards())
            .map(|s| self.shard(s).expect("s < num_shards").to_bytes())
            .collect();

        let assignment = self.assignment();
        let mut core = BytesMut::with_capacity(32 + assignment.len() * 8);
        match self.partitioner() {
            Partitioner::RoundRobin { shards } => {
                core.put_u8(0);
                core.put_u32_le(*shards as u32);
            }
            Partitioner::PilotKeyRange { pilot, splits } => {
                core.put_u8(1);
                core.put_u32_le((splits.len() + 1) as u32);
                core.put_u32_le(pilot.len() as u32);
                for &v in pilot {
                    core.put_f64_le(v);
                }
                for &v in splits {
                    core.put_f64_le(v);
                }
            }
        }
        core.put_u64_le(assignment.len() as u64);
        for &(shard, local) in assignment {
            core.put_u32_le(shard);
            core.put_u32_le(local);
        }

        let total: usize =
            V2_PREAMBLE + core.len() + 8 + sections.iter().map(|s| s.len() + 16).sum::<usize>();
        let mut buf = BytesMut::with_capacity(total);
        buf.put_slice(MAGIC_SHARD);
        buf.put_u32_le(0); // flags, reserved
        buf.put_u64_le(core.len() as u64);
        let core_crc = crc64(&core);
        buf.put_slice(&core);
        buf.put_u64_le(core_crc);
        for sec in sections {
            buf.put_u64_le(sec.len() as u64);
            let crc = crc64(&sec);
            buf.put_slice(&sec);
            buf.put_u64_le(crc);
        }
        buf.freeze()
    }

    /// Deserialize a sharded snapshot written by [`Self::to_bytes`].
    /// Strict: any corrupt section anywhere is an error.
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] on truncation, bad magic, or checksum
    /// failure of any section, outer or inner.
    pub fn from_bytes(data: &[u8]) -> Result<Self> {
        Self::check_magic(data)?;
        load_sharded(data, false).map(|(set, _)| set)
    }

    /// Deserialize, salvaging everything whose checksums verify.
    ///
    /// The manifest core (partitioner + assignment) and every shard's inner
    /// core (its rows) must be intact — shards share nothing, so a shard's
    /// rows exist nowhere else in the file. Corrupt per-index sections
    /// inside any shard quarantine those indices only (see
    /// [`PlanarIndexSet::from_bytes_recover`]); the per-shard reports say
    /// exactly what happened where.
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] when the preamble, the manifest core, or
    /// any shard's inner core is unreadable.
    pub fn from_bytes_recover(data: &[u8]) -> Result<(Self, ShardedRecoveryReport)> {
        Self::check_magic(data)?;
        load_sharded(data, true)
    }

    fn check_magic(data: &[u8]) -> Result<()> {
        if data.len() < V2_PREAMBLE {
            return Err(corrupt("file too short"));
        }
        if &data[..8] != MAGIC_SHARD {
            return Err(corrupt("bad magic (not a sharded planar index file)"));
        }
        Ok(())
    }

    /// Write to a file atomically (temp file + fsync + rename) with the
    /// default retry policy.
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] wrapping the last I/O failure after all
    /// retries are exhausted.
    pub fn save_to(&self, path: impl AsRef<Path>) -> Result<()> {
        self.save_to_with(path, &mut StdIo, &SaveOptions::default())
    }

    /// [`Self::save_to`] with an explicit IO layer and retry policy — the
    /// same atomic temp-write + rename + bounded-backoff machinery as
    /// [`PlanarIndexSet::save_to_with`].
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] wrapping the last I/O failure.
    pub fn save_to_with(
        &self,
        path: impl AsRef<Path>,
        io: &mut dyn SnapshotIo,
        opts: &SaveOptions,
    ) -> Result<()> {
        atomic_save(&self.to_bytes(), path.as_ref(), io, opts)
    }

    /// Read from a file written by [`Self::save_to`]. Strict — see
    /// [`Self::from_bytes`].
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] on I/O or format problems.
    pub fn load_from(path: impl AsRef<Path>) -> Result<Self> {
        let data = std::fs::read(path).map_err(|e| corrupt(format!("read failed: {e}")))?;
        Self::from_bytes(&data)
    }

    /// Load a sharded snapshot, quarantining corrupt index sections in any
    /// shard and rebuilding them from that shard's (intact) rows — the
    /// restart-recovery entry point. The per-shard reports record the
    /// rebuilt positions.
    ///
    /// # Errors
    ///
    /// Same as [`Self::from_bytes_recover`].
    pub fn load_or_recover(path: impl AsRef<Path>) -> Result<(Self, ShardedRecoveryReport)> {
        let data = std::fs::read(path).map_err(|e| corrupt(format!("read failed: {e}")))?;
        let (mut set, mut report) = Self::from_bytes_recover(&data)?;
        for (shard, rebuilt) in set.rebuild_quarantined() {
            report.shards[shard].rebuilt = rebuilt;
        }
        Ok((set, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Corruption, FaultyIo, IoFault, TempDir};
    use crate::multi::IndexConfig;
    use crate::query::InequalityQuery;
    use crate::store::VecStore;
    use crate::DynamicPlanarIndexSet;

    fn sample_set() -> PlanarIndexSet<VecStore> {
        let rows: Vec<Vec<f64>> = (0..500)
            .map(|i| vec![1.0 + (i % 13) as f64, -(1.0 + (i % 7) as f64)])
            .collect();
        let table = FeatureTable::from_rows(2, rows).unwrap();
        let domain = ParameterDomain::new(vec![
            Domain::Continuous { lo: 0.5, hi: 2.0 },
            Domain::Discrete(vec![-1.0, -2.0]),
        ])
        .unwrap();
        let mut set = PlanarIndexSet::build(table, domain, IndexConfig::with_budget(6)).unwrap();
        set.delete_point(7).unwrap();
        set.delete_point(123).unwrap();
        set
    }

    /// Serialize in the legacy PLNRIDX1 layout (whole-file CRC), for
    /// backward-compatibility tests — the writer itself always emits v2.
    fn to_bytes_v1<S: KeyStore>(set: &PlanarIndexSet<S>) -> Vec<u8> {
        let n = set.table().len();
        let dim = set.dim();
        let mut buf = BytesMut::with_capacity(64 + n * dim * 8 + n);
        buf.put_slice(MAGIC_V1);
        buf.put_u32_le(0);
        buf.put_u32_le(dim as u32);
        buf.put_u64_le(n as u64);
        for (_, row) in set.table().iter() {
            for &v in row {
                buf.put_f64_le(v);
            }
        }
        for id in 0..n as u32 {
            buf.put_u8(u8::from(!set.is_live(id)));
        }
        buf.put_u32_le(set.domain().dim() as u32);
        for d in set.domain().axes() {
            put_domain(&mut buf, d);
        }
        buf.put_u8(strategy_tag(set.strategy()));
        buf.put_u32_le(set.num_indices() as u32);
        for pos in 0..set.num_indices() {
            let idx = set.index_at(pos).unwrap();
            for &c in idx.normal() {
                buf.put_f64_le(c);
            }
            let entries: Vec<Entry> = idx.entries().collect();
            buf.put_u64_le(entries.len() as u64);
            for e in entries {
                buf.put_f64_le(e.key);
                buf.put_u32_le(e.id);
            }
        }
        let checksum = crc64(&buf);
        buf.put_u64_le(checksum);
        buf.to_vec()
    }

    #[test]
    fn roundtrip_preserves_answers_and_structure() {
        let set = sample_set();
        let bytes = set.to_bytes();
        assert_eq!(&bytes[..8], MAGIC_V2);
        let loaded = PlanarIndexSet::<VecStore>::from_bytes(&bytes).unwrap();
        assert_eq!(loaded.len(), set.len());
        assert_eq!(loaded.num_indices(), set.num_indices());
        assert_eq!(loaded.strategy(), set.strategy());
        for (a, b) in set.normals().zip(loaded.normals()) {
            assert_eq!(a, b);
        }
        for b in [-30.0, -5.0, 0.0, 5.0, 30.0] {
            let q = InequalityQuery::leq(vec![1.0, -1.5], b).unwrap();
            let want = set.query(&q).unwrap();
            let got = loaded.query(&q).unwrap();
            assert_eq!(got.sorted_ids(), want.sorted_ids(), "b={b}");
            assert_eq!(got.stats.used_index(), want.stats.used_index());
        }
    }

    #[test]
    fn v1_files_still_load() {
        let set = sample_set();
        let v1 = to_bytes_v1(&set);
        let loaded = PlanarIndexSet::<VecStore>::from_bytes(&v1).unwrap();
        assert_eq!(loaded.len(), set.len());
        assert_eq!(loaded.num_indices(), set.num_indices());
        let q = InequalityQuery::leq(vec![1.0, -1.5], 3.0).unwrap();
        assert_eq!(
            loaded.query(&q).unwrap().sorted_ids(),
            set.query(&q).unwrap().sorted_ids()
        );
        // Recovery on v1 is all-or-nothing; clean file → clean report.
        let (_, report) = PlanarIndexSet::<VecStore>::from_bytes_recover(&v1).unwrap();
        assert_eq!(report.version, 1);
        assert!(report.is_clean());
        let mut bad = v1;
        let mid = bad.len() / 2;
        bad[mid] ^= 0x10;
        assert!(PlanarIndexSet::<VecStore>::from_bytes_recover(&bad).is_err());
    }

    #[test]
    fn roundtrip_across_store_types() {
        // Serialize a Vec-backed set, load as a B+-tree-backed set: the
        // format is store-agnostic.
        let set = sample_set();
        let loaded = DynamicPlanarIndexSet::from_bytes(&set.to_bytes()).unwrap();
        let q = InequalityQuery::leq(vec![1.0, -1.0], 3.0).unwrap();
        assert_eq!(
            loaded.query(&q).unwrap().sorted_ids(),
            set.query(&q).unwrap().sorted_ids()
        );
        // And the loaded dynamic set accepts updates.
        let mut loaded = loaded;
        loaded.insert_point(&[1.0, -1.0]).unwrap();
        assert_eq!(loaded.len(), set.len() + 1);
    }

    #[test]
    fn corruption_is_detected() {
        let set = sample_set();
        let good = set.to_bytes().to_vec();
        // Flip a byte in the middle.
        let mut bad = good.clone();
        bad[good.len() / 2] ^= 0xFF;
        assert!(matches!(
            PlanarIndexSet::<VecStore>::from_bytes(&bad),
            Err(PlanarError::Persist(_))
        ));
        // Truncate.
        assert!(PlanarIndexSet::<VecStore>::from_bytes(&good[..40]).is_err());
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(PlanarIndexSet::<VecStore>::from_bytes(&bad).is_err());
        // Empty input.
        assert!(PlanarIndexSet::<VecStore>::from_bytes(&[]).is_err());
    }

    #[test]
    fn corrupt_index_section_is_quarantined_not_fatal() {
        let set = sample_set();
        let mut bytes = set.to_bytes().to_vec();
        // The last 20 bytes are inside the final index section's entries.
        let off = bytes.len() - 20;
        Corruption::BitFlip {
            offset: off,
            bit: 3,
        }
        .apply(&mut bytes);

        // Strict load refuses.
        assert!(PlanarIndexSet::<VecStore>::from_bytes(&bytes).is_err());

        // Recovering load quarantines exactly the damaged index.
        let (recovered, report) = PlanarIndexSet::<VecStore>::from_bytes_recover(&bytes).unwrap();
        assert_eq!(report.version, 2);
        assert_eq!(report.total_indices, set.num_indices());
        assert_eq!(report.quarantined, vec![set.num_indices() - 1]);
        assert_eq!(report.loaded, set.num_indices() - 1);
        assert!(!report.is_clean());

        // Rebuild restores it; answers match the original exactly.
        let mut recovered = recovered;
        assert_eq!(recovered.rebuild_quarantined(), vec![set.num_indices() - 1]);
        for b in [-30.0, 0.0, 30.0] {
            let q = InequalityQuery::leq(vec![1.0, -1.5], b).unwrap();
            assert_eq!(
                recovered.query(&q).unwrap().sorted_ids(),
                set.query(&q).unwrap().sorted_ids(),
                "b={b}"
            );
        }
    }

    #[test]
    fn corrupt_core_section_is_fatal_even_in_recovery() {
        let set = sample_set();
        let mut bytes = set.to_bytes().to_vec();
        Corruption::BitFlip { offset: 40, bit: 0 }.apply(&mut bytes); // table row area
        assert!(PlanarIndexSet::<VecStore>::from_bytes_recover(&bytes).is_err());
    }

    #[test]
    fn huge_claimed_lengths_do_not_allocate() {
        let set = sample_set();
        let bytes = set.to_bytes().to_vec();
        // Patch n (core offset 4) to an absurd value and re-seal the core
        // CRC, so the defensive length check — not the checksum — must
        // reject it.
        let core_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
        let mut bad = bytes.clone();
        bad[V2_PREAMBLE + 4..V2_PREAMBLE + 12].copy_from_slice(&u64::MAX.to_le_bytes());
        let crc = crc64(&bad[V2_PREAMBLE..V2_PREAMBLE + core_len]);
        bad[V2_PREAMBLE + core_len..V2_PREAMBLE + core_len + 8].copy_from_slice(&crc.to_le_bytes());
        let err = PlanarIndexSet::<VecStore>::from_bytes(&bad).unwrap_err();
        assert!(matches!(err, PlanarError::Persist(_)), "{err:?}");
    }

    #[test]
    fn crafted_core_len_near_usize_max_is_rejected() {
        // core_len values in this window pass `core_start + core_len` but
        // would overflow `core_end + 8`; bit flips of a small real length
        // can never reach it, so it gets an explicit crafted case. Both
        // loaders must return a typed error, never panic or wrap.
        for core_len in [u64::MAX, u64::MAX - 25, u64::MAX - (V2_PREAMBLE as u64 + 7)] {
            let mut bad = Vec::with_capacity(84);
            bad.extend_from_slice(MAGIC_V2);
            bad.extend_from_slice(&0u32.to_le_bytes()); // flags
            bad.extend_from_slice(&core_len.to_le_bytes());
            bad.resize(84, 0);
            let err = PlanarIndexSet::<VecStore>::from_bytes(&bad).unwrap_err();
            assert!(matches!(err, PlanarError::Persist(_)), "{err:?}");
            let err = PlanarIndexSet::<VecStore>::from_bytes_recover(&bad).unwrap_err();
            assert!(matches!(err, PlanarError::Persist(_)), "{err:?}");
        }
    }

    #[test]
    fn file_roundtrip() {
        let set = sample_set();
        let dir = TempDir::new("persist_file").unwrap();
        let path = dir.file("set.idx");
        set.save_to(&path).unwrap();
        let loaded = PlanarIndexSet::<VecStore>::load_from(&path).unwrap();
        assert_eq!(loaded.len(), set.len());
        assert!(PlanarIndexSet::<VecStore>::load_from("/nonexistent/x.idx").is_err());
    }

    #[test]
    fn save_retries_through_transient_failures() {
        let set = sample_set();
        let dir = TempDir::new("persist_retry").unwrap();
        let path = dir.file("set.idx");
        let mut io = FaultyIo::new(vec![IoFault::FailNthWrite(0)]);
        let opts = SaveOptions::fail_fast().retries(2);
        set.save_to_with(&path, &mut io, &opts).unwrap();
        assert_eq!(io.fired(), &[IoFault::FailNthWrite(0)]);
        let loaded = PlanarIndexSet::<VecStore>::load_from(&path).unwrap();
        assert_eq!(loaded.len(), set.len());
    }

    #[test]
    fn save_gives_up_after_retry_budget() {
        let set = sample_set();
        let dir = TempDir::new("persist_giveup").unwrap();
        let path = dir.file("set.idx");
        let mut io = FaultyIo::new(vec![IoFault::CrashAfterWrites(0)]);
        let err = set
            .save_to_with(&path, &mut io, &SaveOptions::fail_fast().retries(1))
            .unwrap_err();
        assert!(matches!(err, PlanarError::Persist(_)));
        assert!(!path.exists(), "no torn file may appear at the target");
    }

    #[test]
    fn crash_mid_save_leaves_previous_snapshot_loadable() {
        let set = sample_set();
        let dir = TempDir::new("persist_crash").unwrap();
        let path = dir.file("set.idx");
        set.save_to(&path).unwrap();

        // A "newer" set crashes while saving over it.
        let mut newer = set.clone();
        newer.delete_point(0).unwrap();
        let mut io = FaultyIo::new(vec![IoFault::CrashAfterWrites(2)]);
        assert!(newer
            .save_to_with(&path, &mut io, &SaveOptions::fail_fast())
            .is_err());

        // The original snapshot is untouched and loads cleanly.
        let loaded = PlanarIndexSet::<VecStore>::load_from(&path).unwrap();
        assert_eq!(loaded.len(), set.len());
        assert!(loaded.is_live(0));
    }

    #[test]
    fn load_or_recover_rebuilds_and_reports() {
        let set = sample_set();
        let dir = TempDir::new("persist_recover").unwrap();
        let path = dir.file("set.idx");
        // Save through an IO layer that silently flips a bit near the end
        // of the file (inside the last index section).
        let len = set.to_bytes().len();
        let mut io = FaultyIo::new(vec![IoFault::CorruptWrite {
            nth: 0,
            offset: len - 20,
            bit: 5,
        }]);
        set.save_to_with(&path, &mut io, &SaveOptions::fail_fast())
            .unwrap();

        assert!(PlanarIndexSet::<VecStore>::load_from(&path).is_err());
        let (recovered, report) = PlanarIndexSet::<VecStore>::load_or_recover(&path).unwrap();
        assert_eq!(report.quarantined, vec![set.num_indices() - 1]);
        assert_eq!(report.rebuilt, vec![set.num_indices() - 1]);
        assert_eq!(recovered.quarantined_positions(), Vec::<usize>::new());
        let q = InequalityQuery::geq(vec![1.0, -1.0], -3.0).unwrap();
        assert_eq!(
            recovered.query(&q).unwrap().sorted_ids(),
            set.query(&q).unwrap().sorted_ids()
        );
    }

    #[test]
    fn quarantine_flags_survive_roundtrip() {
        let mut set = sample_set();
        set.quarantine(1);
        let bytes = set.to_bytes();
        let (loaded, report) = PlanarIndexSet::<VecStore>::from_bytes_recover(&bytes).unwrap();
        assert_eq!(report.already_quarantined, vec![1]);
        assert!(report.quarantined.is_empty());
        assert_eq!(loaded.quarantined_positions(), vec![1]);
    }

    #[test]
    fn quant_policy_survives_roundtrip() {
        let mut set = sample_set();
        set.set_quant_policy(QuantPolicy {
            tier: QuantTier::I16,
            slack: 2.0,
        });
        let bytes = set.to_bytes();
        let loaded = PlanarIndexSet::<VecStore>::from_bytes(&bytes).unwrap();
        assert_eq!(
            loaded.quant_policy(),
            QuantPolicy {
                tier: QuantTier::I16,
                slack: 2.0,
            }
        );
        // The mirror is rebuilt from the parsed rows, never deserialized.
        assert_eq!(loaded.table().quant(), set.table().quant());
        // Tier Off clears the flag and writes no trailing bytes, so the
        // file matches one written before the tier existed.
        let mut plain = sample_set();
        plain.set_quant_policy(QuantPolicy::off());
        let bytes = plain.to_bytes();
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 0);
        let loaded = PlanarIndexSet::<VecStore>::from_bytes(&bytes).unwrap();
        assert_eq!(loaded.quant_policy(), QuantPolicy::off());
    }

    #[test]
    fn corrupt_quant_policy_is_rejected() {
        let mut set = sample_set();
        set.set_quant_policy(QuantPolicy {
            tier: QuantTier::I8,
            slack: 1.0,
        });
        let bytes = set.to_bytes();
        let core_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
        // The policy is the last 9 core bytes; smash the tier tag and
        // re-seal the CRC so only the policy parse can object.
        let mut bad = bytes.to_vec();
        bad[V2_PREAMBLE + core_len - 9] = 0xEE;
        let crc = crc64(&bad[V2_PREAMBLE..V2_PREAMBLE + core_len]);
        bad[V2_PREAMBLE + core_len..V2_PREAMBLE + core_len + 8].copy_from_slice(&crc.to_le_bytes());
        let err = PlanarIndexSet::<VecStore>::from_bytes(&bad).unwrap_err();
        assert!(err.to_string().contains("quantization tier"), "{err}");
    }

    #[test]
    fn tombstones_survive_roundtrip() {
        let set = sample_set();
        let loaded = PlanarIndexSet::<VecStore>::from_bytes(&set.to_bytes()).unwrap();
        assert!(!loaded.is_live(7));
        assert!(!loaded.is_live(123));
        assert!(loaded.is_live(0));
        // Scans also exclude the tombstoned rows.
        let q = InequalityQuery::geq(vec![1.0, -1.0], -1e9).unwrap();
        assert_eq!(loaded.query_scan(&q).unwrap().matches.len(), 498);
    }

    // -- sharded manifest ---------------------------------------------------

    use crate::shard::{ShardConfig, ShardedIndexSet};

    fn sample_sharded(config: ShardConfig) -> ShardedIndexSet<VecStore> {
        let rows: Vec<Vec<f64>> = (0..500)
            .map(|i| vec![1.0 + (i % 13) as f64, -(1.0 + (i % 7) as f64)])
            .collect();
        let table = FeatureTable::from_rows(2, rows).unwrap();
        let domain = ParameterDomain::new(vec![
            Domain::Continuous { lo: 0.5, hi: 2.0 },
            Domain::Discrete(vec![-1.0, -2.0]),
        ])
        .unwrap();
        let mut set =
            ShardedIndexSet::build(table, domain, IndexConfig::with_budget(4), config).unwrap();
        set.delete_point(7).unwrap();
        set.delete_point(123).unwrap();
        set
    }

    #[test]
    fn sharded_roundtrip_preserves_answers_for_both_partitioners() {
        for config in [ShardConfig::round_robin(3), ShardConfig::pilot_key_range(3)] {
            let set = sample_sharded(config);
            let bytes = set.to_bytes();
            assert_eq!(&bytes[..8], MAGIC_SHARD);
            let loaded = ShardedIndexSet::<VecStore>::from_bytes(&bytes).unwrap();
            assert_eq!(loaded.len(), set.len());
            assert_eq!(loaded.num_shards(), 3);
            assert_eq!(loaded.partitioner(), set.partitioner());
            for b in [-30.0, -5.0, 0.0, 5.0, 30.0] {
                let q = InequalityQuery::leq(vec![1.0, -1.5], b).unwrap();
                assert_eq!(
                    loaded.query(&q).unwrap().sorted_ids(),
                    set.query(&q).unwrap().sorted_ids(),
                    "{config:?} b={b}"
                );
            }
            // Tombstones and mutation routing survive the roundtrip.
            let mut loaded = loaded;
            assert!(!loaded.is_live(7));
            assert_eq!(
                loaded.delete_point(7).unwrap_err(),
                PlanarError::PointNotFound(7)
            );
            loaded.insert_point(&[2.0, -2.0]).unwrap();
            assert_eq!(loaded.len(), set.len() + 1);
        }
    }

    #[test]
    fn corrupt_shard_index_section_recovers_to_that_shard_only() {
        let set = sample_sharded(ShardConfig::round_robin(3));
        let mut bytes = set.to_bytes().to_vec();
        // The file tail is inside the last shard's last index section.
        let off = bytes.len() - 30;
        Corruption::BitFlip {
            offset: off,
            bit: 2,
        }
        .apply(&mut bytes);

        assert!(ShardedIndexSet::<VecStore>::from_bytes(&bytes).is_err());
        let (recovered, report) = ShardedIndexSet::<VecStore>::from_bytes_recover(&bytes).unwrap();
        assert!(!report.is_clean());
        let quarantined = report.quarantined();
        assert_eq!(quarantined.len(), 1, "one shard affected: {quarantined:?}");
        assert_eq!(quarantined[0].0, 2, "only the last shard");
        assert!(report.shards[0].is_clean());
        assert!(report.shards[1].is_clean());

        // The quarantined shard still answers exactly (degraded or not).
        let q = InequalityQuery::leq(vec![1.0, -1.5], 3.0).unwrap();
        assert_eq!(
            recovered.query(&q).unwrap().sorted_ids(),
            set.query(&q).unwrap().sorted_ids()
        );
    }

    #[test]
    fn sharded_load_or_recover_rebuilds_and_reports() {
        let set = sample_sharded(ShardConfig::pilot_key_range(2));
        let dir = TempDir::new("persist_shard_recover").unwrap();
        let path = dir.file("set.shards");
        let len = set.to_bytes().len();
        let mut io = FaultyIo::new(vec![IoFault::CorruptWrite {
            nth: 0,
            offset: len - 30,
            bit: 4,
        }]);
        set.save_to_with(&path, &mut io, &SaveOptions::fail_fast())
            .unwrap();

        assert!(ShardedIndexSet::<VecStore>::load_from(&path).is_err());
        let (recovered, report) = ShardedIndexSet::<VecStore>::load_or_recover(&path).unwrap();
        assert_eq!(report.shards.len(), 2);
        assert!(!report.shards[1].quarantined.is_empty());
        assert_eq!(report.shards[1].rebuilt, report.shards[1].quarantined);
        assert!(recovered.quarantined_positions().is_empty());
        let q = InequalityQuery::geq(vec![1.0, -1.0], -3.0).unwrap();
        assert_eq!(
            recovered.query(&q).unwrap().sorted_ids(),
            set.query(&q).unwrap().sorted_ids()
        );
    }

    #[test]
    fn corrupt_shard_core_is_fatal_even_in_recovery() {
        let set = sample_sharded(ShardConfig::round_robin(2));
        let mut bytes = set.to_bytes().to_vec();
        // Offset 30 is inside the assignment array of the manifest core.
        Corruption::BitFlip { offset: 30, bit: 0 }.apply(&mut bytes);
        assert!(ShardedIndexSet::<VecStore>::from_bytes_recover(&bytes).is_err());
    }

    #[test]
    fn sharded_magic_does_not_cross_load() {
        let single = sample_set();
        let sharded = sample_sharded(ShardConfig::round_robin(2));
        assert!(ShardedIndexSet::<VecStore>::from_bytes(&single.to_bytes()).is_err());
        assert!(PlanarIndexSet::<VecStore>::from_bytes(&sharded.to_bytes()).is_err());
        assert!(ShardedIndexSet::<VecStore>::from_bytes(&[]).is_err());
    }

    #[test]
    fn sharded_save_is_atomic_under_crash() {
        let set = sample_sharded(ShardConfig::round_robin(2));
        let dir = TempDir::new("persist_shard_crash").unwrap();
        let path = dir.file("set.shards");
        set.save_to(&path).unwrap();

        let mut newer = set.clone();
        newer.delete_point(0).unwrap();
        let mut io = FaultyIo::new(vec![IoFault::CrashAfterWrites(2)]);
        assert!(newer
            .save_to_with(&path, &mut io, &SaveOptions::fail_fast())
            .is_err());

        let loaded = ShardedIndexSet::<VecStore>::load_from(&path).unwrap();
        assert_eq!(loaded.len(), set.len());
        assert!(loaded.is_live(0));
    }
}
