//! Index persistence: a versioned, checksummed binary format.
//!
//! Index construction is loglinear (§4.2), but for large budgets over
//! millions of points a cold rebuild still costs tens of seconds; restart
//! recovery should not pay it. The format stores the feature table, the
//! parameter domain, tombstones, the selection strategy, every index
//! normal, **and every index's sorted key array** — so loading is a linear
//! pass (the stores are bulk-loaded from already-sorted entries) instead of
//! `O(budget · n log n)` of re-sorting.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic "PLNRIDX1" | flags u32 | dim u32 | n u64
//! table data: n·dim f64
//! tombstones: n bytes (0/1)
//! domain: per axis — tag u8 (0 discrete, 1 continuous) + payload
//! strategy: u8
//! indices: count u32, per index — normal dim·f64, entry count u64,
//!          entries (key f64, id u32)…
//! crc64 of everything above
//! ```
//!
//! The normalizer is *not* stored: refitting it from the table reproduces
//! deltas that cover every stored row, which is the only property
//! correctness needs (keys are raw-space; see `planar_geom::translation`).

use crate::domain::{Domain, ParameterDomain};
use crate::multi::PlanarIndexSet;
use crate::selection::SelectionStrategy;
use crate::store::{Entry, KeyStore};
use crate::table::FeatureTable;
use crate::{PlanarError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 8] = b"PLNRIDX1";

/// CRC-64/XZ for integrity checking.
fn crc64(data: &[u8]) -> u64 {
    const POLY: u64 = 0xC96C_5795_D787_0F42; // reflected ECMA-182
    let mut crc = !0u64;
    for &byte in data {
        crc ^= byte as u64;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
        }
    }
    !crc
}

fn corrupt(msg: impl Into<String>) -> PlanarError {
    PlanarError::Persist(msg.into())
}

fn put_domain(buf: &mut BytesMut, d: &Domain) {
    match d {
        Domain::Discrete(vals) => {
            buf.put_u8(0);
            buf.put_u32_le(vals.len() as u32);
            for v in vals {
                buf.put_f64_le(*v);
            }
        }
        Domain::Continuous { lo, hi } => {
            buf.put_u8(1);
            buf.put_f64_le(*lo);
            buf.put_f64_le(*hi);
        }
    }
}

fn get_domain(buf: &mut Bytes) -> Result<Domain> {
    if buf.remaining() < 1 {
        return Err(corrupt("truncated domain"));
    }
    match buf.get_u8() {
        0 => {
            if buf.remaining() < 4 {
                return Err(corrupt("truncated discrete domain"));
            }
            let k = buf.get_u32_le() as usize;
            if buf.remaining() < k * 8 {
                return Err(corrupt("truncated discrete domain values"));
            }
            Ok(Domain::Discrete((0..k).map(|_| buf.get_f64_le()).collect()))
        }
        1 => {
            if buf.remaining() < 16 {
                return Err(corrupt("truncated continuous domain"));
            }
            Ok(Domain::Continuous {
                lo: buf.get_f64_le(),
                hi: buf.get_f64_le(),
            })
        }
        t => Err(corrupt(format!("unknown domain tag {t}"))),
    }
}

fn strategy_tag(s: SelectionStrategy) -> u8 {
    match s {
        SelectionStrategy::MinStretch => 0,
        SelectionStrategy::MinAngle => 1,
        SelectionStrategy::OracleCount => 2,
    }
}

fn strategy_from_tag(t: u8) -> Result<SelectionStrategy> {
    match t {
        0 => Ok(SelectionStrategy::MinStretch),
        1 => Ok(SelectionStrategy::MinAngle),
        2 => Ok(SelectionStrategy::OracleCount),
        other => Err(corrupt(format!("unknown strategy tag {other}"))),
    }
}

impl<S: KeyStore> PlanarIndexSet<S> {
    /// Serialize the full index set to bytes.
    pub fn to_bytes(&self) -> Bytes {
        let n = self.table().len();
        let dim = self.dim();
        let mut buf = BytesMut::with_capacity(64 + n * dim * 8 + n);
        buf.put_slice(MAGIC);
        buf.put_u32_le(0); // flags, reserved
        buf.put_u32_le(dim as u32);
        buf.put_u64_le(n as u64);
        for (_, row) in self.table().iter() {
            for &v in row {
                buf.put_f64_le(v);
            }
        }
        for id in 0..n as u32 {
            buf.put_u8(u8::from(!self.is_live(id)));
        }
        buf.put_u32_le(self.domain().dim() as u32);
        for d in self.domain().axes() {
            put_domain(&mut buf, d);
        }
        buf.put_u8(strategy_tag(self.strategy()));
        buf.put_u32_le(self.num_indices() as u32);
        for pos in 0..self.num_indices() {
            let idx = self.index_at(pos).expect("in range");
            for &c in idx.normal() {
                buf.put_f64_le(c);
            }
            let entries: Vec<Entry> = idx.entries().collect();
            buf.put_u64_le(entries.len() as u64);
            for e in entries {
                buf.put_f64_le(e.key);
                buf.put_u32_le(e.id);
            }
        }
        let checksum = crc64(&buf);
        buf.put_u64_le(checksum);
        buf.freeze()
    }

    /// Deserialize an index set previously written by [`Self::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] on truncation, bad magic, version/tag
    /// mismatches, or checksum failure.
    pub fn from_bytes(data: &[u8]) -> Result<Self> {
        if data.len() < MAGIC.len() + 8 {
            return Err(corrupt("file too short"));
        }
        let (body, tail) = data.split_at(data.len() - 8);
        let stored_crc = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
        if crc64(body) != stored_crc {
            return Err(corrupt("checksum mismatch"));
        }
        let mut buf = Bytes::copy_from_slice(body);
        let mut magic = [0u8; 8];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(corrupt("bad magic (not a planar index file)"));
        }
        let _flags = buf.get_u32_le();
        let dim = buf.get_u32_le() as usize;
        let n = buf.get_u64_le() as usize;
        if dim == 0 {
            return Err(corrupt("zero dimensionality"));
        }
        if buf.remaining() < n * dim * 8 + n {
            return Err(corrupt("truncated table"));
        }
        let mut table = FeatureTable::with_capacity(dim, n)?;
        let mut row = vec![0.0; dim];
        for _ in 0..n {
            for slot in row.iter_mut() {
                *slot = buf.get_f64_le();
            }
            table.push_row(&row)?;
        }
        let mut tombstones = Vec::with_capacity(n);
        for _ in 0..n {
            tombstones.push(buf.get_u8() != 0);
        }
        if buf.remaining() < 4 {
            return Err(corrupt("truncated domain count"));
        }
        let axes = buf.get_u32_le() as usize;
        if axes != dim {
            return Err(corrupt("domain dimensionality mismatch"));
        }
        let domain = ParameterDomain::new(
            (0..axes)
                .map(|_| get_domain(&mut buf))
                .collect::<Result<Vec<_>>>()?,
        )?;
        if buf.remaining() < 5 {
            return Err(corrupt("truncated strategy/index count"));
        }
        let strategy = strategy_from_tag(buf.get_u8())?;
        let index_count = buf.get_u32_le() as usize;
        let mut normals = Vec::with_capacity(index_count);
        let mut entry_lists = Vec::with_capacity(index_count);
        for _ in 0..index_count {
            if buf.remaining() < dim * 8 + 8 {
                return Err(corrupt("truncated index header"));
            }
            let normal: Vec<f64> = (0..dim).map(|_| buf.get_f64_le()).collect();
            let count = buf.get_u64_le() as usize;
            if buf.remaining() < count * 12 {
                return Err(corrupt("truncated index entries"));
            }
            let entries: Vec<Entry> = (0..count)
                .map(|_| {
                    let key = buf.get_f64_le();
                    let id = buf.get_u32_le();
                    Entry::new(key, id)
                })
                .collect();
            normals.push(normal);
            entry_lists.push(entries);
        }
        if index_count == 0 {
            return Err(corrupt("index set must contain at least one index"));
        }
        PlanarIndexSet::assemble(table, domain, strategy, tombstones, normals, entry_lists)
    }

    /// Write to a file.
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] wrapping I/O failures.
    pub fn save_to(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        std::fs::write(path, self.to_bytes()).map_err(|e| corrupt(format!("write failed: {e}")))
    }

    /// Read from a file written by [`Self::save_to`].
    ///
    /// # Errors
    ///
    /// [`PlanarError::Persist`] on I/O or format problems.
    pub fn load_from(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let data = std::fs::read(path).map_err(|e| corrupt(format!("read failed: {e}")))?;
        Self::from_bytes(&data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi::IndexConfig;
    use crate::query::InequalityQuery;
    use crate::store::VecStore;
    use crate::DynamicPlanarIndexSet;

    fn sample_set() -> PlanarIndexSet<VecStore> {
        let rows: Vec<Vec<f64>> = (0..500)
            .map(|i| vec![1.0 + (i % 13) as f64, -(1.0 + (i % 7) as f64)])
            .collect();
        let table = FeatureTable::from_rows(2, rows).unwrap();
        let domain = ParameterDomain::new(vec![
            Domain::Continuous { lo: 0.5, hi: 2.0 },
            Domain::Discrete(vec![-1.0, -2.0]),
        ])
        .unwrap();
        let mut set = PlanarIndexSet::build(table, domain, IndexConfig::with_budget(6)).unwrap();
        set.delete_point(7).unwrap();
        set.delete_point(123).unwrap();
        set
    }

    #[test]
    fn roundtrip_preserves_answers_and_structure() {
        let set = sample_set();
        let bytes = set.to_bytes();
        let loaded = PlanarIndexSet::<VecStore>::from_bytes(&bytes).unwrap();
        assert_eq!(loaded.len(), set.len());
        assert_eq!(loaded.num_indices(), set.num_indices());
        assert_eq!(loaded.strategy(), set.strategy());
        for (a, b) in set.normals().zip(loaded.normals()) {
            assert_eq!(a, b);
        }
        for b in [-30.0, -5.0, 0.0, 5.0, 30.0] {
            let q = InequalityQuery::leq(vec![1.0, -1.5], b).unwrap();
            let want = set.query(&q).unwrap();
            let got = loaded.query(&q).unwrap();
            assert_eq!(got.sorted_ids(), want.sorted_ids(), "b={b}");
            assert_eq!(got.stats.used_index(), want.stats.used_index());
        }
    }

    #[test]
    fn roundtrip_across_store_types() {
        // Serialize a Vec-backed set, load as a B+-tree-backed set: the
        // format is store-agnostic.
        let set = sample_set();
        let loaded = DynamicPlanarIndexSet::from_bytes(&set.to_bytes()).unwrap();
        let q = InequalityQuery::leq(vec![1.0, -1.0], 3.0).unwrap();
        assert_eq!(
            loaded.query(&q).unwrap().sorted_ids(),
            set.query(&q).unwrap().sorted_ids()
        );
        // And the loaded dynamic set accepts updates.
        let mut loaded = loaded;
        loaded.insert_point(&[1.0, -1.0]).unwrap();
        assert_eq!(loaded.len(), set.len() + 1);
    }

    #[test]
    fn corruption_is_detected() {
        let set = sample_set();
        let good = set.to_bytes().to_vec();
        // Flip a byte in the middle.
        let mut bad = good.clone();
        bad[good.len() / 2] ^= 0xFF;
        assert!(matches!(
            PlanarIndexSet::<VecStore>::from_bytes(&bad),
            Err(PlanarError::Persist(_))
        ));
        // Truncate.
        assert!(PlanarIndexSet::<VecStore>::from_bytes(&good[..40]).is_err());
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(PlanarIndexSet::<VecStore>::from_bytes(&bad).is_err());
        // Empty input.
        assert!(PlanarIndexSet::<VecStore>::from_bytes(&[]).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let set = sample_set();
        let path =
            std::env::temp_dir().join(format!("planar_persist_test_{}.idx", std::process::id()));
        set.save_to(&path).unwrap();
        let loaded = PlanarIndexSet::<VecStore>::load_from(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.len(), set.len());
        assert!(PlanarIndexSet::<VecStore>::load_from("/nonexistent/x.idx").is_err());
    }

    #[test]
    fn tombstones_survive_roundtrip() {
        let set = sample_set();
        let loaded = PlanarIndexSet::<VecStore>::from_bytes(&set.to_bytes()).unwrap();
        assert!(!loaded.is_live(7));
        assert!(!loaded.is_live(123));
        assert!(loaded.is_live(0));
        // Scans also exclude the tombstoned rows.
        let q = InequalityQuery::geq(vec![1.0, -1.0], -1e9).unwrap();
        assert_eq!(loaded.query_scan(&q).unwrap().matches.len(), 498);
    }
}
