//! Failover promotion sweep: a primary replicates to two followers, is
//! killed at a proptest-chosen mutation index (with only a partial,
//! proptest-chosen amount of shipping done), the best follower is
//! elected and promoted, and the promoted state must be exactly a
//! prefix of the primary's history:
//!
//! - every mutation the primary saw replication-acked is present,
//! - unacked mutations are present-or-absent (they may have shipped),
//! - the promoted answers are bit-identical to the primary's historical
//!   answers at the promoted LSN — never a divergent third state.
//!
//! Plus: the deposed primary's late appends are fenced — a peer that
//! adopted the new term rejects them and the old primary's `pump`
//! returns the typed `Fenced` error.

use planar_core::replicate::ChannelTransport;
use planar_core::{
    elect, Cmp, ConcurrencyConfig, ConcurrentDurableShardedIndexSet, FailoverConfig, FeatureTable,
    FsyncPolicy, IndexConfig, InequalityQuery, ParameterDomain, PlanarError, Primary,
    ReadConsistency, Replica, ShardConfig, ShardedIndexSet, TempDir, VecStore, WalOptions,
};
use proptest::prelude::*;

fn build_sharded(n: usize) -> ShardedIndexSet<VecStore> {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| vec![1.0 + (i % 11) as f64, 1.0 + (i % 6) as f64])
        .collect();
    let table = FeatureTable::from_rows(2, rows).unwrap();
    let domain = ParameterDomain::uniform_continuous(2, 0.5, 2.0).unwrap();
    ShardedIndexSet::build(
        table,
        domain,
        IndexConfig::with_budget(3),
        ShardConfig::round_robin(3),
    )
    .unwrap()
}

fn probes() -> Vec<InequalityQuery> {
    [10.0, 14.0, 18.0]
        .iter()
        .map(|&b| InequalityQuery::new(vec![1.0, 1.5], Cmp::Leq, b).unwrap())
        .collect()
}

#[derive(Debug, Clone)]
enum Op {
    Insert(f64, f64),
    Update(u16, f64),
    Delete(u16),
}

fn trace() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0.5f64..9.5, 0.5f64..9.5).prop_map(|(a, b)| Op::Insert(a, b)),
            1 => (0u16..1000, 0.5f64..9.5).prop_map(|(p, v)| Op::Update(p, v)),
            1 => (0u16..1000).prop_map(Op::Delete),
        ],
        4..32,
    )
}

/// Apply `op` to the primary, resolving picks against the live-id list
/// so every operation is valid. Returns false if the op degenerated to
/// a no-op (nothing live to update/delete).
fn apply(store: &ConcurrentDurableShardedIndexSet<VecStore>, live: &mut Vec<u32>, op: &Op) -> bool {
    match op {
        Op::Insert(a, b) => {
            let id = store.insert_point(&[*a, *b]).unwrap();
            live.push(id);
            true
        }
        Op::Update(pick, v) => {
            if live.is_empty() {
                return false;
            }
            let id = live[*pick as usize % live.len()];
            store.update_point(id, &[*v, 1.0 + *v]).unwrap();
            true
        }
        Op::Delete(pick) => {
            if live.is_empty() {
                return false;
            }
            let idx = *pick as usize % live.len();
            let id = live.swap_remove(idx);
            store.delete_point(id).unwrap();
            true
        }
    }
}

/// One full kill-promote-verify run. `rounds_per_step` throttles how
/// much replication happens between mutations (0 = the replicas see
/// nothing until the final partial shipping), `tail_rounds` controls how
/// much of the tail ships before the kill.
fn kill_and_promote(t: &[Op], rounds_per_step: usize, tail_rounds: usize) {
    let pdir = TempDir::new("failover_p").unwrap();
    let rdir = TempDir::new("failover_r").unwrap();
    let opts = WalOptions::default().fsync(FsyncPolicy::EveryN(4));
    let store = ConcurrentDurableShardedIndexSet::create(
        pdir.path(),
        build_sharded(30),
        opts,
        ConcurrencyConfig::default(),
    )
    .unwrap();
    let mut primary = Primary::new(store, FailoverConfig::default());
    let mut replicas: Vec<Replica<VecStore>> = Vec::new();
    for r in 0..2u32 {
        let down = ChannelTransport::new();
        let up = ChannelTransport::new();
        primary.add_replica(Box::new(down.clone()), Box::new(up.clone()));
        replicas.push(Replica::new(
            rdir.path().join(format!("r{r}")),
            r,
            Box::new(down),
            Box::new(up),
            opts,
            FailoverConfig::default(),
        ));
    }

    // history[lsn] = probe answers after the mutation that produced
    // `lsn` (history[0] = the seed state).
    let mut history: Vec<Vec<Vec<u32>>> = Vec::new();
    let record = |primary: &Primary<VecStore>, history: &mut Vec<Vec<Vec<u32>>>| {
        let snap = primary.store().snapshot();
        history.push(
            probes()
                .iter()
                .map(|q| snap.query(q).unwrap().sorted_ids())
                .collect(),
        );
    };
    record(&primary, &mut history);

    let mut now = 0u64;
    let mut live: Vec<u32> = Vec::new();
    for op in t {
        if apply(primary.store(), &mut live, op) {
            record(&primary, &mut history);
        }
        for _ in 0..rounds_per_step {
            now += 150;
            primary.pump(now).unwrap();
            for r in &mut replicas {
                r.poll(now).unwrap();
            }
        }
    }
    // Partial tail shipping, then the primary "dies" mid-replication.
    primary.store().sync().unwrap();
    for _ in 0..tail_rounds {
        now += 150;
        primary.pump(now).unwrap();
        for r in &mut replicas {
            r.poll(now).unwrap();
        }
    }
    let acked_watermark = primary
        .replica_health()
        .iter()
        .map(|h| h.acked_lsn)
        .max()
        .unwrap_or(0);
    let appended = primary.store().wal_health().appended_lsn;
    drop(primary);

    // Elect the best follower: it must hold at least the best acked LSN.
    let Some(winner) = elect(&replicas) else {
        assert_eq!(acked_watermark, 0, "an acked replica must be electable");
        return;
    };
    let winner = replicas.swap_remove(winner);
    assert!(
        winner.acked_lsn() >= acked_watermark,
        "elect must pick a replica covering the acked watermark"
    );
    let promoted_lsn = winner.applied_lsn();
    let promoted = winner.promote(ConcurrencyConfig::default()).unwrap();

    // Prefix consistency: the promoted state answers exactly as the
    // primary did at `promoted_lsn` — acked mutations present, unacked
    // present-or-absent, never a third state.
    assert!(promoted_lsn >= acked_watermark);
    assert!(promoted_lsn <= appended);
    let want = &history[promoted_lsn as usize];
    let snap = promoted.store().snapshot();
    for (q, expect) in probes().iter().zip(want) {
        assert_eq!(&snap.query(q).unwrap().sorted_ids(), expect);
    }

    // The promoted primary is live: it accepts writes under its new term
    // and can checkpoint.
    promoted.store().insert_point(&[5.0, 5.0]).unwrap();
    let mut promoted = promoted;
    promoted.checkpoint().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Kill the primary at every replication progress level the strategy
    /// reaches: fully-caught-up followers, partially shipped tails, and
    /// followers that never saw a frame.
    #[test]
    fn promotion_preserves_every_acked_mutation(
        t in trace(),
        rounds_per_step in 0usize..3,
        tail_rounds in 0usize..6,
    ) {
        kill_and_promote(&t, rounds_per_step, tail_rounds);
    }
}

/// Deterministic end-to-end failover: primary dies, lease expires, the
/// promoted follower serves identical answers, and the deposed primary
/// is fenced by the term check when it tries to ship late appends.
#[test]
fn deposed_primary_is_fenced() {
    let pdir = TempDir::new("failover_fence_p").unwrap();
    let rdir = TempDir::new("failover_fence_r").unwrap();
    let opts = WalOptions::default().fsync(FsyncPolicy::EveryN(4));
    let store = ConcurrentDurableShardedIndexSet::create(
        pdir.path(),
        build_sharded(30),
        opts,
        ConcurrencyConfig::default(),
    )
    .unwrap();
    let mut old_primary = Primary::new(store, FailoverConfig::default());
    let down = ChannelTransport::new();
    let up = ChannelTransport::new();
    old_primary.add_replica(Box::new(down.clone()), Box::new(up.clone()));
    let mut follower: Replica<VecStore> = Replica::new(
        rdir.path().join("r0"),
        0,
        Box::new(down),
        Box::new(up),
        opts,
        FailoverConfig::default(),
    );
    let mut now = 0u64;
    for i in 0..12 {
        old_primary
            .store()
            .insert_point(&[2.0 + i as f64, 3.0])
            .unwrap();
    }
    old_primary.store().sync().unwrap();
    for _ in 0..16 {
        now += 150;
        old_primary.pump(now).unwrap();
        follower.poll(now).unwrap();
    }
    let appended = old_primary.store().wal_health().appended_lsn;
    assert_eq!(follower.applied_lsn(), appended);
    let old_term = old_primary.term();

    // The primary goes silent; the follower's lease expires.
    now += 10_000;
    assert!(!follower.primary_alive(now));
    let mut promoted = follower.promote(ConcurrencyConfig::default()).unwrap();
    assert_eq!(promoted.term(), old_term + 1);

    // A second follower joins the promoted primary and adopts its term.
    let down2 = ChannelTransport::new();
    let up2 = ChannelTransport::new();
    promoted.add_replica(Box::new(down2.clone()), Box::new(up2.clone()));
    let mut f2: Replica<VecStore> = Replica::new(
        rdir.path().join("r1"),
        1,
        Box::new(down2.clone()),
        Box::new(up2.clone()),
        opts,
        FailoverConfig::default(),
    );
    promoted.store().insert_point(&[9.0, 9.0]).unwrap();
    promoted.store().sync().unwrap();
    for _ in 0..16 {
        now += 150;
        promoted.pump(now).unwrap();
        f2.poll(now).unwrap();
    }
    assert_eq!(f2.term(), old_term + 1);
    let read = f2.follower_read(ReadConsistency::ReadYourWrites).unwrap();
    let psnap = promoted.store().snapshot();
    for q in probes() {
        assert_eq!(
            read.snapshot.query(&q).unwrap().sorted_ids(),
            psnap.query(&q).unwrap().sorted_ids()
        );
    }

    // The deposed primary comes back, writes, and tries to ship to a
    // peer that has adopted the new term. `f2` already holds
    // `old_term + 1`; the deposed primary attaches to the *same*
    // channel pair (clones share the queue), so its stale-term traffic
    // lands in front of the high-term peer.
    let mut drain: Box<dyn planar_core::Transport> = Box::new(up2.clone());
    while drain.recv().unwrap().is_some() {}
    old_primary.add_replica(Box::new(down2.clone()), Box::new(up2.clone()));
    old_primary.store().insert_point(&[8.0, 8.0]).unwrap();
    old_primary.store().sync().unwrap();
    let mut fenced = None;
    for _ in 0..32 {
        now += 150;
        match old_primary.pump(now) {
            Ok(()) => {}
            Err(e) => {
                fenced = Some(e);
                break;
            }
        }
        let _ = f2.poll(now);
    }
    match fenced {
        Some(PlanarError::Fenced { term, observed }) => {
            assert_eq!(term, old_term);
            assert_eq!(observed, old_term + 1);
        }
        other => panic!("expected Fenced, got {other:?}"),
    }
    assert!(
        f2.stats().rejects > 0,
        "the high-term peer must have rejected the stale-term traffic"
    );
    // The late append never reached the promoted timeline: the peer
    // still answers as the promoted primary does.
    let read = f2.follower_read(ReadConsistency::Any).unwrap();
    let psnap = promoted.store().snapshot();
    for q in probes() {
        assert_eq!(
            read.snapshot.query(&q).unwrap().sorted_ids(),
            psnap.query(&q).unwrap().sorted_ids()
        );
    }
}
