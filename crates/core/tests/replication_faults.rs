//! Fault-injection sweep over the replication transport: the scheduled
//! send is dropped, duplicated, reordered, torn mid-message, or
//! bit-flipped, at every interesting send index. In every case the
//! replica must either heal (converge to answers bit-identical to the
//! primary) or fail loudly with divergence provenance — it must never
//! serve a wrong answer, and bounded reads must never return stale data
//! without the typed `ReplicaLag` error.

use std::sync::Mutex;

use planar_core::fault::{arm_transport_fault, disarm_transport_fault, TransportFaultKind};
use planar_core::replicate::ChannelTransport;
use planar_core::replicate::FaultyTransport;
use planar_core::{
    Cmp, ConcurrencyConfig, ConcurrentDurableShardedIndexSet, FailoverConfig, FeatureTable,
    FsyncPolicy, IndexConfig, InequalityQuery, ParameterDomain, PlanarError, Primary,
    ReadConsistency, Replica, ReplicationStats, ShardConfig, ShardedIndexSet, TempDir, VecStore,
    WalOptions,
};

/// The transport fault trigger is process-global; scenarios serialize.
static LOCK: Mutex<()> = Mutex::new(());

fn build_sharded(n: usize) -> ShardedIndexSet<VecStore> {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| vec![1.0 + (i % 11) as f64, 1.0 + (i % 6) as f64])
        .collect();
    let table = FeatureTable::from_rows(2, rows).unwrap();
    let domain = ParameterDomain::uniform_continuous(2, 0.5, 2.0).unwrap();
    ShardedIndexSet::build(
        table,
        domain,
        IndexConfig::with_budget(3),
        ShardConfig::round_robin(3),
    )
    .unwrap()
}

fn probes() -> Vec<InequalityQuery> {
    [10.0, 14.0, 18.0]
        .iter()
        .map(|&b| InequalityQuery::new(vec![1.0, 1.5], Cmp::Leq, b).unwrap())
        .collect()
}

/// Run one primary→replica scenario with `kind` armed on the `nth` send
/// of the down transport: four write bursts with replication turns in
/// between, then a generous settle. Returns the replica's final stats.
///
/// Panics unless the replica ends bit-identical to the primary (healed)
/// — none of the injected faults is allowed to diverge a replica, and a
/// diverged replica would fail the `follower_read` below loudly.
fn run_scenario(nth: u64, kind: TransportFaultKind) -> ReplicationStats {
    let pdir = TempDir::new("repl_fault_p").unwrap();
    let rdir = TempDir::new("repl_fault_r").unwrap();
    let opts = WalOptions::default().fsync(FsyncPolicy::EveryN(4));
    let store = ConcurrentDurableShardedIndexSet::create(
        pdir.path(),
        build_sharded(40),
        opts,
        ConcurrencyConfig::default(),
    )
    .unwrap();
    let mut primary = Primary::new(store, FailoverConfig::default());

    let down = ChannelTransport::new();
    let up = ChannelTransport::new();
    arm_transport_fault(nth, kind);
    primary.add_replica(
        Box::new(FaultyTransport::new(down.clone())),
        Box::new(up.clone()),
    );
    let mut replica: Replica<VecStore> = Replica::new(
        rdir.path().join("r0"),
        0,
        Box::new(down),
        Box::new(up),
        opts,
        FailoverConfig::default(),
    );

    let mut now = 0u64;
    for burst in 0..4u64 {
        for i in 0..6 {
            primary
                .store()
                .insert_point(&[2.0 + (i % 5) as f64, 2.0 + burst as f64])
                .unwrap();
        }
        if burst == 2 {
            primary.store().update_point(3, &[4.0, 4.0]).unwrap();
            primary.store().delete_point(5).unwrap();
        }
        primary.store().sync().unwrap();
        for _ in 0..3 {
            now += 100;
            primary.pump(now).unwrap();
            replica.poll(now).unwrap();
        }
        // A bounded read during catch-up is a typed error or a correct
        // answer — never silently stale.
        let appended = primary.store().wal_health().appended_lsn;
        match replica.follower_read(ReadConsistency::AtLeast(appended)) {
            Ok(read) => {
                assert_eq!(read.applied_lsn, appended);
                let psnap = primary.store().snapshot();
                for q in probes() {
                    assert_eq!(
                        read.snapshot.query(&q).unwrap().sorted_ids(),
                        psnap.query(&q).unwrap().sorted_ids()
                    );
                }
            }
            Err(PlanarError::ReplicaLag { required, applied }) => {
                assert_eq!(required, appended);
                assert!(applied < appended);
            }
            Err(PlanarError::Persist(msg)) => {
                assert!(
                    msg.contains("not installed a snapshot"),
                    "unexpected persist error mid-catch-up: {msg}"
                );
            }
            Err(other) => panic!("unexpected follower read error: {other}"),
        }
    }

    // Settle: the retransmit/backoff machinery must heal every injected
    // fault within a bounded number of turns.
    for _ in 0..64 {
        now += 300;
        primary.pump(now).unwrap();
        replica.poll(now).unwrap();
        let appended = primary.store().wal_health().appended_lsn;
        if replica.is_seeded() && replica.applied_lsn() >= appended {
            break;
        }
    }
    disarm_transport_fault();

    assert_eq!(
        replica.divergence(),
        None,
        "fault {kind:?}@{nth} must heal, not diverge"
    );
    let appended = primary.store().wal_health().appended_lsn;
    assert_eq!(
        replica.applied_lsn(),
        appended,
        "fault {kind:?}@{nth} failed to heal"
    );
    let read = replica
        .follower_read(ReadConsistency::AtLeast(appended))
        .unwrap();
    let psnap = primary.store().snapshot();
    for q in probes() {
        assert_eq!(
            read.snapshot.query(&q).unwrap().sorted_ids(),
            psnap.query(&q).unwrap().sorted_ids(),
            "fault {kind:?}@{nth} produced a wrong answer"
        );
    }
    replica.stats()
}

/// Sweep a fault kind over the first few send indices (seed, early
/// frames, heartbeats) and return the summed stats.
fn sweep(kind: TransportFaultKind) -> ReplicationStats {
    let mut total = ReplicationStats::default();
    for nth in 0..6 {
        let s = run_scenario(nth, kind);
        total.corrupt_messages += s.corrupt_messages;
        total.corrupt_frames += s.corrupt_frames;
        total.duplicate_frames += s.duplicate_frames;
        total.reordered_frames += s.reordered_frames;
        total.applied_frames += s.applied_frames;
        total.snapshots += s.snapshots;
    }
    total
}

#[test]
fn dropped_sends_heal_via_retransmit() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let total = sweep(TransportFaultKind::DropSend);
    assert!(total.applied_frames > 0);
}

#[test]
fn duplicated_sends_are_dropped_by_lsn() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let total = sweep(TransportFaultKind::DuplicateSend);
    assert!(
        total.duplicate_frames > 0 || total.snapshots > 6,
        "at least one duplicated message must have been detected: {total:?}"
    );
}

#[test]
fn reordered_delivery_is_staged_back_into_order() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let total = sweep(TransportFaultKind::ReorderPair);
    assert!(total.applied_frames > 0);
}

#[test]
fn torn_messages_are_rejected_and_retransmitted() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Tear at several depths: inside the magic, inside the header,
    // inside the frame payload.
    for keep in [3usize, 20, 60] {
        let mut total = ReplicationStats::default();
        for nth in 0..4 {
            let s = run_scenario(nth, TransportFaultKind::Torn { keep });
            total.corrupt_messages += s.corrupt_messages;
        }
        assert!(
            total.corrupt_messages > 0,
            "torn messages (keep={keep}) must be detected, not applied"
        );
    }
}

#[test]
fn bit_flipped_frames_never_apply() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Flip bits across the message: magic, type byte, frame bodies, CRC.
    for offset in [0usize, 8, 30, 80, 200] {
        let mut detected = 0u64;
        for nth in 0..4 {
            let s = run_scenario(
                nth,
                TransportFaultKind::BitFlip {
                    offset,
                    bit: (offset % 8) as u8,
                },
            );
            detected += s.corrupt_messages + s.corrupt_frames;
        }
        assert!(
            detected > 0,
            "bit flip at offset {offset} must be detected, not applied"
        );
    }
}

/// The up (ack) pipe faulted: acks are lost, the primary retransmits,
/// and the replica's LSN staging absorbs the duplicates.
#[test]
fn lost_acks_cause_retransmit_not_divergence() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let pdir = TempDir::new("repl_fault_ack").unwrap();
    let rdir = TempDir::new("repl_fault_ackr").unwrap();
    let opts = WalOptions::default().fsync(FsyncPolicy::EveryN(4));
    let store = ConcurrentDurableShardedIndexSet::create(
        pdir.path(),
        build_sharded(30),
        opts,
        ConcurrencyConfig::default(),
    )
    .unwrap();
    let mut primary = Primary::new(store, FailoverConfig::default());
    let down = ChannelTransport::new();
    let up = ChannelTransport::new();
    // Ack #1 (the first post-seed ack) is dropped on the up pipe.
    arm_transport_fault(1, TransportFaultKind::DropSend);
    primary.add_replica(Box::new(down.clone()), Box::new(up.clone()));
    let mut replica: Replica<VecStore> = Replica::new(
        rdir.path().join("r0"),
        0,
        Box::new(down),
        Box::new(FaultyTransport::new(up)),
        opts,
        FailoverConfig::default(),
    );
    for i in 0..10 {
        primary
            .store()
            .insert_point(&[2.0 + i as f64, 3.0])
            .unwrap();
    }
    primary.store().sync().unwrap();
    let mut now = 0u64;
    for _ in 0..64 {
        now += 300;
        primary.pump(now).unwrap();
        replica.poll(now).unwrap();
        let appended = primary.store().wal_health().appended_lsn;
        if replica.applied_lsn() >= appended && primary.replication_acked(appended) {
            break;
        }
    }
    disarm_transport_fault();
    let appended = primary.store().wal_health().appended_lsn;
    assert_eq!(replica.applied_lsn(), appended);
    assert!(
        primary.replication_acked(appended),
        "a later cumulative ack must cover the lost one"
    );
    assert_eq!(replica.divergence(), None);
}
