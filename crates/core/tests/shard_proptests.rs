//! Property tests for the sharded execution engine: for arbitrary data,
//! queries, shard counts, partitioners, and thread counts, a
//! [`ShardedIndexSet`] must answer exactly what the monolithic
//! [`PlanarIndexSet`] answers — same id sets for inequality queries, the
//! same bit-identical neighbor lists for top-k — across all three key
//! stores, through interleaved mutations, per-shard quarantine masks,
//! compaction, and a serialization roundtrip.

use planar_core::{BPlusTree, StatsAggregator};
use planar_core::{
    Cmp, Domain, ExecutionConfig, EytzingerStore, FeatureTable, IndexConfig, InequalityQuery,
    KeyStore, ParameterDomain, PartitionScheme, PlanarError, PlanarIndexSet, ShardConfig,
    ShardedIndexSet, TopKQuery, VecStore,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Scenario {
    dim: usize,
    rows: Vec<Vec<f64>>,
    signs: Vec<bool>,
    queries: Vec<(Vec<f64>, f64, Cmp)>,
    budget: usize,
    shards: usize,
    scheme: PartitionScheme,
    threads: usize,
    k: usize,
    /// Interleaved mutations: `(op % 4, id seed, row)` — 0/1 insert,
    /// 2 update, 3 delete.
    ops: Vec<(u8, u16, Vec<f64>)>,
    /// Quarantine mask seeds: `(shard seed, index position seed)`.
    quarantine: Vec<(u8, u8)>,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (1..=3usize)
        .prop_flat_map(|dim| {
            (
                Just(dim),
                prop::collection::vec(prop::collection::vec(-100.0..100.0_f64, dim), 8..60),
                prop::collection::vec(any::<bool>(), dim),
                prop::collection::vec(
                    (
                        prop::collection::vec(0.1..10.0_f64, dim),
                        -300.0..300.0_f64,
                        any::<bool>(),
                    ),
                    1..6,
                ),
                1..4usize,
                1..=4usize,
                prop_oneof![
                    Just(PartitionScheme::RoundRobin),
                    Just(PartitionScheme::PilotKeyRange)
                ],
                1..6usize,
                1..6usize,
                (
                    prop::collection::vec(
                        (
                            0..4u8,
                            any::<u16>(),
                            prop::collection::vec(0.1..100.0_f64, dim),
                        ),
                        0..24,
                    ),
                    prop::collection::vec((any::<u8>(), any::<u8>()), 0..4),
                ),
            )
        })
        .prop_map(
            |(
                dim,
                mut rows,
                signs,
                raw_queries,
                budget,
                shards,
                scheme,
                threads,
                k,
                (mut ops, quarantine),
            )| {
                // Fold data and mutation rows into the octant fixed by
                // `signs` so the indexed path is exercised.
                for row in rows.iter_mut().chain(ops.iter_mut().map(|(_, _, r)| r)) {
                    for (v, &pos) in row.iter_mut().zip(&signs) {
                        *v = if pos { v.abs() } else { -v.abs() };
                    }
                }
                let queries = raw_queries
                    .into_iter()
                    .map(|(mag, b, leq)| {
                        let a: Vec<f64> = mag
                            .iter()
                            .zip(&signs)
                            .map(|(&m, &pos)| if pos { m } else { -m })
                            .collect();
                        (a, b, if leq { Cmp::Leq } else { Cmp::Geq })
                    })
                    .collect();
                Scenario {
                    dim,
                    rows,
                    signs,
                    queries,
                    budget,
                    shards,
                    scheme,
                    threads,
                    k,
                    ops,
                    quarantine,
                }
            },
        )
}

fn domain(s: &Scenario) -> ParameterDomain {
    let axes: Vec<Domain> = s
        .signs
        .iter()
        .map(|&pos| {
            if pos {
                Domain::Continuous { lo: 0.1, hi: 10.0 }
            } else {
                Domain::Continuous {
                    lo: -10.0,
                    hi: -0.1,
                }
            }
        })
        .collect();
    ParameterDomain::new(axes).unwrap()
}

/// Build the monolithic baseline and the sharded set over the same data.
/// `None` when the generated data cannot fill every shard (fewer rows than
/// shards after routing, e.g. duplicate pilot keys) — a documented build
/// error, not an equivalence failure.
fn build_pair<S: KeyStore + Send>(s: &Scenario) -> Option<(PlanarIndexSet<S>, ShardedIndexSet<S>)> {
    let table = FeatureTable::from_rows(s.dim, s.rows.clone()).unwrap();
    let cfg = IndexConfig::with_budget(s.budget);
    let unsharded = PlanarIndexSet::build(table.clone(), domain(s), cfg.clone()).unwrap();
    let shard_config = ShardConfig {
        shards: s.shards,
        scheme: s.scheme,
    };
    match ShardedIndexSet::build(table, domain(s), cfg, shard_config) {
        Ok(sharded) => Some((unsharded, sharded)),
        Err(PlanarError::EmptyDataset) => None,
        Err(e) => panic!("sharded build failed: {e:?}"),
    }
}

fn ineq_queries(s: &Scenario) -> Vec<InequalityQuery> {
    s.queries
        .iter()
        .map(|(a, b, cmp)| InequalityQuery::new(a.clone(), *cmp, *b).unwrap())
        .collect()
}

fn topk_queries(s: &Scenario) -> Vec<TopKQuery> {
    ineq_queries(s)
        .into_iter()
        .map(|q| TopKQuery::new(q, s.k).unwrap())
        .collect()
}

/// Inequality + top-k equivalence on the current state of a pair.
fn assert_equivalent<S: KeyStore + Sync>(
    unsharded: &PlanarIndexSet<S>,
    sharded: &ShardedIndexSet<S>,
    s: &Scenario,
) {
    for q in ineq_queries(s) {
        let want = unsharded.query(&q).unwrap();
        let got = sharded.query(&q).unwrap();
        assert_eq!(got.sorted_ids(), want.sorted_ids());
        assert_eq!(got.merged_stats().matched, want.stats.matched);
        assert_eq!(got.shard_stats.len(), sharded.num_shards());
    }
    for q in topk_queries(s) {
        let want = unsharded.top_k(&q).unwrap();
        let got = sharded.top_k(&q).unwrap();
        assert_eq!(got.neighbors.len(), want.neighbors.len());
        for (g, w) in got.neighbors.iter().zip(&want.neighbors) {
            assert_eq!(g.0, w.0);
            assert_eq!(
                g.1.to_bits(),
                w.1.to_bits(),
                "distances must be bit-identical"
            );
        }
    }
}

fn check_equivalence<S: KeyStore + Send + Sync>(s: &Scenario) {
    let Some((unsharded, sharded)) = build_pair::<S>(s) else {
        return;
    };
    assert_equivalent(&unsharded, &sharded, s);
}

fn check_batches<S: KeyStore + Send + Sync>(s: &Scenario) {
    let Some((unsharded, sharded)) = build_pair::<S>(s) else {
        return;
    };
    let exec = ExecutionConfig::with_threads(s.threads);
    let qs = ineq_queries(s);
    let base = unsharded.query_batch(&qs, &exec).unwrap();
    let singles: Vec<_> = qs.iter().map(|q| sharded.query(q).unwrap()).collect();
    let batched = sharded.query_batch(&qs, &exec).unwrap();
    for ((got, single), want) in batched.iter().zip(&singles).zip(&base) {
        // Batch output is identical to the one-at-a-time sharded path for
        // every thread count, and id-equal to the unsharded engine.
        assert_eq!(got, single);
        assert_eq!(got.sorted_ids(), want.sorted_ids());
    }

    let tqs = topk_queries(s);
    let base_tk = unsharded.top_k_batch(&tqs, &exec).unwrap();
    let singles_tk: Vec<_> = tqs.iter().map(|q| sharded.top_k(q).unwrap()).collect();
    let batched_tk = sharded.top_k_batch(&tqs, &exec).unwrap();
    for ((got, single), want) in batched_tk.iter().zip(&singles_tk).zip(&base_tk) {
        assert_eq!(got, single);
        assert_eq!(got.neighbors, want.neighbors);
    }
}

fn check_mutations<S: KeyStore + Send + Sync>(s: &Scenario) {
    let Some((mut unsharded, mut sharded)) = build_pair::<S>(s) else {
        return;
    };
    for (op, id_seed, row) in &s.ops {
        match op % 4 {
            0 | 1 => {
                let a = unsharded.insert_point(row).unwrap();
                let b = sharded.insert_point(row).unwrap();
                assert_eq!(a, b, "insert must assign aligned global ids");
            }
            2 => {
                let id = (*id_seed as u32) % unsharded.table().len() as u32;
                let a = unsharded.update_point(id, row);
                let b = sharded.update_point(id, row);
                assert_eq!(a.is_ok(), b.is_ok(), "update liveness must agree");
            }
            _ => {
                let id = (*id_seed as u32) % unsharded.table().len() as u32;
                let a = unsharded.delete_point(id);
                let b = sharded.delete_point(id);
                assert_eq!(a.is_ok(), b.is_ok(), "delete liveness must agree");
            }
        }
    }
    assert_eq!(unsharded.len(), sharded.len());
    assert_equivalent(&unsharded, &sharded, s);
}

fn check_quarantine_masks<S: KeyStore + Send + Sync>(s: &Scenario) {
    let Some((unsharded, mut sharded)) = build_pair::<S>(s) else {
        return;
    };
    for &(shard_seed, pos_seed) in &s.quarantine {
        let shard = shard_seed as usize % sharded.num_shards();
        let budget = sharded.shard(shard).unwrap().num_indices();
        sharded.quarantine(shard, pos_seed as usize % budget);
    }
    // Answers stay exact under any quarantine mask (shards degrade to
    // their scan independently), and a sharded query still aggregates as
    // one logical query.
    assert_equivalent(&unsharded, &sharded, s);
    if let Some(q) = ineq_queries(s).first() {
        let out = sharded.query(q).unwrap();
        let mut agg = StatsAggregator::new();
        out.record(&mut agg);
        assert_eq!(agg.count(), 1);
    }
    // Rebuild heals every shard; equivalence must survive that too.
    sharded.rebuild_quarantined();
    assert!(sharded.quarantined_positions().is_empty());
    assert_equivalent(&unsharded, &sharded, s);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sharded ≡ unsharded for inequality and top-k, on every store.
    #[test]
    fn sharded_equals_unsharded_vec_store(s in scenario()) {
        check_equivalence::<VecStore>(&s);
    }

    #[test]
    fn sharded_equals_unsharded_bplus_tree(s in scenario()) {
        check_equivalence::<BPlusTree>(&s);
    }

    #[test]
    fn sharded_equals_unsharded_eytzinger(s in scenario()) {
        check_equivalence::<EytzingerStore>(&s);
    }

    /// Shard-major batches ≡ one-at-a-time ≡ unsharded, for any thread
    /// count, on every store.
    #[test]
    fn sharded_batches_equal_unsharded_vec_store(s in scenario()) {
        check_batches::<VecStore>(&s);
    }

    #[test]
    fn sharded_batches_equal_unsharded_bplus_tree(s in scenario()) {
        check_batches::<BPlusTree>(&s);
    }

    #[test]
    fn sharded_batches_equal_unsharded_eytzinger(s in scenario()) {
        check_batches::<EytzingerStore>(&s);
    }

    /// Interleaved insert/update/delete keeps the two engines in lockstep:
    /// same global ids, same liveness verdicts, same answers after.
    #[test]
    fn mutations_preserve_equivalence_vec_store(s in scenario()) {
        check_mutations::<VecStore>(&s);
    }

    #[test]
    fn mutations_preserve_equivalence_bplus_tree(s in scenario()) {
        check_mutations::<BPlusTree>(&s);
    }

    #[test]
    fn mutations_preserve_equivalence_eytzinger(s in scenario()) {
        check_mutations::<EytzingerStore>(&s);
    }

    /// Arbitrary per-shard quarantine masks never change answers, and
    /// rebuilding restores full health.
    #[test]
    fn quarantine_masks_preserve_answers(s in scenario()) {
        check_quarantine_masks::<VecStore>(&s);
    }

    /// Compaction drops tombstones without renumbering global ids: answers
    /// match an uncompacted baseline before and after further mutations.
    #[test]
    fn compaction_preserves_equivalence(s in scenario()) {
        if let Some((mut unsharded, mut sharded)) = build_pair::<VecStore>(&s) {
            let n = unsharded.table().len() as u32;
            for id in (0..n).step_by(3) {
                unsharded.delete_point(id).unwrap();
                sharded.delete_point(id).unwrap();
            }
            sharded.compact(0.0);
            assert_eq!(unsharded.len(), sharded.len());
            assert_equivalent(&unsharded, &sharded, &s);
            // Dead ids stay dead, live ids stay mutable, inserts stay aligned.
            prop_assert!(!sharded.is_live(0));
            prop_assert!(sharded.delete_point(0).is_err());
            let folded: Vec<f64> = s
                .signs
                .iter()
                .map(|&pos| if pos { 0.5 } else { -0.5 })
                .collect();
            let a = unsharded.insert_point(&folded).unwrap();
            let b = sharded.insert_point(&folded).unwrap();
            prop_assert_eq!(a, b);
            assert_equivalent(&unsharded, &sharded, &s);
        }
    }

    /// A serialization roundtrip reproduces the sharded set exactly.
    #[test]
    fn sharded_snapshot_roundtrip(s in scenario()) {
        if let Some((unsharded, sharded)) = build_pair::<VecStore>(&s) {
            let loaded = ShardedIndexSet::<VecStore>::from_bytes(&sharded.to_bytes()).unwrap();
            prop_assert_eq!(loaded.num_shards(), sharded.num_shards());
            prop_assert_eq!(loaded.len(), sharded.len());
            assert_equivalent(&unsharded, &loaded, &s);
        }
    }
}
