//! Crash-point sweep over the write-ahead log: a durable set is mutated,
//! the process "dies" (the on-disk WAL is truncated or bit-flipped at a
//! proptest-chosen point), and recovery must answer bit-identically to a
//! twin that only ever saw the durable prefix of the mutation stream.
//! Recovery is never allowed to hard-error on a damaged tail.
//!
//! Also: the sharded durability round trip from the issue checklist —
//! `FsyncPolicy::EveryN(8)`, kill without checkpoint, recover, and the
//! answers must match a never-crashed twin for every key store.

use std::fs;
use std::path::{Path, PathBuf};

use planar_core::{
    BPlusTree, Cmp, Corruption, DurablePlanarIndexSet, DurableShardedIndexSet, EytzingerStore,
    FeatureTable, FsyncPolicy, IndexConfig, InequalityQuery, KeyStore, ParameterDomain,
    PlanarIndexSet, ShardConfig, ShardedIndexSet, TempDir, TopKQuery, VecStore, WalOptions,
};
use proptest::prelude::*;

/// `payload_len u32 | lsn u64 | tag u8` — must track `core::wal`'s frame
/// header so the sweep can compute frame boundaries from the trace alone
/// (the encoder is private by design).
const FRAME_HEADER: usize = 4 + 8 + 1;
const FRAME_OVERHEAD: usize = FRAME_HEADER + 8;
/// `PLNRWAL2` magic + term u64 — the v2 segment header length.
const SEGMENT_MAGIC_LEN: usize = 16;

/// One step of a mutation trace. `pick` indexes the live-id list modulo
/// its length, so traces are valid by construction.
#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<f64>),
    Update(u16, Vec<f64>),
    Delete(u16),
    Compact,
}

/// A mutation as it was actually applied (picks resolved to ids), i.e.
/// exactly what the WAL frame for it says. Replaying a prefix of these
/// onto a fresh base set reconstructs the durable-prefix oracle.
#[derive(Debug, Clone)]
enum Applied {
    Insert(Vec<f64>),
    Update(u32, Vec<f64>),
    Delete(u32),
    Compact,
}

fn frame_len(a: &Applied, dim: usize) -> usize {
    FRAME_OVERHEAD
        + match a {
            Applied::Insert(_) | Applied::Update(_, _) => 8 + 8 * dim,
            Applied::Delete(_) => 4,
            // Unconditional compact: a single "no threshold" byte.
            Applied::Compact => 1,
        }
}

#[derive(Debug, Clone)]
struct Trace {
    dim: usize,
    rows: Vec<Vec<f64>>,
    ops: Vec<Op>,
    probes: Vec<(Vec<f64>, f64)>,
    budget: usize,
}

fn trace() -> impl Strategy<Value = Trace> {
    (1..=3usize).prop_flat_map(|dim| {
        let row = prop::collection::vec(0.1..50.0_f64, dim);
        let op = prop_oneof![
            4 => row.clone().prop_map(Op::Insert),
            3 => (any::<u16>(), row.clone()).prop_map(|(pick, r)| Op::Update(pick, r)),
            3 => any::<u16>().prop_map(Op::Delete),
            1 => Just(Op::Compact),
        ];
        (
            Just(dim),
            // At least 3 rows so every round-robin shard starts non-empty.
            prop::collection::vec(row, 3..16),
            prop::collection::vec(op, 1..16),
            prop::collection::vec(
                (prop::collection::vec(0.1..10.0_f64, dim), -50.0..150.0_f64),
                1..4,
            ),
            1..4usize,
        )
            .prop_map(|(dim, rows, ops, probes, budget)| Trace {
                dim,
                rows,
                ops,
                probes,
                budget,
            })
    })
}

fn build_planar<S: KeyStore>(t: &Trace) -> PlanarIndexSet<S> {
    let table = FeatureTable::from_rows(t.dim, t.rows.clone()).unwrap();
    let domain = ParameterDomain::uniform_continuous(t.dim, 0.1, 10.0).unwrap();
    PlanarIndexSet::build(table, domain, IndexConfig::with_budget(t.budget)).unwrap()
}

fn build_sharded<S: KeyStore + Send>(t: &Trace) -> ShardedIndexSet<S> {
    let table = FeatureTable::from_rows(t.dim, t.rows.clone()).unwrap();
    let domain = ParameterDomain::uniform_continuous(t.dim, 0.1, 10.0).unwrap();
    ShardedIndexSet::build(
        table,
        domain,
        IndexConfig::with_budget(t.budget),
        ShardConfig::round_robin(3),
    )
    .unwrap()
}

/// Run the trace through a durable planar set, returning the resolved
/// mutations in WAL order. Compaction renumbers planar ids, so the live
/// list is pushed through each remap.
fn apply_trace_planar<S: KeyStore>(
    durable: &mut DurablePlanarIndexSet<S>,
    t: &Trace,
) -> Vec<Applied> {
    let mut live: Vec<u32> = (0..t.rows.len() as u32).collect();
    let mut applied = Vec::new();
    for op in &t.ops {
        match op {
            Op::Insert(row) => {
                let id = durable.insert_point(row).unwrap();
                live.push(id);
                applied.push(Applied::Insert(row.clone()));
            }
            Op::Update(pick, row) if !live.is_empty() => {
                let id = live[*pick as usize % live.len()];
                durable.update_point(id, row).unwrap();
                applied.push(Applied::Update(id, row.clone()));
            }
            Op::Delete(pick) if !live.is_empty() => {
                let slot = *pick as usize % live.len();
                let id = live.remove(slot);
                durable.delete_point(id).unwrap();
                applied.push(Applied::Delete(id));
            }
            Op::Compact => {
                let remap = durable.compact().unwrap();
                for id in &mut live {
                    *id = remap[*id as usize].unwrap();
                }
                applied.push(Applied::Compact);
            }
            _ => {}
        }
    }
    applied
}

/// The durable-prefix oracle: a fresh base set with the first `prefix`
/// resolved mutations applied — exactly the state a crash at that frame
/// boundary must recover to.
fn oracle_prefix(t: &Trace, prefix: &[Applied]) -> PlanarIndexSet<VecStore> {
    let mut set = build_planar::<VecStore>(t);
    for a in prefix {
        match a {
            Applied::Insert(row) => {
                set.insert_point(row).unwrap();
            }
            Applied::Update(id, row) => set.update_point(*id, row).unwrap(),
            Applied::Delete(id) => set.delete_point(*id).unwrap(),
            Applied::Compact => {
                set.compact();
            }
        }
    }
    set
}

/// The single WAL segment under `dir/wal/`. Traces here are far below the
/// rotation threshold, so exactly one segment must exist.
fn only_segment(dir: &Path) -> PathBuf {
    let mut segs: Vec<PathBuf> = fs::read_dir(dir.join("wal"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    segs.sort();
    assert_eq!(segs.len(), 1, "expected a single WAL segment");
    segs.pop().unwrap()
}

fn check_planar_answers<A: KeyStore, B: KeyStore>(
    got: &PlanarIndexSet<A>,
    want: &PlanarIndexSet<B>,
    t: &Trace,
) {
    for (coeffs, b) in &t.probes {
        let q = InequalityQuery::new(coeffs.clone(), Cmp::Leq, *b).unwrap();
        assert_eq!(
            got.query(&q).unwrap().sorted_ids(),
            want.query(&q).unwrap().sorted_ids()
        );
        let tk = TopKQuery::new(q, 3).unwrap();
        assert_eq!(
            got.top_k(&tk).unwrap().neighbors,
            want.top_k(&tk).unwrap().neighbors
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash-point sweep: for *every* frame boundary `j` (optionally plus
    /// a partial slice of frame `j` itself, the torn-tail case), truncate
    /// the log there, recover, and demand (a) no hard error, (b) replay
    /// provenance equal to the durable prefix length, (c) answers
    /// bit-identical to the prefix oracle.
    #[test]
    fn truncation_sweep_recovers_the_durable_prefix(t in trace(), partial in 0usize..24) {
        let tmp = TempDir::new("wal-crash-sweep").unwrap();
        let dir = tmp.path().join("idx");
        let mut durable =
            DurablePlanarIndexSet::create(&dir, build_planar::<VecStore>(&t), WalOptions::default())
                .unwrap();
        let applied = apply_trace_planar(&mut durable, &t);
        drop(durable);

        let seg = only_segment(&dir);
        let original = fs::read(&seg).unwrap();
        let mut bounds = vec![SEGMENT_MAGIC_LEN];
        for a in &applied {
            bounds.push(bounds.last().unwrap() + frame_len(a, t.dim));
        }
        // The boundary model must match the real encoder exactly, or the
        // whole sweep is cutting at the wrong offsets.
        prop_assert_eq!(*bounds.last().unwrap(), original.len());

        for j in 0..=applied.len() {
            let mut cut = bounds[j];
            if j < applied.len() {
                // Land inside frame j: strictly past its start, strictly
                // before its end, so the tail is torn, not clean.
                cut += partial.min(frame_len(&applied[j], t.dim) - 1);
            }
            let mut bytes = original.clone();
            Corruption::TruncateAt(cut).apply(&mut bytes);
            fs::write(&seg, &bytes).unwrap();

            let (recovered, report) =
                PlanarIndexSet::<VecStore>::open_durable(&dir, WalOptions::default()).unwrap();
            prop_assert_eq!(report.wal_replayed, j);
            prop_assert_eq!(report.wal_dropped, 0);
            prop_assert_eq!(report.wal_torn_bytes, cut - bounds[j]);
            check_planar_answers(recovered.set(), &oracle_prefix(&t, &applied[..j]), &t);
        }
    }

    /// A bit flip anywhere inside frame `f` invalidates that frame's CRC;
    /// recovery must keep the first `f` mutations, drop the rest, and
    /// never hard-error.
    #[test]
    fn bit_flips_truncate_at_the_corrupted_frame(
        t in trace(),
        frame_pick in any::<u16>(),
        byte_pick in any::<u16>(),
        bit in 0u8..8,
    ) {
        let tmp = TempDir::new("wal-crash-flip").unwrap();
        let dir = tmp.path().join("idx");
        let mut durable =
            DurablePlanarIndexSet::create(&dir, build_planar::<VecStore>(&t), WalOptions::default())
                .unwrap();
        let applied = apply_trace_planar(&mut durable, &t);
        drop(durable);
        if applied.is_empty() {
            // Every pick missed (empty live list); nothing to corrupt.
            continue;
        }

        let seg = only_segment(&dir);
        let mut bytes = fs::read(&seg).unwrap();
        let mut bounds = vec![SEGMENT_MAGIC_LEN];
        for a in &applied {
            bounds.push(bounds.last().unwrap() + frame_len(a, t.dim));
        }
        let f = frame_pick as usize % applied.len();
        let offset = bounds[f] + byte_pick as usize % frame_len(&applied[f], t.dim);
        Corruption::BitFlip { offset, bit }.apply(&mut bytes);
        fs::write(&seg, &bytes).unwrap();

        let (recovered, report) =
            PlanarIndexSet::<VecStore>::open_durable(&dir, WalOptions::default()).unwrap();
        prop_assert_eq!(report.wal_replayed, f);
        // Frames past the flip are lost one way or the other (dropped
        // whole frames and/or torn bytes) — but never silently replayed.
        prop_assert!(report.wal_dropped + report.wal_torn_bytes > 0);
        check_planar_answers(recovered.set(), &oracle_prefix(&t, &applied[..f]), &t);
    }
}

/// Sharded durability round trip (issue checklist): mutate a durable
/// sharded set under `FsyncPolicy::EveryN(8)`, kill it without a
/// checkpoint, recover, and compare every probe answer against a
/// never-crashed in-memory twin. The unsynced tail survives a process
/// kill (the OS still has the writes), so recovery must replay *all* of
/// it.
fn sharded_kill_recover_roundtrip<S: KeyStore + Send>(t: &Trace) {
    let tmp = TempDir::new("wal-shard-roundtrip").unwrap();
    let dir = tmp.path().join("idx");
    let opts = WalOptions::default().fsync(FsyncPolicy::EveryN(8));
    let mut durable = DurableShardedIndexSet::create(&dir, build_sharded::<S>(t), opts).unwrap();
    let mut twin = build_sharded::<S>(t);

    // Sharded compaction preserves global ids, so the live list only
    // changes on insert/delete.
    let mut live: Vec<u32> = (0..t.rows.len() as u32).collect();
    let mut mutations = 0usize;
    for op in &t.ops {
        match op {
            Op::Insert(row) => {
                let id = durable.insert_point(row).unwrap();
                assert_eq!(id, twin.insert_point(row).unwrap());
                live.push(id);
                mutations += 1;
            }
            Op::Update(pick, row) if !live.is_empty() => {
                let id = live[*pick as usize % live.len()];
                durable.update_point(id, row).unwrap();
                twin.update_point(id, row).unwrap();
                mutations += 1;
            }
            Op::Delete(pick) if !live.is_empty() => {
                let slot = *pick as usize % live.len();
                let id = live.remove(slot);
                durable.delete_point(id).unwrap();
                twin.delete_point(id).unwrap();
                mutations += 1;
            }
            Op::Compact => {
                // One broadcast record per shard WAL, sharing one LSN.
                durable.compact(0.0).unwrap();
                twin.compact(0.0);
                mutations += 1;
            }
            _ => {}
        }
    }

    drop(durable); // kill: no checkpoint, unsynced tail left behind
    let (recovered, report) = ShardedIndexSet::<S>::open_durable(&dir, opts).unwrap();
    // Broadcast Compact lands once per shard (3 shards here).
    let expect_replayed = mutations + t.ops.iter().filter(|o| matches!(o, Op::Compact)).count() * 2;
    assert_eq!(report.wal_replayed, expect_replayed);
    assert_eq!(report.wal_dropped, 0);
    assert_eq!(report.wal_torn_bytes, 0);
    assert_eq!(recovered.len(), twin.len());

    for (coeffs, b) in &t.probes {
        let q = InequalityQuery::new(coeffs.clone(), Cmp::Leq, *b).unwrap();
        assert_eq!(
            recovered.query(&q).unwrap().sorted_ids(),
            twin.query(&q).unwrap().sorted_ids()
        );
        let tk = TopKQuery::new(q, 3).unwrap();
        assert_eq!(
            recovered.top_k(&tk).unwrap().neighbors,
            twin.top_k(&tk).unwrap().neighbors
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sharded_roundtrip_vec_store(t in trace()) {
        sharded_kill_recover_roundtrip::<VecStore>(&t);
    }

    #[test]
    fn sharded_roundtrip_bplus_tree(t in trace()) {
        sharded_kill_recover_roundtrip::<BPlusTree>(&t);
    }

    #[test]
    fn sharded_roundtrip_eytzinger(t in trace()) {
        sharded_kill_recover_roundtrip::<EytzingerStore>(&t);
    }
}
