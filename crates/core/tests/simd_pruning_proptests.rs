//! Property tests for the columnar feature store and multi-index
//! intersection pruning: for arbitrary tables, queries, quarantine
//! patterns, and stores, (1) the interleaved-block columnar layout must
//! agree bit-for-bit with the row-major layout — same gathered rows, same
//! fused compare masks — and (2) intersection pruning must never change an
//! answer, only shrink the verified set, for inequality and top-k queries
//! alike.

use planar_core::{BPlusTree, EytzingerStore, VecStore};
use planar_core::{
    Cmp, Domain, ExecutionConfig, FeatureTable, IndexConfig, InequalityQuery, KeyStore,
    ParameterDomain, PlanarIndexSet, QueryScratch, TopKQuery,
};
use planar_geom::{dot_cmp_block, dot_slices};
use proptest::prelude::*;

/// A generated workload: a table folded into one sign octant (so the
/// indexed path, not just the scan fallback, is exercised), a batch of
/// queries, an index budget, and a quarantine bitmask.
#[derive(Debug, Clone)]
struct Scenario {
    dim: usize,
    rows: Vec<Vec<f64>>,
    signs: Vec<bool>,
    queries: Vec<(Vec<f64>, f64, Cmp)>,
    budget: usize,
    quarantine_mask: u32,
    min_candidates: usize,
    k: usize,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (1..=4usize)
        .prop_flat_map(|dim| {
            (
                Just(dim),
                prop::collection::vec(prop::collection::vec(-100.0..100.0_f64, dim), 1..80),
                prop::collection::vec(any::<bool>(), dim),
                prop::collection::vec(
                    (
                        prop::collection::vec(0.1..10.0_f64, dim),
                        -300.0..300.0_f64,
                        any::<bool>(),
                    ),
                    1..8,
                ),
                // Budgets > 1 give the planner siblings to intersect with;
                // budget 1 checks the no-sibling degenerate case.
                1..8usize,
                any::<u32>(),
                // 1 forces classification on every candidate set; the
                // default exercises the cost-model skip.
                prop_oneof![Just(1usize), Just(64usize)],
                1..6usize,
            )
        })
        .prop_map(
            |(dim, mut rows, signs, raw_queries, budget, quarantine_mask, min_candidates, k)| {
                for row in &mut rows {
                    for (v, &pos) in row.iter_mut().zip(&signs) {
                        *v = if pos { v.abs() } else { -v.abs() };
                    }
                }
                let queries = raw_queries
                    .into_iter()
                    .map(|(mag, b, leq)| {
                        let a: Vec<f64> = mag
                            .iter()
                            .zip(&signs)
                            .map(|(&m, &pos)| if pos { m } else { -m })
                            .collect();
                        (a, b, if leq { Cmp::Leq } else { Cmp::Geq })
                    })
                    .collect();
                Scenario {
                    dim,
                    rows,
                    signs,
                    queries,
                    budget,
                    quarantine_mask,
                    min_candidates,
                    k,
                }
            },
        )
}

fn domain(s: &Scenario) -> ParameterDomain {
    let axes: Vec<Domain> = s
        .signs
        .iter()
        .map(|&pos| {
            if pos {
                Domain::Continuous { lo: 0.1, hi: 10.0 }
            } else {
                Domain::Continuous {
                    lo: -10.0,
                    hi: -0.1,
                }
            }
        })
        .collect();
    ParameterDomain::new(axes).unwrap()
}

/// Build the index set and quarantine the positions picked out by the
/// scenario's bitmask (possibly none, possibly all — the latter degrades
/// every query to the exact scan, which must also be pruning-neutral).
fn build_set<S: KeyStore>(s: &Scenario) -> PlanarIndexSet<S> {
    let table = FeatureTable::from_rows(s.dim, s.rows.clone()).unwrap();
    let mut set: PlanarIndexSet<S> =
        PlanarIndexSet::build(table, domain(s), IndexConfig::with_budget(s.budget)).unwrap();
    for pos in 0..set.num_indices() {
        if s.quarantine_mask & (1 << (pos % 32)) != 0 {
            set.quarantine(pos);
        }
    }
    set
}

fn ineq_queries(s: &Scenario) -> Vec<InequalityQuery> {
    s.queries
        .iter()
        .map(|(a, b, cmp)| InequalityQuery::new(a.clone(), *cmp, *b).unwrap())
        .collect()
}

/// Pruning forced on for every candidate set size vs forced off.
fn configs(s: &Scenario) -> (ExecutionConfig, ExecutionConfig) {
    let on = ExecutionConfig::serial().intersect_min_candidates(s.min_candidates);
    let off = ExecutionConfig::serial().intersect_pruning(false);
    (on, off)
}

fn check_inequality_pruning<S: KeyStore>(s: &Scenario) {
    let set: PlanarIndexSet<S> = build_set(s);
    let (on, off) = configs(s);
    let mut scratch = QueryScratch::new();
    for q in ineq_queries(s) {
        let plain = set.query_with(&q, &off, &mut scratch).unwrap();
        let pruned = set.query_with(&q, &on, &mut scratch).unwrap();
        // Same ids in the same canonical order.
        assert_eq!(pruned.matches, plain.matches);
        assert_eq!(plain.stats.intersect_pruned, 0);
        // Every candidate the pruned run skipped was settled, not lost.
        assert_eq!(
            pruned.stats.verified + pruned.stats.intersect_pruned,
            plain.stats.verified
        );
        assert_eq!(pruned.stats.matched, plain.stats.matched);
        assert_eq!(pruned.stats.intermediate, plain.stats.intermediate);
    }
}

fn check_top_k_pruning<S: KeyStore>(s: &Scenario) {
    let set: PlanarIndexSet<S> = build_set(s);
    let (on, off) = configs(s);
    let mut scratch = QueryScratch::new();
    for q in ineq_queries(s) {
        let q = TopKQuery::new(q, s.k).unwrap();
        let plain = set.top_k_with(&q, &off, &mut scratch).unwrap();
        let pruned = set.top_k_with(&q, &on, &mut scratch).unwrap();
        assert_eq!(pruned.neighbors.len(), plain.neighbors.len());
        for (p, w) in pruned.neighbors.iter().zip(&plain.neighbors) {
            assert_eq!(p.0, w.0);
            assert_eq!(
                p.1.to_bits(),
                w.1.to_bits(),
                "distances must be bit-identical"
            );
        }
        assert!(pruned.stats.verified <= plain.stats.verified);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The columnar layout is a faithful mirror of the row store: every
    /// gathered row equals the row-major row, and the fused compare kernel
    /// over column segments reproduces the per-row scalar verdicts.
    #[test]
    fn columnar_layout_equals_row_major(s in scenario()) {
        let table = FeatureTable::from_rows(s.dim, s.rows.clone()).unwrap();
        let cols = table.columns();
        prop_assert!(cols.alignment_ok());
        let mut buf = vec![0.0; s.dim];
        for (id, row) in table.iter() {
            cols.gather_row(id as usize, &mut buf);
            for (a, b) in buf.iter().zip(row) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        let stride = cols.stride();
        for q in ineq_queries(&s) {
            let leq = q.cmp() == Cmp::Leq;
            for seg in cols.segments(0, table.len() as u32) {
                let mask = dot_cmp_block(q.a(), seg.cols, stride, seg.lanes, q.b(), leq);
                for lane in 0..seg.lanes {
                    let row = table.row(seg.first + lane as u32);
                    let want = q.satisfies_dot(dot_slices(q.a(), row));
                    prop_assert_eq!(
                        mask & (1 << lane) != 0,
                        want,
                        "lane {} of segment at row {}", lane, seg.first
                    );
                }
            }
        }
    }

    /// Intersection pruning never changes an inequality answer, on every
    /// store, under arbitrary quarantine patterns.
    #[test]
    fn pruned_inequality_equals_unpruned_vec_store(s in scenario()) {
        check_inequality_pruning::<VecStore>(&s);
    }

    #[test]
    fn pruned_inequality_equals_unpruned_bplus_tree(s in scenario()) {
        check_inequality_pruning::<BPlusTree>(&s);
    }

    #[test]
    fn pruned_inequality_equals_unpruned_eytzinger(s in scenario()) {
        check_inequality_pruning::<EytzingerStore>(&s);
    }

    /// Top-k with reject-only pruning returns bit-identical neighbors.
    #[test]
    fn pruned_top_k_equals_unpruned_vec_store(s in scenario()) {
        check_top_k_pruning::<VecStore>(&s);
    }

    #[test]
    fn pruned_top_k_equals_unpruned_bplus_tree(s in scenario()) {
        check_top_k_pruning::<BPlusTree>(&s);
    }

    #[test]
    fn pruned_top_k_equals_unpruned_eytzinger(s in scenario()) {
        check_top_k_pruning::<EytzingerStore>(&s);
    }
}
