//! Durability properties: arbitrary insert/update/delete interleavings
//! followed by a save→load round trip must be invisible to queries —
//! bit-identical answers (ids *and* distances) — for every key store.

use planar_core::{
    BPlusTree, Domain, EytzingerStore, FeatureTable, IndexConfig, InequalityQuery, KeyStore,
    ParameterDomain, PlanarIndexSet, TopKQuery, VecStore,
};
use proptest::prelude::*;

/// One step of a mutation trace. `pick` selects among live ids modulo the
/// live count, so every generated trace is valid by construction.
#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<f64>),
    Update(u16, Vec<f64>),
    Delete(u16),
}

#[derive(Debug, Clone)]
struct Trace {
    dim: usize,
    rows: Vec<Vec<f64>>,
    ops: Vec<Op>,
    queries: Vec<(Vec<f64>, f64)>,
    budget: usize,
}

fn trace() -> impl Strategy<Value = Trace> {
    (1..=4usize).prop_flat_map(|dim| {
        let row = prop::collection::vec(0.1..50.0_f64, dim);
        let op = prop_oneof![
            row.clone().prop_map(Op::Insert),
            (any::<u16>(), row.clone()).prop_map(|(pick, r)| Op::Update(pick, r)),
            any::<u16>().prop_map(Op::Delete),
        ];
        (
            Just(dim),
            prop::collection::vec(row, 1..30),
            prop::collection::vec(op, 0..25),
            prop::collection::vec(
                (prop::collection::vec(0.1..10.0_f64, dim), -50.0..150.0_f64),
                1..4,
            ),
            1..4usize,
        )
            .prop_map(|(dim, rows, ops, queries, budget)| Trace {
                dim,
                rows,
                ops,
                queries,
                budget,
            })
    })
}

/// Apply the trace to a set over store `S`, round-trip through bytes, and
/// check both loaded copies (strict and recovering) answer every query —
/// inequality and top-k — bit-identically to the live set.
fn check_store<S: KeyStore>(t: &Trace) {
    let table = FeatureTable::from_rows(t.dim, t.rows.clone()).unwrap();
    let domain =
        ParameterDomain::new(vec![Domain::Continuous { lo: 0.1, hi: 10.0 }; t.dim]).unwrap();
    let mut set: PlanarIndexSet<S> =
        PlanarIndexSet::build(table, domain, IndexConfig::with_budget(t.budget)).unwrap();

    let mut live: Vec<u32> = (0..t.rows.len() as u32).collect();
    let mut next_id = t.rows.len() as u32;
    for op in &t.ops {
        match op {
            Op::Insert(row) => {
                let id = set.insert_point(row).unwrap();
                assert_eq!(id, next_id);
                live.push(id);
                next_id += 1;
            }
            Op::Update(pick, row) if !live.is_empty() => {
                let id = live[*pick as usize % live.len()];
                set.update_point(id, row).unwrap();
            }
            Op::Delete(pick) if !live.is_empty() => {
                let slot = *pick as usize % live.len();
                set.delete_point(live[slot]).unwrap();
                live.remove(slot);
            }
            _ => {}
        }
    }

    let bytes = set.to_bytes();
    let strict = PlanarIndexSet::<S>::from_bytes(&bytes).unwrap();
    let (recovered, report) = PlanarIndexSet::<S>::from_bytes_recover(&bytes).unwrap();
    assert!(
        report.is_clean(),
        "uncorrupted bytes must load clean: {report:?}"
    );
    assert_eq!(strict.len(), set.len());

    for (a, b) in &t.queries {
        let q = InequalityQuery::leq(a.clone(), *b).unwrap();
        let want = set.query(&q).unwrap().sorted_ids();
        assert_eq!(strict.query(&q).unwrap().sorted_ids(), want);
        assert_eq!(recovered.query(&q).unwrap().sorted_ids(), want);

        let tk = TopKQuery::new(q, 5).unwrap();
        // Distances too: the round trip must preserve keys bit-for-bit.
        let want_k = set.top_k(&tk).unwrap().neighbors;
        assert_eq!(strict.top_k(&tk).unwrap().neighbors, want_k);
        assert_eq!(recovered.top_k(&tk).unwrap().neighbors, want_k);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mutated_sets_round_trip_exactly_vec_store(t in trace()) {
        check_store::<VecStore>(&t);
    }

    #[test]
    fn mutated_sets_round_trip_exactly_bptree(t in trace()) {
        check_store::<BPlusTree>(&t);
    }

    #[test]
    fn mutated_sets_round_trip_exactly_eytzinger(t in trace()) {
        check_store::<EytzingerStore>(&t);
    }
}
