//! Property-based tests for the Planar index.
//!
//! The central contract — the index is *exact* (paper's "accurate manner") —
//! is tested by comparing every answer against the sequential scan on
//! arbitrary data and queries, across octants, comparison directions, both
//! key stores, and under dynamic updates.

use planar_core::{BPlusTree, VecStore};
use planar_core::{
    Cmp, Domain, FeatureTable, IndexConfig, InequalityQuery, ParameterDomain, PlanarIndexSet,
    SeqScan, TopKQuery,
};
use proptest::prelude::*;

/// A generated scenario: a table, a sign-fixed domain, and queries drawn
/// from (around) that domain.
#[derive(Debug, Clone)]
struct Scenario {
    dim: usize,
    rows: Vec<Vec<f64>>,
    signs: Vec<bool>, // true = positive axis
    queries: Vec<(Vec<f64>, f64, Cmp)>,
    budget: usize,
}

fn coord() -> impl Strategy<Value = f64> {
    prop_oneof![
        4 => -100.0..100.0_f64,
        1 => Just(0.0),
        1 => -1.0..1.0_f64,
    ]
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (1..=5usize)
        .prop_flat_map(|dim| {
            (
                Just(dim),
                prop::collection::vec(prop::collection::vec(coord(), dim), 1..60),
                prop::collection::vec(any::<bool>(), dim),
                prop::collection::vec(
                    (
                        prop::collection::vec(0.1..10.0_f64, dim),
                        -200.0..200.0_f64,
                        any::<bool>(),
                    ),
                    1..6,
                ),
                1..8usize,
            )
        })
        .prop_map(|(dim, rows, signs, raw_queries, budget)| {
            let queries = raw_queries
                .into_iter()
                .map(|(mag, b, leq)| {
                    let a: Vec<f64> = mag
                        .iter()
                        .zip(&signs)
                        .map(|(&m, &pos)| if pos { m } else { -m })
                        .collect();
                    (a, b, if leq { Cmp::Leq } else { Cmp::Geq })
                })
                .collect();
            Scenario {
                dim,
                rows,
                signs,
                queries,
                budget,
            }
        })
}

fn build_domain(s: &Scenario) -> ParameterDomain {
    ParameterDomain::new(
        s.signs
            .iter()
            .map(|&pos| {
                if pos {
                    Domain::Continuous { lo: 0.1, hi: 10.0 }
                } else {
                    Domain::Continuous {
                        lo: -10.0,
                        hi: -0.1,
                    }
                }
            })
            .collect(),
    )
    .expect("sign-fixed domain is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fundamental exactness property: indexed answers equal scan
    /// answers for arbitrary data/queries in arbitrary octants, with the
    /// packed store.
    #[test]
    fn index_equals_scan_vec_store(s in scenario()) {
        let table = FeatureTable::from_rows(s.dim, s.rows.clone()).unwrap();
        let scan_table = table.clone();
        let set: PlanarIndexSet<VecStore> = PlanarIndexSet::build(
            table,
            build_domain(&s),
            IndexConfig::with_budget(s.budget),
        )
        .unwrap();
        let scan = SeqScan::new(&scan_table);
        for (a, b, cmp) in &s.queries {
            let q = InequalityQuery::new(a.clone(), *cmp, *b).unwrap();
            let got = set.query(&q).unwrap();
            prop_assert!(got.stats.used_index(), "expected indexed path: {:?}", got.stats.path);
            prop_assert_eq!(got.sorted_ids(), scan.evaluate(&q).unwrap());
        }
    }

    /// Same with the B+-tree store.
    #[test]
    fn index_equals_scan_bptree(s in scenario()) {
        let table = FeatureTable::from_rows(s.dim, s.rows.clone()).unwrap();
        let scan_table = table.clone();
        let set: PlanarIndexSet<BPlusTree> = PlanarIndexSet::build(
            table,
            build_domain(&s),
            IndexConfig::with_budget(s.budget),
        )
        .unwrap();
        let scan = SeqScan::new(&scan_table);
        for (a, b, cmp) in &s.queries {
            let q = InequalityQuery::new(a.clone(), *cmp, *b).unwrap();
            prop_assert_eq!(set.query(&q).unwrap().sorted_ids(), scan.evaluate(&q).unwrap());
        }
    }

    /// Top-k answers (ids, distances, and order) equal brute force.
    #[test]
    fn top_k_equals_brute_force(s in scenario(), k in 1..20usize) {
        let table = FeatureTable::from_rows(s.dim, s.rows.clone()).unwrap();
        let scan_table = table.clone();
        let set: PlanarIndexSet<VecStore> = PlanarIndexSet::build(
            table,
            build_domain(&s),
            IndexConfig::with_budget(s.budget),
        )
        .unwrap();
        let scan = SeqScan::new(&scan_table);
        for (a, b, cmp) in &s.queries {
            let q = TopKQuery::new(InequalityQuery::new(a.clone(), *cmp, *b).unwrap(), k).unwrap();
            let got = set.top_k(&q).unwrap();
            let want = scan.top_k(&q).unwrap();
            prop_assert_eq!(&got.neighbors, &want, "k={}", k);
            // Distances must be ascending and all results satisfy the query.
            for w in got.neighbors.windows(2) {
                prop_assert!(w[0].1 <= w[1].1);
            }
            for (id, _) in &got.neighbors {
                prop_assert!(q.query.satisfies(scan_table.row(*id)));
            }
        }
    }

    /// Dynamic mutations (insert/update/delete) preserve exactness: apply a
    /// random mutation trace, then compare against a freshly-scanned model.
    #[test]
    fn dynamic_updates_stay_exact(
        s in scenario(),
        ops in prop::collection::vec((0..3u8, prop::collection::vec(0.1..50.0_f64, 5), any::<u16>()), 1..20),
    ) {
        let table = FeatureTable::from_rows(s.dim, s.rows.clone()).unwrap();
        let mut set: PlanarIndexSet<BPlusTree> = PlanarIndexSet::build(
            table,
            build_domain(&s),
            IndexConfig::with_budget(s.budget.min(3)),
        )
        .unwrap();
        // Model: id → row (None = deleted).
        let mut model: Vec<Option<Vec<f64>>> = s.rows.iter().cloned().map(Some).collect();

        for (op, vals, pick) in &ops {
            let row: Vec<f64> = vals.iter().take(s.dim).copied().collect();
            let live: Vec<u32> = model
                .iter()
                .enumerate()
                .filter_map(|(i, r)| r.as_ref().map(|_| i as u32))
                .collect();
            match op {
                0 => {
                    let id = set.insert_point(&row).unwrap();
                    prop_assert_eq!(id as usize, model.len());
                    model.push(Some(row));
                }
                1 if !live.is_empty() => {
                    let id = live[*pick as usize % live.len()];
                    set.update_point(id, &row).unwrap();
                    model[id as usize] = Some(row);
                }
                2 if !live.is_empty() => {
                    let id = live[*pick as usize % live.len()];
                    set.delete_point(id).unwrap();
                    model[id as usize] = None;
                }
                _ => {}
            }
        }

        for (a, b, cmp) in &s.queries {
            let q = InequalityQuery::new(a.clone(), *cmp, *b).unwrap();
            let got = set.query(&q).unwrap().sorted_ids();
            let want: Vec<u32> = model
                .iter()
                .enumerate()
                .filter_map(|(i, r)| {
                    r.as_ref()
                        .filter(|row| q.satisfies(row))
                        .map(|_| i as u32)
                })
                .collect();
            prop_assert_eq!(got, want);
        }
    }

    /// Pruning statistics are consistent: intervals partition the dataset
    /// and only the intermediate interval is verified.
    #[test]
    fn stats_are_consistent(s in scenario()) {
        let table = FeatureTable::from_rows(s.dim, s.rows.clone()).unwrap();
        let set: PlanarIndexSet<VecStore> = PlanarIndexSet::build(
            table,
            build_domain(&s),
            IndexConfig::with_budget(s.budget),
        )
        .unwrap();
        for (a, b, cmp) in &s.queries {
            let q = InequalityQuery::new(a.clone(), *cmp, *b).unwrap();
            let out = set.query(&q).unwrap();
            let st = &out.stats;
            prop_assert_eq!(st.smaller + st.intermediate + st.larger, st.n);
            prop_assert_eq!(st.verified, st.intermediate);
            prop_assert_eq!(st.matched, out.matches.len());
            prop_assert!((0.0..=1.0).contains(&st.pruned_fraction()));
        }
    }

    /// All selection strategies return the same (exact) answers.
    #[test]
    fn strategies_are_interchangeable(s in scenario()) {
        use planar_core::SelectionStrategy::*;
        let table = FeatureTable::from_rows(s.dim, s.rows.clone()).unwrap();
        let mut set: PlanarIndexSet<VecStore> = PlanarIndexSet::build(
            table,
            build_domain(&s),
            IndexConfig::with_budget(s.budget),
        )
        .unwrap();
        for (a, b, cmp) in &s.queries {
            let q = InequalityQuery::new(a.clone(), *cmp, *b).unwrap();
            let mut answers = Vec::new();
            for strat in [MinStretch, MinAngle, OracleCount] {
                set.set_strategy(strat);
                answers.push(set.query(&q).unwrap().sorted_ids());
            }
            prop_assert_eq!(&answers[0], &answers[1]);
            prop_assert_eq!(&answers[0], &answers[2]);
        }
    }

    /// The oracle-count strategy never produces a larger intermediate
    /// interval than the heuristics (it is the lower bound they chase).
    #[test]
    fn oracle_count_is_optimal(s in scenario()) {
        use planar_core::SelectionStrategy::*;
        let table = FeatureTable::from_rows(s.dim, s.rows.clone()).unwrap();
        let mut set: PlanarIndexSet<VecStore> = PlanarIndexSet::build(
            table,
            build_domain(&s),
            IndexConfig::with_budget(s.budget),
        )
        .unwrap();
        for (a, b, cmp) in &s.queries {
            let q = InequalityQuery::new(a.clone(), *cmp, *b).unwrap();
            set.set_strategy(OracleCount);
            let oracle_ii = set.query(&q).unwrap().stats.intermediate;
            for strat in [MinStretch, MinAngle] {
                set.set_strategy(strat);
                let ii = set.query(&q).unwrap().stats.intermediate;
                prop_assert!(oracle_ii <= ii, "{strat:?}: oracle {oracle_ii} > {ii}");
            }
        }
    }
}
