//! Property tests for the quantized filter tier: for arbitrary tables,
//! queries, quarantine patterns, policies, and mutation interleavings, a
//! store with quantization enabled must return **bit-identical** answers
//! to its unquantized twin — on the planar, sharded, durable, and
//! concurrent surfaces alike. The tier is a filter in front of exact
//! re-verification, so any divergence at all is a soundness bug, not a
//! precision tradeoff.

use planar_core::{
    Cmp, Domain, FeatureTable, IndexConfig, InequalityQuery, ParameterDomain, PlanarIndexSet,
    QuantPolicy, QuantTier, TopKQuery, VecStore,
};
use planar_core::{
    ConcurrencyConfig, ConcurrentPlanarIndexSet, DurablePlanarIndexSet, ShardConfig,
    ShardedIndexSet, TempDir, WalOptions,
};
use proptest::prelude::*;

/// One mutation against a store (ids are taken modulo the live range so
/// every generated op applies cleanly to both twins).
#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<f64>),
    Update(usize, Vec<f64>),
    Delete(usize),
}

#[derive(Debug, Clone)]
struct Scenario {
    dim: usize,
    rows: Vec<Vec<f64>>,
    signs: Vec<bool>,
    queries: Vec<(Vec<f64>, f64, Cmp)>,
    ops: Vec<Op>,
    budget: usize,
    quarantine_mask: u32,
    policy: QuantPolicy,
    k: usize,
}

/// Mixed magnitudes (1e-3 … 1e3) stress the per-dimension scale fitting;
/// the sign fold keeps every row in one octant so the indexed path (not
/// just the scan fallback) carries the filter.
fn scenario() -> impl Strategy<Value = Scenario> {
    (1..=4usize)
        .prop_flat_map(|dim| {
            (
                Just(dim),
                prop::collection::vec(prop::collection::vec(-1e3..1e3_f64, dim), 2..90),
                prop::collection::vec(any::<bool>(), dim),
                prop::collection::vec(
                    (
                        prop::collection::vec(0.001..10.0_f64, dim),
                        -3e3..3e3_f64,
                        any::<bool>(),
                    ),
                    1..8,
                ),
                prop::collection::vec(
                    prop_oneof![
                        prop::collection::vec(-1e3..1e3_f64, dim).prop_map(Op::Insert),
                        (any::<usize>(), prop::collection::vec(-1e3..1e3_f64, dim))
                            .prop_map(|(i, row)| Op::Update(i, row)),
                        any::<usize>().prop_map(Op::Delete),
                    ],
                    0..12,
                ),
                1..6usize,
                any::<u32>(),
                prop_oneof![
                    Just(QuantPolicy {
                        tier: QuantTier::I8,
                        slack: 1.0
                    }),
                    Just(QuantPolicy {
                        tier: QuantTier::I16,
                        slack: 1.0
                    }),
                    Just(QuantPolicy {
                        tier: QuantTier::I16,
                        slack: 4.0
                    }),
                ],
                1..6usize,
            )
        })
        .prop_map(
            |(dim, mut rows, signs, raw_queries, mut ops, budget, quarantine_mask, policy, k)| {
                let fold = |row: &mut Vec<f64>, signs: &[bool]| {
                    for (v, &pos) in row.iter_mut().zip(signs) {
                        *v = if pos { v.abs() } else { -v.abs() };
                    }
                };
                for row in &mut rows {
                    fold(row, &signs);
                }
                for op in &mut ops {
                    match op {
                        Op::Insert(row) | Op::Update(_, row) => fold(row, &signs),
                        Op::Delete(_) => {}
                    }
                }
                let queries = raw_queries
                    .into_iter()
                    .map(|(mag, b, leq)| {
                        let a: Vec<f64> = mag
                            .iter()
                            .zip(&signs)
                            .map(|(&m, &pos)| if pos { m } else { -m })
                            .collect();
                        (a, b, if leq { Cmp::Leq } else { Cmp::Geq })
                    })
                    .collect();
                Scenario {
                    dim,
                    rows,
                    signs,
                    queries,
                    ops,
                    budget,
                    quarantine_mask,
                    policy,
                    k,
                }
            },
        )
}

fn domain(s: &Scenario) -> ParameterDomain {
    ParameterDomain::new(
        s.signs
            .iter()
            .map(|&pos| {
                if pos {
                    Domain::Continuous {
                        lo: 0.001,
                        hi: 10.0,
                    }
                } else {
                    Domain::Continuous {
                        lo: -10.0,
                        hi: -0.001,
                    }
                }
            })
            .collect(),
    )
    .unwrap()
}

fn build_planar(s: &Scenario) -> PlanarIndexSet<VecStore> {
    let table = FeatureTable::from_rows(s.dim, s.rows.clone()).unwrap();
    let mut set: PlanarIndexSet<VecStore> =
        PlanarIndexSet::build(table, domain(s), IndexConfig::with_budget(s.budget)).unwrap();
    for pos in 0..set.num_indices() {
        if s.quarantine_mask & (1 << (pos % 32)) != 0 {
            set.quarantine(pos);
        }
    }
    set
}

fn ineq_queries(s: &Scenario) -> Vec<InequalityQuery> {
    s.queries
        .iter()
        .map(|(a, b, cmp)| InequalityQuery::new(a.clone(), *cmp, *b).unwrap())
        .collect()
}

/// Apply one op to a planar set (ids folded into the current table range;
/// deletes of dead ids are skipped the same way on both twins).
fn apply_planar(set: &mut PlanarIndexSet<VecStore>, op: &Op) {
    match op {
        Op::Insert(row) => {
            set.insert_point(row).unwrap();
        }
        Op::Update(i, row) => {
            let id = (*i % set.table().len()) as u32;
            if set.is_live(id) {
                set.update_point(id, row).unwrap();
            }
        }
        Op::Delete(i) => {
            let id = (*i % set.table().len()) as u32;
            if set.is_live(id) {
                set.delete_point(id).unwrap();
            }
        }
    }
}

fn assert_same_answers(
    plain: &PlanarIndexSet<VecStore>,
    quant: &PlanarIndexSet<VecStore>,
    s: &Scenario,
) {
    let queries = ineq_queries(s);
    for q in &queries {
        let p = plain.query(q).unwrap();
        let x = quant.query(q).unwrap();
        assert_eq!(p.matches, x.matches, "inequality answers diverged");
        // The filter never changes what counts as verified work: every
        // lane it settles or re-verifies was a candidate either way.
        assert_eq!(p.stats.matched, x.stats.matched);
        // Scan oracle agrees with both (modulo traversal order).
        assert_eq!(p.sorted_ids(), plain.query_scan(q).unwrap().sorted_ids());
    }
    let batch: Vec<TopKQuery> = queries
        .iter()
        .map(|q| TopKQuery::new(q.clone(), s.k).unwrap())
        .collect();
    for q in &batch {
        let p = plain.top_k(q).unwrap();
        let x = quant.top_k(q).unwrap();
        assert_eq!(p.neighbors.len(), x.neighbors.len());
        for (a, b) in p.neighbors.iter().zip(&x.neighbors) {
            assert_eq!(a.0, b.0);
            assert_eq!(
                a.1.to_bits(),
                b.1.to_bits(),
                "margins must be bit-identical"
            );
        }
    }
    let p = plain
        .query_batch(&queries, &planar_core::ExecutionConfig::serial())
        .unwrap();
    let x = quant
        .query_batch(&queries, &planar_core::ExecutionConfig::serial())
        .unwrap();
    for (a, b) in p.iter().zip(&x) {
        assert_eq!(a.matches, b.matches, "batch answers diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Planar twins: identical builds, one quantized — identical answers
    /// for inequality, top-k, and batches, before and after an arbitrary
    /// mutation interleaving (which exercises incremental block re-encode
    /// on update and appended-block sync on insert).
    #[test]
    fn quantized_planar_equals_unquantized(s in scenario()) {
        let plain = build_planar(&s);
        let mut quant = build_planar(&s);
        quant.set_quant_policy(s.policy);
        assert_same_answers(&plain, &quant, &s);

        let mut plain = plain;
        for op in &s.ops {
            apply_planar(&mut plain, op);
            apply_planar(&mut quant, op);
        }
        prop_assert_eq!(quant.quant_policy(), s.policy, "mutations must not drop the policy");
        assert_same_answers(&plain, &quant, &s);
    }

    /// Sharded twins, including per-shard policies installed via the
    /// sharded forwarding API and threshold-gated compaction (which
    /// retunes each compacted shard independently).
    #[test]
    fn quantized_sharded_equals_unquantized(s in scenario()) {
        let shards = 1 + s.budget % 3;
        if s.rows.len() < shards * 2 {
            return;
        }
        let build = || -> ShardedIndexSet<VecStore> {
            ShardedIndexSet::build(
                FeatureTable::from_rows(s.dim, s.rows.clone()).unwrap(),
                domain(&s),
                IndexConfig::with_budget(s.budget),
                ShardConfig::round_robin(shards),
            )
            .unwrap()
        };
        let mut plain = build();
        let mut quant = build();
        quant.set_quant_policy(s.policy);

        // Global ids are assigned sequentially from the initial row count,
        // so tracking inserts locally reproduces the valid id range.
        let mut total = s.rows.len();
        for op in &s.ops {
            match op {
                Op::Insert(row) => {
                    plain.insert_point(row).unwrap();
                    quant.insert_point(row).unwrap();
                    total += 1;
                }
                Op::Update(i, row) => {
                    let id = (*i % total) as u32;
                    if plain.is_live(id) {
                        plain.update_point(id, row).unwrap();
                        quant.update_point(id, row).unwrap();
                    }
                }
                Op::Delete(i) => {
                    let id = (*i % total) as u32;
                    if plain.is_live(id) {
                        plain.delete_point(id).unwrap();
                        quant.delete_point(id).unwrap();
                    }
                }
            }
        }
        plain.compact(0.3);
        quant.compact(0.3);

        for q in ineq_queries(&s) {
            let p = plain.query(&q).unwrap();
            let x = quant.query(&q).unwrap();
            prop_assert_eq!(p.sorted_ids(), x.sorted_ids(), "sharded answers diverged");
            let k = TopKQuery::new(q, s.k).unwrap();
            let pt = plain.top_k(&k).unwrap();
            let xt = quant.top_k(&k).unwrap();
            prop_assert_eq!(pt.neighbors.len(), xt.neighbors.len());
            for (a, b) in pt.neighbors.iter().zip(&xt.neighbors) {
                prop_assert_eq!(a.0, b.0);
                prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
        }
    }

    /// Durable twins: the policy survives checkpoint → reopen (persisted
    /// as a core flag, mirror re-encoded from parsed rows), and answers
    /// stay identical through WAL-logged mutations on both sides of the
    /// restart.
    #[test]
    fn quantized_durable_equals_unquantized(s in scenario()) {
        let dir_p = TempDir::new("quant-prop-plain").unwrap();
        let dir_q = TempDir::new("quant-prop-quant").unwrap();
        let mut plain =
            DurablePlanarIndexSet::create(dir_p.path(), build_planar(&s), WalOptions::default())
                .unwrap();
        let mut quantized = build_planar(&s);
        quantized.set_quant_policy(s.policy);
        let mut quant =
            DurablePlanarIndexSet::create(dir_q.path(), quantized, WalOptions::default()).unwrap();

        for op in &s.ops {
            match op {
                Op::Insert(row) => {
                    plain.insert_point(row).unwrap();
                    quant.insert_point(row).unwrap();
                }
                Op::Update(i, row) => {
                    let id = (*i % plain.set().table().len()) as u32;
                    if plain.set().is_live(id) {
                        plain.update_point(id, row).unwrap();
                        quant.update_point(id, row).unwrap();
                    }
                }
                Op::Delete(i) => {
                    let id = (*i % plain.set().table().len()) as u32;
                    if plain.set().is_live(id) {
                        plain.delete_point(id).unwrap();
                        quant.delete_point(id).unwrap();
                    }
                }
            }
        }
        // Checkpoint retunes from the (empty-ish) window; whatever policy
        // it lands on, answers must not move.
        plain.checkpoint().unwrap();
        quant.checkpoint().unwrap();
        let (plain, _) =
            PlanarIndexSet::<VecStore>::open_durable(dir_p.path(), WalOptions::default()).unwrap();
        let (quant, _) =
            PlanarIndexSet::<VecStore>::open_durable(dir_q.path(), WalOptions::default()).unwrap();
        for q in ineq_queries(&s) {
            let p = plain.set().query(&q).unwrap();
            let x = quant.set().query(&q).unwrap();
            prop_assert_eq!(p.matches, x.matches, "durable answers diverged after reopen");
        }
    }

    /// Concurrent twins: policy installed through the epoch-published
    /// wrapper (copy-on-publish clones carry the quantized mirror), with
    /// mutations interleaved between query rounds.
    #[test]
    fn quantized_concurrent_equals_unquantized(s in scenario()) {
        let plain = ConcurrentPlanarIndexSet::new(build_planar(&s), ConcurrencyConfig::default());
        let quant = ConcurrentPlanarIndexSet::new(build_planar(&s), ConcurrencyConfig::default());
        quant.set_quant_policy(s.policy);

        let check = |round: &str| {
            let ps = plain.snapshot();
            let qs = quant.snapshot();
            for q in ineq_queries(&s) {
                let p = ps.query(&q).unwrap();
                let x = qs.query(&q).unwrap();
                assert_eq!(p.matches, x.matches, "concurrent answers diverged ({round})");
            }
        };
        check("pre-mutation");
        for op in &s.ops {
            match op {
                Op::Insert(row) => {
                    plain.insert_point(row).unwrap();
                    quant.insert_point(row).unwrap();
                }
                Op::Update(i, row) => {
                    let len = plain.snapshot().table().len();
                    let id = (*i % len) as u32;
                    if plain.snapshot().is_live(id) {
                        plain.update_point(id, row).unwrap();
                        quant.update_point(id, row).unwrap();
                    }
                }
                Op::Delete(i) => {
                    let len = plain.snapshot().table().len();
                    let id = (*i % len) as u32;
                    if plain.snapshot().is_live(id) {
                        plain.delete_point(id).unwrap();
                        quant.delete_point(id).unwrap();
                    }
                }
            }
        }
        plain.publish();
        quant.publish();
        check("post-mutation");
        // Retune folds the published epoch's observations back in and
        // re-publishes; whatever tier it picks, answers must hold.
        quant.retune_quantization(&planar_core::QuantAutotuneConfig::default());
        check("post-retune");
    }
}
