//! Property tests for the extension modules: conjunction (linear
//! constraint) queries, the axis-reduction router, and the adaptive set —
//! all must preserve the core contract: answers ≡ brute force.

use planar_core::{
    AdaptiveConfig, AdaptivePlanarIndexSet, AxisReductionRouter, Cmp, ConjunctionQuery,
    FeatureTable, IndexConfig, InequalityQuery, ParameterDomain, PlanarIndexSet, VecStore,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Scenario {
    dim: usize,
    rows: Vec<Vec<f64>>,
    constraints: Vec<(Vec<f64>, f64, bool)>, // (a, b, leq)
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (2..=4usize)
        .prop_flat_map(|dim| {
            (
                Just(dim),
                prop::collection::vec(prop::collection::vec(0.0..100.0_f64, dim), 5..80),
                prop::collection::vec(
                    (
                        prop::collection::vec(0.1..5.0_f64, dim),
                        -50.0..400.0_f64,
                        any::<bool>(),
                    ),
                    1..5,
                ),
            )
        })
        .prop_map(|(dim, rows, constraints)| Scenario {
            dim,
            rows,
            constraints,
        })
}

fn build_set(s: &Scenario) -> PlanarIndexSet<VecStore> {
    let table = FeatureTable::from_rows(s.dim, s.rows.clone()).unwrap();
    let domain = ParameterDomain::uniform_continuous(s.dim, 0.1, 5.0).unwrap();
    PlanarIndexSet::build(table, domain, IndexConfig::with_budget(5)).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conjunctions of arbitrary constraints answer exactly like brute
    /// force over the table.
    #[test]
    fn conjunction_equals_brute_force(s in scenario()) {
        let set = build_set(&s);
        let constraints: Vec<InequalityQuery> = s
            .constraints
            .iter()
            .map(|(a, b, leq)| {
                InequalityQuery::new(a.clone(), if *leq { Cmp::Leq } else { Cmp::Geq }, *b).unwrap()
            })
            .collect();
        let q = ConjunctionQuery::new(constraints).unwrap();
        let got = set.query_conjunction(&q).unwrap();
        let want: Vec<u32> = set
            .table()
            .iter()
            .filter(|(_, row)| q.satisfies(row))
            .map(|(id, _)| id)
            .collect();
        prop_assert_eq!(got.sorted_ids(), want);
        // Stats partition the dataset.
        let st = &got.stats;
        prop_assert_eq!(st.smaller + st.intermediate + st.larger, st.n);
    }

    /// Zeroing out arbitrary coefficient subsets and routing through the
    /// axis-reduction cache stays exact.
    #[test]
    fn router_is_exact_for_any_zero_pattern(
        s in scenario(),
        zero_mask in prop::collection::vec(any::<bool>(), 4),
    ) {
        let set = build_set(&s);
        let mut router = AxisReductionRouter::new(set, IndexConfig::with_budget(4)).unwrap();
        for (a, b, leq) in &s.constraints {
            let mut masked = a.clone();
            for (i, v) in masked.iter_mut().enumerate() {
                if zero_mask[i % zero_mask.len()] {
                    *v = 0.0;
                }
            }
            let q = InequalityQuery::new(masked, if *leq { Cmp::Leq } else { Cmp::Geq }, *b)
                .unwrap();
            let got = router.query(&q).unwrap();
            let want: Vec<u32> = router
                .base()
                .table()
                .iter()
                .filter(|(_, row)| q.satisfies(row))
                .map(|(id, _)| id)
                .collect();
            prop_assert_eq!(got.sorted_ids(), want);
        }
    }

    /// The adaptive wrapper never changes answers, whatever it decides to
    /// do about rebuilding.
    #[test]
    fn adaptive_preserves_exactness(s in scenario()) {
        let table = FeatureTable::from_rows(s.dim, s.rows.clone()).unwrap();
        let domain = ParameterDomain::uniform_continuous(s.dim, 0.1, 5.0).unwrap();
        let mut adaptive: AdaptivePlanarIndexSet = AdaptivePlanarIndexSet::build(
            table,
            domain,
            AdaptiveConfig {
                cooldown: 2,
                min_queries: 2,
                pruning_threshold: 1.1, // always willing to rebuild
                ..AdaptiveConfig::with_budget(4)
            },
        )
        .unwrap();
        for (a, b, leq) in &s.constraints {
            let q = InequalityQuery::new(a.clone(), if *leq { Cmp::Leq } else { Cmp::Geq }, *b)
                .unwrap();
            let got = adaptive.query(&q).unwrap().sorted_ids();
            let want = adaptive.inner().query_scan(&q).unwrap().sorted_ids();
            prop_assert_eq!(got, want);
        }
    }
}
