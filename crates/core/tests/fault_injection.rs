//! Fault-injection properties for the crash-safe snapshot path and the
//! quarantine-and-degrade query path.
//!
//! The contracts under test:
//!
//! 1. **No panic on corrupt input**: `from_bytes` / `from_bytes_recover`
//!    return a typed error (or quarantine) for *any* mangled byte stream —
//!    bit flips, truncations, zeroed ranges — never a panic or an
//!    out-of-memory allocation from attacker-controlled lengths.
//! 2. **Crash safety**: a save that dies mid-write (before the atomic
//!    rename) leaves the previous snapshot loadable and bit-exact.
//! 3. **Recovery exactness**: whatever `load_or_recover` salvages answers
//!    queries identically to a fresh scan — quarantined indices are routed
//!    around, and a fully-quarantined set degrades to the exact scan with
//!    `ServedBy::Degraded` provenance.
//! 4. **Panic isolation**: a query that panics inside a batch surfaces as
//!    a per-query `PlanarError::Internal`, even across worker threads.

use planar_core::fault::{Corruption, FaultyIo, IoFault, StdIo, TempDir};
use planar_core::{
    Domain, ExecutionConfig, FeatureTable, IndexConfig, InequalityQuery, ParameterDomain,
    PlanarError, PlanarIndexSet, SaveOptions, ServedBy, VecStore,
};
use proptest::prelude::*;
use std::time::Duration;

/// A generated snapshot scenario: positive-octant data plus probe queries.
#[derive(Debug, Clone)]
struct Scenario {
    dim: usize,
    rows: Vec<Vec<f64>>,
    queries: Vec<(Vec<f64>, f64)>,
    budget: usize,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (1..=4usize).prop_flat_map(|dim| {
        (
            Just(dim),
            prop::collection::vec(prop::collection::vec(0.1..50.0_f64, dim), 1..40),
            prop::collection::vec(
                (prop::collection::vec(0.1..10.0_f64, dim), -100.0..200.0_f64),
                1..4,
            ),
            1..5usize,
        )
            .prop_map(|(dim, rows, queries, budget)| Scenario {
                dim,
                rows,
                queries,
                budget,
            })
    })
}

fn build(s: &Scenario) -> PlanarIndexSet {
    let table = FeatureTable::from_rows(s.dim, s.rows.clone()).unwrap();
    let domain =
        ParameterDomain::new(vec![Domain::Continuous { lo: 0.1, hi: 10.0 }; s.dim]).unwrap();
    PlanarIndexSet::build(table, domain, IndexConfig::with_budget(s.budget)).unwrap()
}

fn probe_queries(s: &Scenario) -> Vec<InequalityQuery> {
    s.queries
        .iter()
        .map(|(a, b)| InequalityQuery::leq(a.clone(), *b).unwrap())
        .collect()
}

/// Answers from the set for every probe query, via the normal path.
fn answers(set: &PlanarIndexSet, qs: &[InequalityQuery]) -> Vec<Vec<u32>> {
    qs.iter()
        .map(|q| set.query(q).unwrap().sorted_ids())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Contract 1: arbitrary single-site corruption never panics the
    /// loaders, and whatever `from_bytes_recover` salvages stays exact.
    #[test]
    fn corrupted_snapshots_never_panic_and_recovery_stays_exact(
        s in scenario(),
        kind in 0..3u8,
        offset_seed in any::<u64>(),
        bit in 0..8u8,
        len_seed in 0..64usize,
    ) {
        let set = build(&s);
        let qs = probe_queries(&s);
        let want = answers(&set, &qs);

        let mut bytes = set.to_bytes().to_vec();
        let offset = (offset_seed as usize) % bytes.len();
        let corruption = match kind {
            0 => Corruption::BitFlip { offset, bit: bit % 8 },
            1 => Corruption::TruncateAt(offset),
            _ => Corruption::ZeroRange { offset, len: len_seed },
        };
        corruption.apply(&mut bytes);

        // Strict load: Ok (corruption hit padding-equivalent bits, e.g.
        // flipping a NaN payload the comparison canonicalizes) or a typed
        // error — but never a panic.
        let _ = PlanarIndexSet::<VecStore>::from_bytes(&bytes);

        // Recovering load: if anything is salvaged, answers stay exact.
        if let Ok((recovered, report)) = PlanarIndexSet::<VecStore>::from_bytes_recover(&bytes) {
            prop_assert_eq!(report.total_indices, set.num_indices());
            let mut rebuilt = recovered;
            rebuilt.rebuild_quarantined();
            prop_assert_eq!(answers(&rebuilt, &qs), want);
        }
    }

    /// Contract 1, crafted-length variant: an arbitrary 64-bit `core_len`
    /// stamped into the preamble — a window single-bit flips of a small
    /// real length can never reach (e.g. values near `usize::MAX`, where
    /// naive `core_end + 8` arithmetic would wrap) — still yields Ok or a
    /// typed error from both loaders, never a panic.
    #[test]
    fn crafted_core_len_never_panics(s in scenario(), core_len in any::<u64>()) {
        let set = build(&s);
        let mut bytes = set.to_bytes().to_vec();
        // Preamble layout: magic [0..8) | flags [8..12) | core_len [12..20).
        bytes[12..20].copy_from_slice(&core_len.to_le_bytes());
        let _ = PlanarIndexSet::<VecStore>::from_bytes(&bytes);
        let _ = PlanarIndexSet::<VecStore>::from_bytes_recover(&bytes);
    }

    /// Contract 2: a crash at any chunk boundary mid-save leaves the
    /// previous snapshot loadable and bit-identical in its answers.
    #[test]
    fn crash_mid_save_leaves_previous_snapshot_loadable(
        s in scenario(),
        crash_after in 0..6u64,
    ) {
        let dir = TempDir::new("crash-midsave").unwrap();
        let path = dir.file("snapshot.plnr");

        let mut set = build(&s);
        let qs = probe_queries(&s);
        let old_answers = answers(&set, &qs);
        set.save_to(&path).unwrap();

        // Mutate, then attempt a save that crashes after `crash_after`
        // 4 KiB chunks (possibly before any byte lands).
        set.insert_point(&vec![1.0; s.dim]).unwrap();
        let new_answers = answers(&set, &qs);
        let mut io = FaultyIo::new(vec![IoFault::CrashAfterWrites(crash_after)]);
        let result = set.save_to_with(&path, &mut io, &SaveOptions::fail_fast());

        let (loaded, report) = PlanarIndexSet::<VecStore>::load_or_recover(&path).unwrap();
        prop_assert!(report.is_clean(), "crash must not corrupt the target: {report:?}");
        let got = answers(&loaded, &qs);
        if result.is_ok() {
            // Crash budget exceeded the file size: the save completed.
            prop_assert_eq!(got, new_answers);
        } else {
            // The rename never happened: the old snapshot is untouched.
            prop_assert!(io.is_crashed());
            prop_assert_eq!(got, old_answers);
        }
    }

    /// Transient write failures within the retry budget are invisible to
    /// callers: the save lands and loads back exactly.
    #[test]
    fn save_retries_past_transient_failures(s in scenario(), fail_nth in 0..3u64) {
        let dir = TempDir::new("transient-save").unwrap();
        let path = dir.file("snapshot.plnr");
        let set = build(&s);
        let qs = probe_queries(&s);

        let mut io = FaultyIo::new(vec![IoFault::FailNthWrite(fail_nth)]);
        let opts = SaveOptions::default().retries(3).backoff(Duration::from_millis(1));
        set.save_to_with(&path, &mut io, &opts).unwrap();

        let loaded = PlanarIndexSet::<VecStore>::load_from(&path).unwrap();
        prop_assert_eq!(answers(&loaded, &qs), answers(&set, &qs));
    }

    /// Contract 3: with every index quarantined the set still answers every
    /// query exactly, flagged as degraded service.
    #[test]
    fn fully_quarantined_set_serves_exact_degraded_answers(s in scenario()) {
        let mut set = build(&s);
        let qs = probe_queries(&s);
        let want: Vec<Vec<u32>> = qs
            .iter()
            .map(|q| set.query_scan(q).unwrap().sorted_ids())
            .collect();

        for pos in 0..set.num_indices() {
            set.quarantine(pos);
        }
        for (q, want_ids) in qs.iter().zip(&want) {
            let out = set.query(q).unwrap();
            prop_assert_eq!(out.served_by, ServedBy::Degraded);
            prop_assert_eq!(out.sorted_ids(), want_ids.clone());
        }

        // Rebuilding restores indexed service with identical answers.
        let rebuilt = set.rebuild_quarantined();
        prop_assert_eq!(rebuilt.len(), set.num_indices());
        for (q, want_ids) in qs.iter().zip(&want) {
            let out = set.query(q).unwrap();
            prop_assert!(!out.served_by.is_degraded());
            prop_assert_eq!(out.sorted_ids(), want_ids.clone());
        }
    }
}

/// Contract 4: a poisoned query inside a multi-threaded batch surfaces as
/// `PlanarError::Internal` in its own slot; sibling queries on the same and
/// other worker threads still answer.
#[test]
fn worker_panic_is_isolated_per_query() {
    let rows: Vec<Vec<f64>> = (1..=64).map(|i| vec![i as f64, (65 - i) as f64]).collect();
    let table = FeatureTable::from_rows(2, rows).unwrap();
    let domain = ParameterDomain::new(vec![Domain::Continuous { lo: 0.1, hi: 10.0 }; 2]).unwrap();
    let set: PlanarIndexSet =
        PlanarIndexSet::build(table, domain, IndexConfig::with_budget(3)).unwrap();

    let poison_b = 77.125_488_3;
    let qs: Vec<InequalityQuery> = (0..16)
        .map(|i| {
            let b = if i == 5 { poison_b } else { 10.0 + i as f64 };
            InequalityQuery::leq(vec![1.0, 1.0], b).unwrap()
        })
        .collect();

    planar_core::fault::arm_query_panic(poison_b);
    let results = set.query_batch_isolated(&qs, &ExecutionConfig::with_threads(4));
    planar_core::fault::disarm_query_panic();

    assert_eq!(results.len(), qs.len());
    for (i, r) in results.iter().enumerate() {
        if i == 5 {
            assert!(matches!(r, Err(PlanarError::Internal(_))), "slot 5: {r:?}");
        } else {
            let out = r.as_ref().expect("healthy query must answer");
            assert_eq!(out.sorted_ids(), set.query(&qs[i]).unwrap().sorted_ids());
        }
    }
}

/// The injectable IO layer and the real one agree: a fault-free `FaultyIo`
/// round-trips exactly like `StdIo`.
#[test]
fn faultless_io_matches_std_io() {
    let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
    let table = FeatureTable::from_rows(2, rows).unwrap();
    let domain = ParameterDomain::new(vec![Domain::Continuous { lo: 0.1, hi: 10.0 }; 2]).unwrap();
    let set: PlanarIndexSet =
        PlanarIndexSet::build(table, domain, IndexConfig::with_budget(2)).unwrap();

    let dir = TempDir::new("faultless-io").unwrap();
    let std_path = dir.file("std.plnr");
    let faulty_path = dir.file("faulty.plnr");

    set.save_to_with(&std_path, &mut StdIo, &SaveOptions::fail_fast())
        .unwrap();
    let mut io = FaultyIo::new(Vec::new());
    set.save_to_with(&faulty_path, &mut io, &SaveOptions::fail_fast())
        .unwrap();
    assert!(io.fired().is_empty());

    let a = std::fs::read(&std_path).unwrap();
    let b = std::fs::read(&faulty_path).unwrap();
    assert_eq!(a, b, "fault-free FaultyIo must write identical bytes");
}
