//! Property tests for the concurrent execution layer (`core::concurrent`):
//!
//! 1. **Snapshot isolation** — a reader pinned to epoch *E* never observes
//!    a mutation from epoch *E + 1*, across random mutation traces: every
//!    pin answers bit-identically to a serial twin frozen at pin time.
//! 2. **Concurrent ≡ serialized** — readers racing a live writer record
//!    `(epoch, answer)` pairs; replaying the mutation stream serially must
//!    reproduce every recorded answer exactly, so concurrent execution is
//!    indistinguishable from some serial schedule.
//! 3. **Group commit never acks-then-loses** — a crash injected at every
//!    append position (failed, torn, or post-append) under
//!    `FsyncPolicy::Always` must leave every *acknowledged* mutation
//!    recoverable; the faulted mutation itself may or may not survive, but
//!    recovery always lands on a clean prefix of the attempted stream.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use planar_core::fault::{arm_wal_fault, disarm_wal_fault, TempDir, WalFaultKind};
use planar_core::{
    Cmp, ConcurrencyConfig, ConcurrentDurablePlanarIndexSet, ConcurrentPlanarIndexSet,
    FeatureTable, IndexConfig, InequalityQuery, ParameterDomain, PlanarIndexSet, VecStore,
    WalOptions,
};
use proptest::prelude::*;

/// The WAL fault trigger is process-global; crash-sweep cases serialize on
/// this lock so an armed fault is never consumed by a neighbor's writer.
static WAL_LOCK: Mutex<()> = Mutex::new(());

/// One step of a mutation trace. `pick` indexes the live-id list modulo
/// its length, so traces are valid by construction. No `Compact`: these
/// traces also drive per-epoch oracles, which rely on stable ids.
#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<f64>),
    Update(u16, Vec<f64>),
    Delete(u16),
}

/// A mutation as actually applied (picks resolved to concrete ids), in
/// LSN/epoch order.
#[derive(Debug, Clone)]
enum Applied {
    Insert(Vec<f64>),
    Update(u32, Vec<f64>),
    Delete(u32),
}

#[derive(Debug, Clone)]
struct Trace {
    dim: usize,
    rows: Vec<Vec<f64>>,
    ops: Vec<Op>,
    probes: Vec<(Vec<f64>, f64)>,
    budget: usize,
}

fn trace() -> impl Strategy<Value = Trace> {
    (1..=3usize).prop_flat_map(|dim| {
        let row = prop::collection::vec(0.1..50.0_f64, dim);
        let op = prop_oneof![
            5 => row.clone().prop_map(Op::Insert),
            3 => (any::<u16>(), row.clone()).prop_map(|(pick, r)| Op::Update(pick, r)),
            3 => any::<u16>().prop_map(Op::Delete),
        ];
        (
            Just(dim),
            prop::collection::vec(row, 3..12),
            prop::collection::vec(op, 1..14),
            prop::collection::vec(
                (prop::collection::vec(0.1..10.0_f64, dim), -50.0..150.0_f64),
                1..4,
            ),
            1..4usize,
        )
            .prop_map(|(dim, rows, ops, probes, budget)| Trace {
                dim,
                rows,
                ops,
                probes,
                budget,
            })
    })
}

fn build_planar(t: &Trace) -> PlanarIndexSet<VecStore> {
    let table = FeatureTable::from_rows(t.dim, t.rows.clone()).unwrap();
    let domain = ParameterDomain::uniform_continuous(t.dim, 0.1, 10.0).unwrap();
    PlanarIndexSet::build(table, domain, IndexConfig::with_budget(t.budget)).unwrap()
}

fn probe_queries(t: &Trace) -> Vec<InequalityQuery> {
    t.probes
        .iter()
        .map(|(coeffs, b)| InequalityQuery::new(coeffs.clone(), Cmp::Leq, *b).unwrap())
        .collect()
}

fn answers(set: &PlanarIndexSet<VecStore>, queries: &[InequalityQuery]) -> Vec<Vec<u32>> {
    queries
        .iter()
        .map(|q| set.query(q).unwrap().sorted_ids())
        .collect()
}

/// Resolve the trace ops against a live-id list, returning the concrete
/// mutation stream a writer would apply (insert ids are `base + #prior
/// inserts` because deletes are tombstones and nothing compacts).
fn resolve_ops(t: &Trace) -> Vec<Applied> {
    let mut live: Vec<u32> = (0..t.rows.len() as u32).collect();
    let mut next_id = t.rows.len() as u32;
    let mut applied = Vec::new();
    for op in &t.ops {
        match op {
            Op::Insert(row) => {
                live.push(next_id);
                next_id += 1;
                applied.push(Applied::Insert(row.clone()));
            }
            Op::Update(pick, row) if !live.is_empty() => {
                let id = live[*pick as usize % live.len()];
                applied.push(Applied::Update(id, row.clone()));
            }
            Op::Delete(pick) if !live.is_empty() => {
                let slot = *pick as usize % live.len();
                let id = live.remove(slot);
                applied.push(Applied::Delete(id));
            }
            _ => {}
        }
    }
    applied
}

fn apply_one(set: &mut PlanarIndexSet<VecStore>, a: &Applied) {
    match a {
        Applied::Insert(row) => {
            set.insert_point(row).unwrap();
        }
        Applied::Update(id, row) => set.update_point(*id, row).unwrap(),
        Applied::Delete(id) => set.delete_point(*id).unwrap(),
    }
}

/// Serial-prefix oracle: the base set with the first `prefix` mutations
/// applied — what epoch `1 + prefix` (publish cadence 1) must answer.
fn oracle_prefix(t: &Trace, applied: &[Applied], prefix: usize) -> PlanarIndexSet<VecStore> {
    let mut set = build_planar(t);
    for a in &applied[..prefix] {
        apply_one(&mut set, a);
    }
    set
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Snapshot isolation, deterministically interleaved: pin a snapshot
    /// before every mutation, apply the whole trace, then demand each pin
    /// still answers exactly as the serial twin did at pin time — i.e. no
    /// pin ever observed a later epoch's mutation.
    #[test]
    fn pinned_epochs_never_observe_later_mutations(t in trace()) {
        let queries = probe_queries(&t);
        let applied = resolve_ops(&t);
        let conc = ConcurrentPlanarIndexSet::new(build_planar(&t), ConcurrencyConfig::default());
        let mut twin = build_planar(&t);

        let mut pins = Vec::with_capacity(applied.len() + 1);
        for a in &applied {
            // Record the pin and the serial twin's answers at pin time.
            pins.push((conc.snapshot(), answers(&twin, &queries)));
            match a {
                Applied::Insert(row) => {
                    prop_assert_eq!(
                        conc.insert_point(row).unwrap(),
                        twin.insert_point(row).unwrap()
                    );
                }
                Applied::Update(id, row) => {
                    conc.update_point(*id, row).unwrap();
                    twin.update_point(*id, row).unwrap();
                }
                Applied::Delete(id) => {
                    conc.delete_point(*id).unwrap();
                    twin.delete_point(*id).unwrap();
                }
            }
        }
        pins.push((conc.snapshot(), answers(&twin, &queries)));

        // Every pin answers as of its own epoch, not the final state.
        for (i, (snap, frozen)) in pins.iter().enumerate() {
            prop_assert_eq!(snap.epoch(), 1 + i as u64, "publish cadence 1: one epoch per mutation");
            prop_assert_eq!(&answers(snap, &queries), frozen, "pin {} drifted", i);
        }
        // And the grace-period ledger balances: dropping all pins lets
        // every retired epoch be reclaimed.
        drop(pins);
        conc.reclaim();
        let stats = conc.epoch_stats();
        prop_assert_eq!(stats.retired_live, 0);
        prop_assert_eq!(stats.reclaimed, stats.published);
    }

    /// Concurrent reads ≡ serialized execution: readers race a live writer
    /// and log `(epoch, answers)` observations; a serial replay of the
    /// mutation stream must reproduce every observation bit-identically.
    #[test]
    fn concurrent_reads_match_serialized_replay(t in trace()) {
        let queries = probe_queries(&t);
        let applied = resolve_ops(&t);
        let conc = ConcurrentPlanarIndexSet::new(build_planar(&t), ConcurrencyConfig::default());
        let stop = AtomicBool::new(false);

        let mut observations: Vec<Vec<(u64, Vec<Vec<u32>>)>> = Vec::new();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..2 {
                handles.push(s.spawn(|| {
                    let mut seen = Vec::new();
                    let mut last_epoch = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = conc.snapshot();
                        // Epochs are monotone from any single reader's view.
                        assert!(snap.epoch() >= last_epoch, "epoch went backwards");
                        last_epoch = snap.epoch();
                        seen.push((snap.epoch(), answers(&snap, &queries)));
                    }
                    seen
                }));
            }
            for a in &applied {
                match a {
                    Applied::Insert(row) => {
                        conc.insert_point(row).unwrap();
                    }
                    Applied::Update(id, row) => conc.update_point(*id, row).unwrap(),
                    Applied::Delete(id) => conc.delete_point(*id).unwrap(),
                }
            }
            stop.store(true, Ordering::Relaxed);
            for h in handles {
                observations.push(h.join().unwrap());
            }
        });

        // Serialized replay: epoch e == base + first (e − 1) mutations.
        // Build each prefix oracle once, lazily.
        let mut oracles: Vec<Option<Vec<Vec<u32>>>> = vec![None; applied.len() + 1];
        for seen in &observations {
            for (epoch, got) in seen {
                let prefix = (*epoch - 1) as usize;
                prop_assert!(prefix <= applied.len(), "epoch beyond the mutation stream");
                let want = oracles[prefix].get_or_insert_with(|| {
                    answers(&oracle_prefix(&t, &applied, prefix), &queries)
                });
                prop_assert_eq!(got, want, "epoch {} diverged from serial replay", epoch);
            }
        }
    }
}

/// Run the trace through a group-committing durable set with a WAL fault
/// armed at append `nth`, and return `(acked, attempted)` — the count of
/// acknowledged mutations and the full enqueued stream (acked prefix plus,
/// possibly, the faulted mutation).
fn run_with_fault(
    dir: &std::path::Path,
    t: &Trace,
    applied: &[Applied],
    nth: u64,
    kind: WalFaultKind,
) -> (usize, usize) {
    arm_wal_fault(nth, kind);
    let conc = ConcurrentDurablePlanarIndexSet::create(
        dir,
        build_planar(t),
        WalOptions::default(), // Always: an Ok return promises durability
        ConcurrencyConfig::default(),
    )
    .unwrap();
    let mut acked = 0usize;
    let mut attempted = 0usize;
    for a in applied {
        let res = match a {
            Applied::Insert(row) => conc.insert_point(row).map(|_| ()),
            Applied::Update(id, row) => conc.update_point(*id, row),
            Applied::Delete(id) => conc.delete_point(*id),
        };
        attempted += 1;
        match res {
            Ok(()) => acked += 1,
            // First error is the faulted mutation itself: it was enqueued
            // (and possibly hit the disk) but never acknowledged. The
            // queue fail-stops, so nothing later is enqueued.
            Err(_) => break,
        }
    }
    disarm_wal_fault();
    drop(conc); // the "kill": best-effort drop flush fails fail-stop-clean
    (acked, attempted)
}

/// One crash-sweep case: recovery must (a) not hard-error, (b) recover a
/// clean prefix at least `acked` long — **no acknowledged mutation is ever
/// lost** — and (c) answer bit-identically to that prefix's serial oracle.
fn check_crash_case(t: &Trace, nth: u64, kind: WalFaultKind) {
    let _guard = WAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let tmp = TempDir::new("conc-crash-sweep").unwrap();
    let dir = tmp.path().join("idx");
    let applied = resolve_ops(t);
    let (acked, attempted) = run_with_fault(&dir, t, &applied, nth, kind);

    let (recovered, report) = ConcurrentDurablePlanarIndexSet::<VecStore>::open(
        &dir,
        WalOptions::default(),
        ConcurrencyConfig::default(),
    )
    .unwrap();
    let replayed = report.wal_replayed;
    assert!(
        replayed >= acked,
        "ack-then-lose: {acked} mutations acknowledged, only {replayed} recovered ({kind:?} at {nth})"
    );
    assert!(
        replayed <= attempted,
        "recovery invented mutations: {replayed} > {attempted} attempted"
    );
    let queries = probe_queries(t);
    let oracle = oracle_prefix(t, &applied, replayed);
    let snap = recovered.snapshot();
    assert_eq!(
        answers(&snap, &queries),
        answers(&oracle, &queries),
        "recovered state diverged from the serial prefix oracle"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Group-commit crash sweep: for every mutation position and every
    /// fault flavor (append fails; append tears mid-frame; writer dies
    /// right after the append — the "between ack and fsync" window),
    /// acknowledged mutations must always be recoverable.
    #[test]
    fn group_commit_never_acks_then_loses(t in trace(), torn_keep in 0usize..12) {
        let count = resolve_ops(&t).len() as u64;
        for nth in 0..count {
            check_crash_case(&t, nth, WalFaultKind::FailAppend);
            check_crash_case(&t, nth, WalFaultKind::TornAppend { keep: torn_keep });
            check_crash_case(&t, nth, WalFaultKind::CrashAfterAppend);
        }
        // And the no-fault control arm: everything acks, everything recovers.
        check_crash_case(&t, count + 1, WalFaultKind::FailAppend);
    }
}

/// Deterministic ack-lag convergence for the group-committing wrapper:
/// under a lazy policy the acked watermark trails appends, and `sync()`
/// (or a forced flush) converges the two — the observable contract the
/// `WalHealth::{appended_lsn, acked_lsn}` split exists for.
#[test]
fn acked_and_appended_converge_after_sync() {
    let _guard = WAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let tmp = TempDir::new("conc-acklag").unwrap();
    let t = Trace {
        dim: 2,
        rows: vec![vec![1.0, 2.0], vec![3.0, 1.0], vec![2.0, 2.0]],
        ops: Vec::new(),
        probes: vec![(vec![1.0, 1.0], 8.0)],
        budget: 2,
    };
    let conc = ConcurrentDurablePlanarIndexSet::create(
        tmp.path(),
        build_planar(&t),
        WalOptions::default().fsync(planar_core::FsyncPolicy::EveryN(64)),
        ConcurrencyConfig::default(),
    )
    .unwrap();
    for i in 0..9 {
        conc.insert_point(&[1.0 + i as f64, 2.0]).unwrap();
    }
    let h = conc.wal_health();
    assert_eq!(h.appended_lsn, 9);
    assert!(
        h.ack_lag() > 0,
        "EveryN(64) must be lagging after 9 records"
    );
    conc.sync().unwrap();
    let h = conc.wal_health();
    assert_eq!(h.acked_lsn, h.appended_lsn);
    assert_eq!(h.ack_lag(), 0);
}
