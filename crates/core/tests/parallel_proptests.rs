//! Property tests for the parallel batched query engine: for arbitrary
//! data, queries, and thread counts, `build_with`, `query_batch`, and
//! `top_k_batch` must return exactly what the sequential path returns —
//! same ids, same order, same distances, same stats — across all three key
//! stores.

use planar_core::{BPlusTree, QueryOutcome, TopKOutcome};
use planar_core::{
    Cmp, Domain, ExecutionConfig, EytzingerStore, FeatureTable, IndexConfig, InequalityQuery,
    KeyStore, ParameterDomain, PlanarIndexSet, QueryScratch, TopKQuery, VecStore,
};
use proptest::prelude::*;

/// A generated workload: a table with mixed-sign axes, a batch of queries
/// drawn around the domain, and an execution configuration.
#[derive(Debug, Clone)]
struct Scenario {
    dim: usize,
    rows: Vec<Vec<f64>>,
    signs: Vec<bool>,
    queries: Vec<(Vec<f64>, f64, Cmp)>,
    budget: usize,
    threads: usize,
    verify_threshold: usize,
    k: usize,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (1..=4usize)
        .prop_flat_map(|dim| {
            (
                Just(dim),
                prop::collection::vec(prop::collection::vec(-100.0..100.0_f64, dim), 1..80),
                prop::collection::vec(any::<bool>(), dim),
                prop::collection::vec(
                    (
                        prop::collection::vec(0.1..10.0_f64, dim),
                        -300.0..300.0_f64,
                        any::<bool>(),
                    ),
                    1..10,
                ),
                1..6usize,
                1..8usize,
                // Tiny thresholds force the chunked-II path even on small
                // intervals; large ones exercise the serial crossover.
                prop_oneof![1 => Just(1usize), 1 => Just(8usize), 1 => Just(100_000usize)],
                1..6usize,
            )
        })
        .prop_map(
            |(dim, mut rows, signs, raw_queries, budget, threads, verify_threshold, k)| {
                // Fold rows into the octant fixed by `signs` so the indexed
                // path (not just the scan fallback) is exercised.
                for row in &mut rows {
                    for (v, &pos) in row.iter_mut().zip(&signs) {
                        *v = if pos { v.abs() } else { -v.abs() };
                    }
                }
                let queries = raw_queries
                    .into_iter()
                    .map(|(mag, b, leq)| {
                        let a: Vec<f64> = mag
                            .iter()
                            .zip(&signs)
                            .map(|(&m, &pos)| if pos { m } else { -m })
                            .collect();
                        (a, b, if leq { Cmp::Leq } else { Cmp::Geq })
                    })
                    .collect();
                Scenario {
                    dim,
                    rows,
                    signs,
                    queries,
                    budget,
                    threads,
                    verify_threshold,
                    k,
                }
            },
        )
}

fn domain(s: &Scenario) -> ParameterDomain {
    let axes: Vec<Domain> = s
        .signs
        .iter()
        .map(|&pos| {
            if pos {
                Domain::Continuous { lo: 0.1, hi: 10.0 }
            } else {
                Domain::Continuous {
                    lo: -10.0,
                    hi: -0.1,
                }
            }
        })
        .collect();
    ParameterDomain::new(axes).unwrap()
}

fn build_set<S: KeyStore>(s: &Scenario) -> PlanarIndexSet<S> {
    let table = FeatureTable::from_rows(s.dim, s.rows.clone()).unwrap();
    PlanarIndexSet::build(table, domain(s), IndexConfig::with_budget(s.budget)).unwrap()
}

fn ineq_queries(s: &Scenario) -> Vec<InequalityQuery> {
    s.queries
        .iter()
        .map(|(a, b, cmp)| InequalityQuery::new(a.clone(), *cmp, *b).unwrap())
        .collect()
}

fn exec(s: &Scenario) -> ExecutionConfig {
    ExecutionConfig::with_threads(s.threads).verify_threshold(s.verify_threshold)
}

fn assert_query_outcomes_equal(got: &[QueryOutcome], want: &[QueryOutcome]) {
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(want) {
        // Exact id equality *including order* — the canonical match order
        // must not depend on the execution configuration.
        assert_eq!(g.matches, w.matches);
        assert_eq!(g.stats, w.stats);
    }
}

fn assert_topk_outcomes_equal(got: &[TopKOutcome], want: &[TopKOutcome]) {
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.neighbors.len(), w.neighbors.len());
        for (gn, wn) in g.neighbors.iter().zip(&w.neighbors) {
            assert_eq!(gn.0, wn.0);
            assert_eq!(
                gn.1.to_bits(),
                wn.1.to_bits(),
                "distances must be bit-identical"
            );
        }
        assert_eq!(g.stats, w.stats);
    }
}

fn check_query_batch<S: KeyStore + Sync>(s: &Scenario) {
    let set: PlanarIndexSet<S> = build_set(s);
    let qs = ineq_queries(s);
    let sequential: Vec<QueryOutcome> = qs.iter().map(|q| set.query(q).unwrap()).collect();
    let batched = set.query_batch(&qs, &exec(s)).unwrap();
    assert_query_outcomes_equal(&batched, &sequential);
}

fn check_top_k_batch<S: KeyStore + Sync>(s: &Scenario) {
    let set: PlanarIndexSet<S> = build_set(s);
    let qs: Vec<TopKQuery> = ineq_queries(s)
        .into_iter()
        .map(|q| TopKQuery::new(q, s.k).unwrap())
        .collect();
    let sequential: Vec<TopKOutcome> = qs.iter().map(|q| set.top_k(q).unwrap()).collect();
    let batched = set.top_k_batch(&qs, &exec(s)).unwrap();
    assert_topk_outcomes_equal(&batched, &sequential);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Batched inequality queries ≡ the sequential loop, on every store.
    #[test]
    fn query_batch_equals_sequential_vec_store(s in scenario()) {
        check_query_batch::<VecStore>(&s);
    }

    #[test]
    fn query_batch_equals_sequential_bplus_tree(s in scenario()) {
        check_query_batch::<BPlusTree>(&s);
    }

    #[test]
    fn query_batch_equals_sequential_eytzinger(s in scenario()) {
        check_query_batch::<EytzingerStore>(&s);
    }

    /// Batched top-k queries ≡ the sequential loop, on every store.
    #[test]
    fn top_k_batch_equals_sequential_vec_store(s in scenario()) {
        check_top_k_batch::<VecStore>(&s);
    }

    #[test]
    fn top_k_batch_equals_sequential_bplus_tree(s in scenario()) {
        check_top_k_batch::<BPlusTree>(&s);
    }

    #[test]
    fn top_k_batch_equals_sequential_eytzinger(s in scenario()) {
        check_top_k_batch::<EytzingerStore>(&s);
    }

    /// `query_with` with a reused scratch and chunked verification matches
    /// the plain path exactly for any thread count.
    #[test]
    fn query_with_reused_scratch_equals_query(s in scenario()) {
        let set: PlanarIndexSet<VecStore> = build_set(&s);
        let cfg = exec(&s);
        let mut scratch = QueryScratch::with_capacity(s.rows.len());
        for q in ineq_queries(&s) {
            let plain = set.query(&q).unwrap();
            let with = set.query_with(&q, &cfg, &mut scratch).unwrap();
            assert_eq!(with.matches, plain.matches);
            assert_eq!(with.stats, plain.stats);
        }
    }

    /// Parallel build produces the exact same index set as the serial
    /// build: identical normals in identical order, identical answers.
    #[test]
    fn build_with_equals_build(s in scenario()) {
        let table = FeatureTable::from_rows(s.dim, s.rows.clone()).unwrap();
        let cfg = IndexConfig::with_budget(s.budget);
        let serial: PlanarIndexSet<VecStore> =
            PlanarIndexSet::build(table.clone(), domain(&s), cfg.clone()).unwrap();
        let parallel: PlanarIndexSet<VecStore> =
            PlanarIndexSet::build_with(table, domain(&s), cfg, &exec(&s)).unwrap();
        prop_assert_eq!(serial.num_indices(), parallel.num_indices());
        let serial_normals: Vec<Vec<f64>> = serial.normals().map(|n| n.to_vec()).collect();
        let parallel_normals: Vec<Vec<f64>> = parallel.normals().map(|n| n.to_vec()).collect();
        prop_assert_eq!(serial_normals, parallel_normals);
        for q in ineq_queries(&s) {
            let a = serial.query(&q).unwrap();
            let b = parallel.query(&q).unwrap();
            assert_eq!(a.matches, b.matches);
            assert_eq!(a.stats, b.stats);
        }
    }
}
