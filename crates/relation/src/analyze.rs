//! Automatic scalar-product-form compilation.
//!
//! The paper observes (Example 1) that a predicate like
//!
//! ```text
//! active - threshold * voltage * current <= 0
//! ```
//!
//! "consists of two components — a function over the database attributes …
//! and a parameter set" — and builds the index over the former. Doing that
//! split *by hand* is mechanical, so this module automates it: given the
//! predicate text, the schema, and the declared parameters, it
//!
//! 1. parses both sides and forms the polynomial `lhs − rhs` over columns
//!    **and** parameters;
//! 2. expands it into monomials — every monomial factors uniquely into a
//!    column-only and a parameter-only part;
//! 3. groups by column part, yielding
//!    `Σᵢ coefᵢ(params)·φᵢ(columns) {≤,≥} offset(params)`;
//! 4. derives each coefficient's domain from the parameter domains by
//!    interval arithmetic (the index normals are sampled from these,
//!    paper §5.2) and rejects axes whose coefficient could be zero or
//!    change sign (no octant could be fixed, §4.5).
//!
//! The result is a ready-to-build [`FunctionSpec`]. The `CREATE FUNCTION`
//! statements of [`crate::sql`] are compiled through this path.

use crate::expr::{BinOp, Expr};
use crate::function::{Coef, FunctionSpec};
use crate::parse::{parse_raw, RawExpr};
use crate::poly::{Monomial, Poly, Var};
use crate::schema::Schema;
use crate::{RelationError, Result};
use planar_core::{Cmp, Domain};

/// Maximum integer exponent accepted in predicates (polynomial blow-up
/// guard).
const MAX_EXPONENT: u32 = 16;

/// A predicate compiled to scalar-product form.
#[derive(Debug, Clone)]
pub struct AnalyzedPredicate {
    /// The buildable function spec (axes, coefficients, offset, cmp).
    pub spec: FunctionSpec,
    /// Human-readable rendering of each axis expression `φᵢ`.
    pub axes_display: Vec<String>,
    /// The comparison direction.
    pub cmp: Cmp,
}

/// Compile `predicate` (e.g. `"active - threshold * voltage * current <= 0"`)
/// against `schema`, with `params` declaring the run-time parameters and
/// their domains in positional order.
///
/// # Errors
///
/// Parse errors, [`RelationError::UnknownIdentifier`],
/// [`RelationError::NotPolynomial`] (division by variables, fractional or
/// huge exponents), [`RelationError::EmptyFunction`] (no column terms), and
/// [`RelationError::CoefficientStraddlesZero`] when a derived coefficient
/// domain contains zero.
pub fn analyze_predicate(
    predicate: &str,
    schema: &Schema,
    params: &[(&str, Domain)],
) -> Result<AnalyzedPredicate> {
    // --- split on the comparator --------------------------------------
    let (lhs_text, rhs_text, cmp) = split_comparator(predicate)?;
    let lhs = lower_poly(&parse_raw(lhs_text)?, schema, params)?;
    let rhs = lower_poly(&parse_raw(rhs_text)?, schema, params)?;
    let full = lhs.sub(&rhs); // full {≤,≥} 0

    // --- group monomials by column part --------------------------------
    // Axis order: BTreeMap iteration gives a deterministic spec.
    let mut axes: std::collections::BTreeMap<Monomial, Poly> = std::collections::BTreeMap::new();
    let mut offset = Poly::zero(); // accumulated on the LEFT; negated at the end
    for (monomial, coef) in full.terms() {
        let (col_part, param_part) = monomial.split();
        let contribution = Poly::constant(coef).mul(&monomial_poly(&param_part));
        if col_part.is_one() {
            offset = offset.add(&contribution);
        } else {
            let slot = axes.entry(col_part).or_default();
            *slot = slot.add(&contribution);
        }
    }
    if axes.is_empty() {
        return Err(RelationError::EmptyFunction);
    }

    // --- derive coefficient domains and assemble the spec --------------
    let param_intervals: Vec<(f64, f64)> = params.iter().map(|(_, d)| domain_bounds(d)).collect();
    let mut spec = FunctionSpec::new().cmp(cmp);
    let mut axes_display = Vec::new();
    for (col_part, coef_poly) in axes {
        let display = display_monomial(&col_part, schema);
        let phi = monomial_expr(&col_part);
        let coef = match coef_poly.as_constant() {
            Some(c) if c != 0.0 => Coef::constant(c),
            Some(_) => continue, // exact zero coefficient: axis vanishes
            None => {
                let (lo, hi) = coef_poly.param_bounds(&param_intervals);
                if lo <= 0.0 && hi >= 0.0 {
                    return Err(RelationError::CoefficientStraddlesZero(display));
                }
                Coef::computed(coef_poly, Domain::Continuous { lo, hi })
            }
        };
        spec = spec.axis(phi, coef);
        axes_display.push(display);
    }

    // `Σ coef·φ + offset {≤,≥} 0` ⇔ `Σ coef·φ {≤,≥} −offset`.
    let rhs_poly = offset.neg();
    spec = match rhs_poly.as_constant() {
        Some(c) => spec.offset(c),
        None => spec.offset_poly(rhs_poly),
    };

    Ok(AnalyzedPredicate {
        spec,
        axes_display,
        cmp,
    })
}

fn split_comparator(text: &str) -> Result<(&str, &str, Cmp)> {
    // The expression grammar contains no `<`/`>`/`=`, so a plain scan is
    // unambiguous.
    for (needle, cmp) in [("<=", Cmp::Leq), (">=", Cmp::Geq)] {
        if let Some(pos) = text.find(needle) {
            return Ok((&text[..pos], &text[pos + needle.len()..], cmp));
        }
    }
    Err(RelationError::Parse {
        message: "predicate must contain `<=` or `>=`".into(),
        position: text.len(),
    })
}

/// Lower an unresolved tree to a polynomial over columns and parameters.
fn lower_poly(raw: &RawExpr, schema: &Schema, params: &[(&str, Domain)]) -> Result<Poly> {
    match raw {
        RawExpr::Number(v) => Ok(Poly::constant(*v)),
        RawExpr::Ident(name) => {
            if let Ok(i) = schema.index_of(name) {
                Ok(Poly::var(Var::Col(i)))
            } else if let Some(j) = params.iter().position(|(p, _)| p == name) {
                Ok(Poly::var(Var::Param(j)))
            } else {
                Err(RelationError::UnknownIdentifier(name.clone()))
            }
        }
        RawExpr::Neg(inner) => Ok(lower_poly(inner, schema, params)?.neg()),
        RawExpr::Binary { op, left, right } => {
            let l = lower_poly(left, schema, params)?;
            let r = lower_poly(right, schema, params)?;
            match op {
                BinOp::Add => Ok(l.add(&r)),
                BinOp::Sub => Ok(l.sub(&r)),
                BinOp::Mul => Ok(l.mul(&r)),
                BinOp::Div => l.div(&r),
                BinOp::Pow => {
                    let exp = r.as_constant().ok_or_else(|| {
                        RelationError::NotPolynomial("exponent must be a constant".into())
                    })?;
                    if exp.fract() != 0.0 || exp < 0.0 {
                        return Err(RelationError::NotPolynomial(format!(
                            "exponent {exp} is not a non-negative integer"
                        )));
                    }
                    if exp > MAX_EXPONENT as f64 {
                        return Err(RelationError::NotPolynomial(format!(
                            "exponent {exp} exceeds the limit of {MAX_EXPONENT}"
                        )));
                    }
                    Ok(l.powi(exp as u32))
                }
            }
        }
    }
}

/// A monomial lifted back to a polynomial (coefficient 1).
fn monomial_poly(m: &Monomial) -> Poly {
    let mut p = Poly::constant(1.0);
    for &(v, pow) in m.factors() {
        p = p.mul(&Poly::var(v).powi(pow));
    }
    p
}

/// Reconstruct a column-only monomial as an [`Expr`].
fn monomial_expr(m: &Monomial) -> Expr {
    let mut parts = m.factors().iter().map(|&(v, pow)| {
        let col = match v {
            Var::Col(i) => Expr::Column(i),
            Var::Param(_) => unreachable!("column part contains no parameters"),
        };
        if pow == 1 {
            col
        } else {
            Expr::binary(BinOp::Pow, col, Expr::Literal(pow as f64))
        }
    });
    let first = parts.next().expect("non-constant monomial");
    parts.fold(first, |acc, p| Expr::binary(BinOp::Mul, acc, p))
}

fn display_monomial(m: &Monomial, schema: &Schema) -> String {
    m.factors()
        .iter()
        .map(|&(v, pow)| {
            let name = match v {
                Var::Col(i) => schema.name_of(i).to_string(),
                Var::Param(_) => unreachable!("column part contains no parameters"),
            };
            if pow == 1 {
                name
            } else {
                format!("{name}^{pow}")
            }
        })
        .collect::<Vec<_>>()
        .join("*")
}

fn domain_bounds(d: &Domain) -> (f64, f64) {
    match d {
        Domain::Continuous { lo, hi } => (*lo, *hi),
        Domain::Discrete(vals) => (
            vals.iter().cloned().fold(f64::INFINITY, f64::min),
            vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;

    fn consumption() -> (Schema, Relation) {
        let schema = Schema::new(["active", "reactive", "voltage", "current"]).unwrap();
        let mut rel = Relation::new(schema.clone());
        rel.insert(&[120.0, 0.2, 240.0, 1.0]).unwrap(); // pf 0.5
        rel.insert(&[470.0, 0.1, 235.0, 2.0]).unwrap(); // pf 1.0
        rel.insert(&[60.0, 0.5, 240.0, 1.0]).unwrap(); // pf 0.25
        (schema, rel)
    }

    #[test]
    fn example1_compiles_to_two_axes() {
        let (schema, rel) = consumption();
        let analyzed = analyze_predicate(
            "active - threshold * voltage * current <= 0",
            &schema,
            &[("threshold", Domain::Continuous { lo: 0.1, hi: 1.0 })],
        )
        .unwrap();
        assert_eq!(analyzed.cmp, Cmp::Leq);
        assert_eq!(analyzed.axes_display, vec!["active", "voltage*current"]);
        let index = analyzed.spec.build(&rel, 8).unwrap();
        assert_eq!(index.call(&[0.6]).unwrap().sorted_ids(), vec![0, 2]);
        assert_eq!(index.call(&[0.3]).unwrap().sorted_ids(), vec![2]);
    }

    #[test]
    fn expansion_handles_squares_and_cross_terms() {
        // (x + p)^2 <= 25  ⇔  x² + 2p·x <= 25 − p²
        let schema = Schema::new(["x"]).unwrap();
        let mut rel = Relation::new(schema.clone());
        for v in [1.0, 2.0, 3.0, 4.0, 6.0] {
            rel.insert(&[v]).unwrap();
        }
        let analyzed = analyze_predicate(
            "(x + p) ^ 2 <= 25",
            &schema,
            &[("p", Domain::Continuous { lo: 0.5, hi: 2.0 })],
        )
        .unwrap();
        assert_eq!(analyzed.axes_display, vec!["x", "x^2"]);
        let index = analyzed.spec.build(&rel, 6).unwrap();
        // p = 1: (x+1)² ≤ 25 ⇔ x ≤ 4 → ids 0..=3
        assert_eq!(index.call(&[1.0]).unwrap().sorted_ids(), vec![0, 1, 2, 3]);
        // p = 2: x ≤ 3 → ids 0..=2
        assert_eq!(index.call(&[2.0]).unwrap().sorted_ids(), vec![0, 1, 2]);
    }

    #[test]
    fn geq_and_parameter_only_offsets() {
        let schema = Schema::new(["x", "y"]).unwrap();
        let mut rel = Relation::new(schema.clone());
        rel.insert(&[10.0, 1.0]).unwrap();
        rel.insert(&[1.0, 10.0]).unwrap();
        let analyzed = analyze_predicate(
            "2 * x + y >= 10 * p + p ^ 2",
            &schema,
            &[("p", Domain::Continuous { lo: 0.5, hi: 1.0 })],
        )
        .unwrap();
        assert_eq!(analyzed.cmp, Cmp::Geq);
        let index = analyzed.spec.build(&rel, 4).unwrap();
        // p = 1: 2x + y ≥ 11 → only row 0 (21 ≥ 11; row 1: 12 ≥ 11 also!)
        assert_eq!(index.call(&[1.0]).unwrap().sorted_ids(), vec![0, 1]);
        // p = 0.5 → rhs = 5.25: both qualify; check exactness against scan.
        assert_eq!(
            index.call(&[0.5]).unwrap().sorted_ids(),
            index.call_scan(&[0.5]).unwrap().sorted_ids()
        );
    }

    #[test]
    fn constant_cancellation_drops_axes() {
        // x·p − x·p + y <= 5 → single axis y.
        let schema = Schema::new(["x", "y"]).unwrap();
        let analyzed = analyze_predicate(
            "x * p - x * p + y <= 5",
            &schema,
            &[("p", Domain::Continuous { lo: 1.0, hi: 2.0 })],
        )
        .unwrap();
        assert_eq!(analyzed.axes_display, vec!["y"]);
    }

    #[test]
    fn rejects_non_scalar_product_forms() {
        let schema = Schema::new(["x", "y"]).unwrap();
        let p = [("p", Domain::Continuous { lo: 1.0, hi: 2.0 })];
        // Division by a column.
        assert!(matches!(
            analyze_predicate("p / x <= 1", &schema, &p),
            Err(RelationError::NotPolynomial(_))
        ));
        // Fractional exponent.
        assert!(matches!(
            analyze_predicate("x ^ 0.5 <= 1", &schema, &p),
            Err(RelationError::NotPolynomial(_))
        ));
        // Variable exponent.
        assert!(matches!(
            analyze_predicate("x ^ p <= 1", &schema, &p),
            Err(RelationError::NotPolynomial(_))
        ));
        // Unknown identifier.
        assert!(matches!(
            analyze_predicate("z <= 1", &schema, &p),
            Err(RelationError::UnknownIdentifier(_))
        ));
        // No comparator.
        assert!(matches!(
            analyze_predicate("x + 1", &schema, &p),
            Err(RelationError::Parse { .. })
        ));
        // No column terms at all.
        assert!(matches!(
            analyze_predicate("p <= 1", &schema, &p),
            Err(RelationError::EmptyFunction)
        ));
    }

    #[test]
    fn straddling_coefficient_is_rejected_with_axis_name() {
        let schema = Schema::new(["x"]).unwrap();
        // coefficient (p − 1) over p ∈ [0.5, 2] straddles zero.
        let err = analyze_predicate(
            "(p - 1) * x <= 3",
            &schema,
            &[("p", Domain::Continuous { lo: 0.5, hi: 2.0 })],
        )
        .unwrap_err();
        assert_eq!(err, RelationError::CoefficientStraddlesZero("x".into()));
    }

    #[test]
    fn division_by_constant_is_fine() {
        let schema = Schema::new(["x"]).unwrap();
        let analyzed = analyze_predicate(
            "x / 2 <= p",
            &schema,
            &[("p", Domain::Continuous { lo: 1.0, hi: 5.0 })],
        )
        .unwrap();
        let mut rel = Relation::new(schema);
        rel.insert(&[4.0]).unwrap(); // x/2 = 2
        rel.insert(&[12.0]).unwrap(); // x/2 = 6
        let index = analyzed.spec.build(&rel, 2).unwrap();
        assert_eq!(index.call(&[3.0]).unwrap().sorted_ids(), vec![0]);
    }
}
