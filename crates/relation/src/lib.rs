//! # planar-relation
//!
//! A miniature columnar relation with an arithmetic expression engine and
//! *function-based indexing* — the substrate for the paper's Example 1.
//!
//! The paper motivates scalar product queries with complex SQL functions
//! over multiple columns (Oracle's function-based indexes support indexing
//! `φ(x)` but not queries with run-time parameters). This crate provides
//! that pipeline end to end:
//!
//! 1. Define a [`Schema`] and load rows into a columnar [`Relation`].
//! 2. Write the function's per-axis expressions as [`Expr`]s — parsed from
//!    text (`"voltage * current"`) or built programmatically.
//! 3. Declare a function spec: expressions `φ`, per-axis coefficient
//!    specs (constants or run-time parameters), the comparison and offset.
//! 4. Build a [`FunctionIndex`], which evaluates `φ` over the relation once
//!    and maintains a `planar_core::PlanarIndexSet` over the result.
//! 5. Call it with concrete parameters: `index.call(&[0.45])` answers the
//!    query exactly, in sublinear time when pruning bites.
//!
//! ```
//! use planar_relation::{Coef, Expr, FunctionSpec, Relation, Schema};
//! use planar_core::{Cmp, Domain};
//!
//! // Consumption(active, reactive, voltage, current)
//! let schema = Schema::new(["active", "reactive", "voltage", "current"]).unwrap();
//! let mut rel = Relation::new(schema.clone());
//! rel.insert(&[120.0, 0.2, 240.0, 1.0]).unwrap();  // pf = 0.5
//! rel.insert(&[470.0, 0.1, 235.0, 2.0]).unwrap();  // pf = 1.0
//!
//! // CREATE FUNCTION Critical_Consume(threshold) …
//! // WHERE active − threshold·voltage·current ≤ 0
//! let spec = FunctionSpec::new()
//!     .axis(Expr::parse("active", &schema).unwrap(), Coef::constant(1.0))
//!     .axis(
//!         Expr::parse("voltage * current", &schema).unwrap(),
//!         Coef::param(0, -1.0, Domain::Continuous { lo: 0.1, hi: 1.0 }),
//!     )
//!     .cmp(Cmp::Leq)
//!     .offset(0.0);
//! let index = spec.build(&rel, 16).unwrap();
//!
//! let out = index.call(&[0.6]).unwrap();           // threshold = 0.6
//! assert_eq!(out.sorted_ids(), vec![0]);           // only pf 0.5 ≤ 0.6
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod analyze;
pub mod expr;
pub mod function;
pub mod parse;
pub mod poly;
pub mod relation;
pub mod schema;
pub mod sql;

pub use analyze::{analyze_predicate, AnalyzedPredicate};
pub use expr::Expr;
pub use function::{Coef, FunctionIndex, FunctionSpec, OffsetSpec};
pub use poly::{Interval, Monomial, Poly, Var};
pub use relation::Relation;
pub use schema::Schema;
pub use sql::Database;

/// Errors of the relation layer.
#[derive(Debug, Clone, PartialEq)]
pub enum RelationError {
    /// A column name is not in the schema.
    UnknownColumn(String),
    /// Duplicate column name at schema creation.
    DuplicateColumn(String),
    /// A schema must have at least one column.
    EmptySchema,
    /// Row arity does not match the schema.
    ArityMismatch {
        /// Number of columns in the schema.
        expected: usize,
        /// Number of values supplied.
        found: usize,
    },
    /// A value was NaN or infinite.
    NotFinite,
    /// No row with this id.
    RowNotFound(u32),
    /// Expression parse error, with byte position.
    Parse {
        /// Human-readable message.
        message: String,
        /// Byte offset in the source text.
        position: usize,
    },
    /// Expression evaluation produced NaN/∞ (e.g. division by zero).
    EvalNotFinite {
        /// Row on which evaluation failed.
        row: u32,
    },
    /// Wrong number of run-time parameters for a function call.
    ParamArityMismatch {
        /// Parameters the function declares.
        expected: usize,
        /// Parameters supplied.
        found: usize,
    },
    /// A function spec with no axes.
    EmptyFunction,
    /// A predicate that cannot be put in scalar-product (polynomial)
    /// form — e.g. division by a column, fractional powers of variables.
    NotPolynomial(String),
    /// A derived coefficient domain straddles zero, so no octant can be
    /// fixed for that axis; the message names the axis expression.
    CoefficientStraddlesZero(String),
    /// Unknown identifier (neither a column nor a declared parameter).
    UnknownIdentifier(String),
    /// An underlying index error.
    Index(planar_core::PlanarError),
}

impl core::fmt::Display for RelationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RelationError::UnknownColumn(n) => write!(f, "unknown column `{n}`"),
            RelationError::DuplicateColumn(n) => write!(f, "duplicate column `{n}`"),
            RelationError::EmptySchema => write!(f, "schema must have at least one column"),
            RelationError::ArityMismatch { expected, found } => {
                write!(f, "row arity mismatch: schema has {expected}, got {found}")
            }
            RelationError::NotFinite => write!(f, "values must be finite"),
            RelationError::RowNotFound(id) => write!(f, "no row with id {id}"),
            RelationError::Parse { message, position } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            RelationError::EvalNotFinite { row } => {
                write!(f, "expression evaluated to NaN/∞ on row {row}")
            }
            RelationError::ParamArityMismatch { expected, found } => {
                write!(f, "function takes {expected} parameters, got {found}")
            }
            RelationError::EmptyFunction => write!(f, "function must have at least one axis"),
            RelationError::NotPolynomial(msg) => {
                write!(f, "predicate is not in scalar-product form: {msg}")
            }
            RelationError::CoefficientStraddlesZero(axis) => write!(
                f,
                "coefficient of `{axis}` can be zero or change sign over the parameter domains"
            ),
            RelationError::UnknownIdentifier(name) => {
                write!(f, "unknown identifier `{name}` (not a column or parameter)")
            }
            RelationError::Index(e) => write!(f, "index error: {e}"),
        }
    }
}

impl std::error::Error for RelationError {}

impl From<planar_core::PlanarError> for RelationError {
    fn from(e: planar_core::PlanarError) -> Self {
        RelationError::Index(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = core::result::Result<T, RelationError>;
