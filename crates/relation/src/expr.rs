//! Arithmetic expressions over relation columns — the bodies of the complex
//! SQL functions the paper indexes (Example 1's `voltage * current`,
//! Example 2's kinematic monomials).

use crate::relation::Relation;
use crate::schema::Schema;
use crate::{RelationError, Result};

/// A binary arithmetic operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `^` (right-associative power)
    Pow,
}

impl BinOp {
    fn apply(self, l: f64, r: f64) -> f64 {
        match self {
            BinOp::Add => l + r,
            BinOp::Sub => l - r,
            BinOp::Mul => l * r,
            BinOp::Div => l / r,
            BinOp::Pow => l.powf(r),
        }
    }
}

/// An arithmetic expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference (by position in the schema).
    Column(usize),
    /// A literal constant.
    Literal(f64),
    /// Unary negation.
    Neg(Box<Expr>),
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
}

impl Expr {
    /// A column reference by name.
    ///
    /// # Errors
    ///
    /// [`RelationError::UnknownColumn`].
    pub fn col(name: &str, schema: &Schema) -> Result<Expr> {
        Ok(Expr::Column(schema.index_of(name)?))
    }

    /// A literal.
    pub fn lit(v: f64) -> Expr {
        Expr::Literal(v)
    }

    /// Parse an expression from text — see [`crate::parse`] for the
    /// grammar.
    ///
    /// # Errors
    ///
    /// [`RelationError::Parse`] with a byte position, or
    /// [`RelationError::UnknownColumn`].
    pub fn parse(text: &str, schema: &Schema) -> Result<Expr> {
        crate::parse::parse_expr(text, schema)
    }

    /// Combine two expressions.
    pub fn binary(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Evaluate on one materialized row.
    pub fn eval_row(&self, row: &[f64]) -> f64 {
        match self {
            Expr::Column(i) => row[*i],
            Expr::Literal(v) => *v,
            Expr::Neg(e) => -e.eval_row(row),
            Expr::Binary { op, left, right } => op.apply(left.eval_row(row), right.eval_row(row)),
        }
    }

    /// Evaluate over a whole relation, column-at-a-time, into `out`
    /// (cleared first). Infinite/NaN results (e.g. division by zero) are
    /// reported with the offending row.
    ///
    /// # Errors
    ///
    /// [`RelationError::EvalNotFinite`].
    pub fn eval_relation(&self, rel: &Relation, out: &mut Vec<f64>) -> Result<()> {
        out.clear();
        out.resize(rel.len(), 0.0);
        self.eval_into(rel, out);
        if let Some(row) = out.iter().position(|v| !v.is_finite()) {
            return Err(RelationError::EvalNotFinite { row: row as u32 });
        }
        Ok(())
    }

    /// Vectorized evaluation kernel: fills `out[i]` with the value on row
    /// `i`. Allocates scratch per binary node; expression trees here are
    /// tiny (a handful of nodes) so clarity wins over a full bytecode VM.
    fn eval_into(&self, rel: &Relation, out: &mut [f64]) {
        match self {
            Expr::Column(i) => out.copy_from_slice(rel.column(*i)),
            Expr::Literal(v) => out.fill(*v),
            Expr::Neg(e) => {
                e.eval_into(rel, out);
                for v in out.iter_mut() {
                    *v = -*v;
                }
            }
            Expr::Binary { op, left, right } => {
                left.eval_into(rel, out);
                let mut rhs = vec![0.0; out.len()];
                right.eval_into(rel, &mut rhs);
                for (l, r) in out.iter_mut().zip(&rhs) {
                    *l = op.apply(*l, *r);
                }
            }
        }
    }

    /// The set of column indices the expression references.
    pub fn referenced_columns(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        self.collect_columns(&mut cols);
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    fn collect_columns(&self, cols: &mut Vec<usize>) {
        match self {
            Expr::Column(i) => cols.push(*i),
            Expr::Literal(_) => {}
            Expr::Neg(e) => e.collect_columns(cols),
            Expr::Binary { left, right, .. } => {
                left.collect_columns(cols);
                right.collect_columns(cols);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(["x", "y", "z"]).unwrap()
    }

    #[test]
    fn eval_row_arithmetic() {
        let s = schema();
        // x * y - 2 ^ z
        let e = Expr::binary(
            BinOp::Sub,
            Expr::binary(
                BinOp::Mul,
                Expr::col("x", &s).unwrap(),
                Expr::col("y", &s).unwrap(),
            ),
            Expr::binary(BinOp::Pow, Expr::lit(2.0), Expr::col("z", &s).unwrap()),
        );
        assert_eq!(e.eval_row(&[3.0, 4.0, 2.0]), 8.0);
        assert_eq!(Expr::Neg(Box::new(Expr::lit(5.0))).eval_row(&[]), -5.0);
    }

    #[test]
    fn eval_relation_is_columnar_and_matches_rowwise() {
        let s = schema();
        let mut rel = Relation::new(s.clone());
        for i in 0..20 {
            rel.insert(&[i as f64, (i * 2) as f64, 1.0 + i as f64])
                .unwrap();
        }
        let e = Expr::parse("x * y + z / 2", &s).unwrap();
        let mut out = Vec::new();
        e.eval_relation(&rel, &mut out).unwrap();
        for (i, v) in out.iter().enumerate() {
            let row = rel.row(i as u32).unwrap();
            assert_eq!(*v, e.eval_row(&row), "row {i}");
        }
    }

    #[test]
    fn division_by_zero_is_reported() {
        let s = Schema::new(["x"]).unwrap();
        let mut rel = Relation::new(s.clone());
        rel.insert(&[1.0]).unwrap();
        rel.insert(&[0.0]).unwrap();
        let e = Expr::parse("1 / x", &s).unwrap();
        let mut out = Vec::new();
        assert_eq!(
            e.eval_relation(&rel, &mut out).unwrap_err(),
            RelationError::EvalNotFinite { row: 1 }
        );
    }

    #[test]
    fn referenced_columns_deduped_sorted() {
        let s = schema();
        let e = Expr::parse("z * x + z - x", &s).unwrap();
        assert_eq!(e.referenced_columns(), vec![0, 2]);
        assert!(Expr::lit(1.0).referenced_columns().is_empty());
    }
}
