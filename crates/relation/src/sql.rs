//! A miniature SQL surface for the paper's Example 1 workflow.
//!
//! The paper's motivating statement is a parametric SQL function:
//!
//! ```sql
//! CREATE FUNCTION Critical_Consume(INPUT double threshold RETURN ID
//! FROM Consumption
//! WHERE Active Power - threshold * Voltage * Current <= 0)
//! ```
//!
//! This module executes the equivalent pipeline end to end: statements are
//! parsed, `CREATE FUNCTION` predicates are compiled to scalar-product form
//! by [`crate::analyze`], and calls are answered through the Planar index.
//!
//! ## Supported statements
//!
//! ```text
//! CREATE TABLE name (col1, col2, …)
//! INSERT INTO name VALUES (v1, v2, …) [, (…)]…
//! CREATE FUNCTION name (param IN lo TO hi [, …]) RETURNS ID
//!     FROM table WHERE <predicate> [BUDGET n]
//! CALL name (arg1, …)
//! SELECT ID FROM table WHERE <predicate>          -- ad-hoc, no parameters
//! ```
//!
//! The predicate is any arithmetic expression over columns and declared
//! parameters with a single `<=` or `>=`. Keywords are case-insensitive;
//! `BUDGET` is reserved inside predicates.

use crate::analyze::analyze_predicate;
use crate::function::FunctionIndex;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::{RelationError, Result};
use planar_core::Domain;
use std::collections::HashMap;

/// Default Planar-index budget for `CREATE FUNCTION` without `BUDGET n`.
const DEFAULT_BUDGET: usize = 32;

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (columns…)`
    CreateTable {
        /// Table name.
        name: String,
        /// Column names in order.
        columns: Vec<String>,
    },
    /// `INSERT INTO name VALUES (…) [, (…)]…`
    Insert {
        /// Target table.
        table: String,
        /// Row literals.
        rows: Vec<Vec<f64>>,
    },
    /// `CREATE FUNCTION name (params…) RETURNS ID FROM table WHERE …`
    CreateFunction {
        /// Function name.
        name: String,
        /// `(name, lo, hi)` parameter declarations.
        params: Vec<(String, f64, f64)>,
        /// Source table.
        table: String,
        /// Raw predicate text.
        predicate: String,
        /// Optional index budget.
        budget: Option<usize>,
    },
    /// `CALL name (args…)`
    Call {
        /// Function name.
        name: String,
        /// Argument values.
        args: Vec<f64>,
    },
    /// `SELECT ID FROM table WHERE …` — an ad-hoc, parameter-free query
    /// evaluated directly (no index is built for one-off predicates).
    Select {
        /// Source table.
        table: String,
        /// Raw predicate text.
        predicate: String,
    },
}

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecutionResult {
    /// A table was created.
    TableCreated(String),
    /// Rows were inserted.
    Inserted(usize),
    /// A function (and its Planar index) was created; carries the derived
    /// axis expressions for inspection.
    FunctionCreated {
        /// Function name.
        name: String,
        /// Human-readable `φᵢ` expressions the compiler derived.
        axes: Vec<String>,
    },
    /// A function call's matching row ids (ascending).
    Rows(Vec<u32>),
}

// ---------------------------------------------------------------------------
// Tokenizer (statement heads only; predicates stay raw text)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String),
    Number(f64),
    LParen,
    RParen,
    Comma,
}

fn err(message: impl Into<String>, position: usize) -> RelationError {
    RelationError::Parse {
        message: message.into(),
        position,
    }
}

fn tokenize(text: &str) -> Result<Vec<(usize, Tok)>> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' | b';' => i += 1,
            b'(' => {
                out.push((i, Tok::LParen));
                i += 1;
            }
            b')' => {
                out.push((i, Tok::RParen));
                i += 1;
            }
            b',' => {
                out.push((i, Tok::Comma));
                i += 1;
            }
            b'0'..=b'9' | b'.' | b'-' | b'+' => {
                let start = i;
                i += 1;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && matches!(bytes[i - 1], b'e' | b'E')))
                {
                    i += 1;
                }
                let s = &text[start..i];
                let v: f64 = s
                    .parse()
                    .map_err(|_| err(format!("invalid number `{s}`"), start))?;
                out.push((start, Tok::Number(v)));
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push((start, Tok::Word(text[start..i].to_string())));
            }
            other => return Err(err(format!("unexpected character `{}`", other as char), i)),
        }
    }
    Ok(out)
}

struct Cursor {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    len: usize,
}

impl Cursor {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn here(&self) -> usize {
        self.toks.get(self.pos).map(|(p, _)| *p).unwrap_or(self.len)
    }

    fn next(&mut self) -> Option<(usize, Tok)> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn keyword(&mut self, kw: &str) -> Result<()> {
        match self.next() {
            Some((_, Tok::Word(w))) if w.eq_ignore_ascii_case(kw) => Ok(()),
            Some((p, t)) => Err(err(format!("expected `{kw}`, found {t:?}"), p)),
            None => Err(err(format!("expected `{kw}`"), self.len)),
        }
    }

    fn try_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Word(w)) if w.eq_ignore_ascii_case(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some((_, Tok::Word(w))) => Ok(w),
            Some((p, t)) => Err(err(format!("expected identifier, found {t:?}"), p)),
            None => Err(err("expected identifier", self.len)),
        }
    }

    fn number(&mut self) -> Result<f64> {
        match self.next() {
            Some((_, Tok::Number(v))) => Ok(v),
            Some((p, t)) => Err(err(format!("expected number, found {t:?}"), p)),
            None => Err(err("expected number", self.len)),
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<()> {
        match self.next() {
            Some((_, t)) if t == tok => Ok(()),
            Some((p, t)) => Err(err(format!("expected {tok:?}, found {t:?}"), p)),
            None => Err(err(format!("expected {tok:?}"), self.len)),
        }
    }

    fn done(&self) -> bool {
        self.pos >= self.toks.len()
    }
}

/// Parse one statement.
///
/// # Errors
///
/// [`RelationError::Parse`] with a byte position.
pub fn parse_statement(text: &str) -> Result<Statement> {
    let head = tokenize_head(text)?;
    let mut c = Cursor {
        toks: head,
        pos: 0,
        len: text.len(),
    };
    if c.try_keyword("CREATE") {
        if c.try_keyword("TABLE") {
            return parse_create_table(&mut c);
        }
        c.keyword("FUNCTION")?;
        return parse_create_function(&mut c, text);
    }
    if c.try_keyword("INSERT") {
        c.keyword("INTO")?;
        return parse_insert(&mut c);
    }
    if c.try_keyword("CALL") {
        return parse_call(&mut c);
    }
    if c.try_keyword("SELECT") {
        return parse_select(&mut c, text);
    }
    Err(err(
        "expected CREATE TABLE / CREATE FUNCTION / INSERT INTO / CALL / SELECT",
        c.here(),
    ))
}

/// Tokenize only up to (and excluding) a top-level `WHERE` — the predicate
/// after it is handled by the expression parser, not the SQL tokenizer.
fn tokenize_head(text: &str) -> Result<Vec<(usize, Tok)>> {
    let upto = find_keyword(text, "WHERE").unwrap_or(text.len());
    tokenize(&text[..upto])
}

/// Case-insensitive, word-boundary keyword search.
fn find_keyword(text: &str, kw: &str) -> Option<usize> {
    let lower = text.to_ascii_lowercase();
    let kw = kw.to_ascii_lowercase();
    let bytes = lower.as_bytes();
    let mut from = 0;
    while let Some(rel) = lower[from..].find(&kw) {
        let at = from + rel;
        let before_ok = at == 0 || !bytes[at - 1].is_ascii_alphanumeric() && bytes[at - 1] != b'_';
        let end = at + kw.len();
        let after_ok =
            end >= bytes.len() || !bytes[end].is_ascii_alphanumeric() && bytes[end] != b'_';
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + kw.len();
    }
    None
}

fn parse_create_table(c: &mut Cursor) -> Result<Statement> {
    let name = c.ident()?;
    c.expect(Tok::LParen)?;
    let mut columns = vec![c.ident()?];
    while matches!(c.peek(), Some(Tok::Comma)) {
        c.next();
        columns.push(c.ident()?);
    }
    c.expect(Tok::RParen)?;
    Ok(Statement::CreateTable { name, columns })
}

fn parse_insert(c: &mut Cursor) -> Result<Statement> {
    let table = c.ident()?;
    c.keyword("VALUES")?;
    let mut rows = Vec::new();
    loop {
        c.expect(Tok::LParen)?;
        let mut row = vec![c.number()?];
        while matches!(c.peek(), Some(Tok::Comma)) {
            c.next();
            row.push(c.number()?);
        }
        c.expect(Tok::RParen)?;
        rows.push(row);
        if matches!(c.peek(), Some(Tok::Comma)) {
            c.next();
        } else {
            break;
        }
    }
    if !c.done() {
        return Err(err("trailing input after INSERT", c.here()));
    }
    Ok(Statement::Insert { table, rows })
}

fn parse_create_function(c: &mut Cursor, full_text: &str) -> Result<Statement> {
    let name = c.ident()?;
    c.expect(Tok::LParen)?;
    let mut params = Vec::new();
    loop {
        let pname = c.ident()?;
        c.keyword("IN")?;
        let lo = c.number()?;
        c.keyword("TO")?;
        let hi = c.number()?;
        params.push((pname, lo, hi));
        if matches!(c.peek(), Some(Tok::Comma)) {
            c.next();
        } else {
            break;
        }
    }
    c.expect(Tok::RParen)?;
    c.keyword("RETURNS")?;
    c.keyword("ID")?;
    c.keyword("FROM")?;
    let table = c.ident()?;
    // The predicate is the raw text after WHERE, up to an optional BUDGET.
    let where_at = find_keyword(full_text, "WHERE").ok_or_else(|| {
        err(
            "CREATE FUNCTION requires a WHERE predicate",
            full_text.len(),
        )
    })?;
    let after_where = &full_text[where_at + "WHERE".len()..];
    let (predicate, budget) = match find_keyword(after_where, "BUDGET") {
        Some(at) => {
            let tail = after_where[at + "BUDGET".len()..].trim();
            let n: usize = tail.parse().map_err(|_| {
                err(
                    format!("invalid BUDGET value `{tail}`"),
                    where_at + "WHERE".len() + at,
                )
            })?;
            (after_where[..at].trim().to_string(), Some(n))
        }
        None => (after_where.trim().trim_end_matches(';').to_string(), None),
    };
    if predicate.is_empty() {
        return Err(err("empty WHERE predicate", where_at));
    }
    Ok(Statement::CreateFunction {
        name,
        params,
        table,
        predicate,
        budget,
    })
}

fn parse_select(c: &mut Cursor, full_text: &str) -> Result<Statement> {
    c.keyword("ID")?;
    c.keyword("FROM")?;
    let table = c.ident()?;
    let where_at = find_keyword(full_text, "WHERE")
        .ok_or_else(|| err("SELECT requires a WHERE predicate", full_text.len()))?;
    let predicate = full_text[where_at + "WHERE".len()..]
        .trim()
        .trim_end_matches(';')
        .to_string();
    if predicate.is_empty() {
        return Err(err("empty WHERE predicate", where_at));
    }
    Ok(Statement::Select { table, predicate })
}

fn parse_call(c: &mut Cursor) -> Result<Statement> {
    let name = c.ident()?;
    c.expect(Tok::LParen)?;
    let mut args = Vec::new();
    if !matches!(c.peek(), Some(Tok::RParen)) {
        args.push(c.number()?);
        while matches!(c.peek(), Some(Tok::Comma)) {
            c.next();
            args.push(c.number()?);
        }
    }
    c.expect(Tok::RParen)?;
    if !c.done() {
        return Err(err("trailing input after CALL", c.here()));
    }
    Ok(Statement::Call { name, args })
}

// ---------------------------------------------------------------------------
// Catalog + executor
// ---------------------------------------------------------------------------

struct StoredFunction {
    table: String,
    index: FunctionIndex,
}

/// An in-memory catalog executing the supported statements.
#[derive(Default)]
pub struct Database {
    relations: HashMap<String, Relation>,
    functions: HashMap<String, StoredFunction>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Borrow a relation by name.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Execute one statement.
    ///
    /// # Errors
    ///
    /// Parse errors, unknown tables/functions, arity mismatches, and
    /// predicate-compilation errors.
    pub fn execute(&mut self, sql: &str) -> Result<ExecutionResult> {
        match parse_statement(sql)? {
            Statement::CreateTable { name, columns } => {
                if self.relations.contains_key(&name) {
                    return Err(RelationError::DuplicateColumn(format!("table {name}")));
                }
                let schema = Schema::new(columns)?;
                self.relations.insert(name.clone(), Relation::new(schema));
                Ok(ExecutionResult::TableCreated(name))
            }
            Statement::Insert { table, rows } => {
                let rel = self
                    .relations
                    .get_mut(&table)
                    .ok_or_else(|| RelationError::UnknownColumn(format!("table {table}")))?;
                let mut new_ids = Vec::with_capacity(rows.len());
                for row in &rows {
                    new_ids.push(rel.insert(row)?);
                }
                // Keep dependent function indexes current.
                let rel = self.relations.get(&table).expect("present");
                for f in self.functions.values_mut().filter(|f| f.table == table) {
                    for &id in &new_ids {
                        f.index.index_new_row(rel, id)?;
                    }
                }
                Ok(ExecutionResult::Inserted(new_ids.len()))
            }
            Statement::CreateFunction {
                name,
                params,
                table,
                predicate,
                budget,
            } => {
                let rel = self
                    .relations
                    .get(&table)
                    .ok_or_else(|| RelationError::UnknownColumn(format!("table {table}")))?;
                let declared: Vec<(&str, Domain)> = params
                    .iter()
                    .map(|(n, lo, hi)| (n.as_str(), Domain::Continuous { lo: *lo, hi: *hi }))
                    .collect();
                let analyzed = analyze_predicate(&predicate, rel.schema(), &declared)?;
                let axes = analyzed.axes_display.clone();
                let index = analyzed.spec.build(rel, budget.unwrap_or(DEFAULT_BUDGET))?;
                self.functions
                    .insert(name.clone(), StoredFunction { table, index });
                Ok(ExecutionResult::FunctionCreated { name, axes })
            }
            Statement::Select { table, predicate } => {
                let rel = self
                    .relations
                    .get(&table)
                    .ok_or_else(|| RelationError::UnknownColumn(format!("table {table}")))?;
                // Parameter-free compile: the comparator splits the
                // predicate; both sides lower to column-only polynomials.
                let analyzed =
                    analyze_predicate(&predicate, rel.schema(), &[]).map_err(|e| match e {
                        // A predicate whose column terms all cancel is a
                        // constant truth value — report it plainly.
                        RelationError::EmptyFunction => {
                            RelationError::NotPolynomial("predicate has no column terms".into())
                        }
                        other => other,
                    })?;
                let q = {
                    // Bind with zero parameters and evaluate by scan —
                    // building an index for a one-off predicate would cost
                    // more than it saves.
                    let spec_index = analyzed.spec.build(rel, 1)?;
                    spec_index.call_scan(&[])?
                };
                Ok(ExecutionResult::Rows(q.sorted_ids()))
            }
            Statement::Call { name, args } => {
                let f = self
                    .functions
                    .get(&name)
                    .ok_or_else(|| RelationError::UnknownColumn(format!("function {name}")))?;
                let out = f.index.call(&args)?;
                Ok(ExecutionResult::Rows(out.sorted_ids()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_consumption() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE consumption (active, reactive, voltage, current)")
            .unwrap();
        db.execute(
            "INSERT INTO consumption VALUES (120, 0.2, 240, 1), (470, 0.1, 235, 2), (60, 0.5, 240, 1)",
        )
        .unwrap();
        db
    }

    #[test]
    fn paper_example1_end_to_end() {
        let mut db = db_with_consumption();
        let created = db
            .execute(
                "CREATE FUNCTION critical_consume (threshold IN 0.1 TO 1.0) RETURNS ID \
                 FROM consumption WHERE active - threshold * voltage * current <= 0 BUDGET 16",
            )
            .unwrap();
        match created {
            ExecutionResult::FunctionCreated { name, axes } => {
                assert_eq!(name, "critical_consume");
                assert_eq!(axes, vec!["active", "voltage*current"]);
            }
            other => panic!("unexpected result {other:?}"),
        }
        assert_eq!(
            db.execute("CALL critical_consume(0.6)").unwrap(),
            ExecutionResult::Rows(vec![0, 2])
        );
        assert_eq!(
            db.execute("CALL critical_consume(0.3)").unwrap(),
            ExecutionResult::Rows(vec![2])
        );
    }

    #[test]
    fn inserts_after_function_creation_are_indexed() {
        let mut db = db_with_consumption();
        db.execute(
            "CREATE FUNCTION f (threshold IN 0.1 TO 1.0) RETURNS ID \
             FROM consumption WHERE active - threshold * voltage * current <= 0",
        )
        .unwrap();
        db.execute("INSERT INTO consumption VALUES (24, 0.1, 240, 1)")
            .unwrap(); // pf = 0.1
        assert_eq!(
            db.execute("CALL f(0.15)").unwrap(),
            ExecutionResult::Rows(vec![3])
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let mut db = Database::new();
        db.execute("create table t (x, y)").unwrap();
        db.execute("insert into t values (1, 2)").unwrap();
        db.execute("Create Function g (p In 1 To 2) Returns Id From t Where x + p * y <= 10")
            .unwrap();
        assert_eq!(
            db.execute("call g(1.5)").unwrap(),
            ExecutionResult::Rows(vec![0])
        );
    }

    #[test]
    fn errors_are_informative() {
        let mut db = Database::new();
        assert!(matches!(
            db.execute("DROP TABLE x"),
            Err(RelationError::Parse { .. })
        ));
        assert!(db.execute("INSERT INTO missing VALUES (1)").is_err());
        db.execute("CREATE TABLE t (x)").unwrap();
        assert!(db.execute("INSERT INTO t VALUES (1, 2)").is_err()); // arity
        assert!(db
            .execute("CREATE FUNCTION f (p IN 1 TO 2) RETURNS ID FROM t WHERE p / x <= 1")
            .is_err()); // not polynomial
        assert!(db.execute("CALL nothere(1)").is_err());
        // Wrong CALL arity.
        db.execute("CREATE FUNCTION f (p IN 1 TO 2) RETURNS ID FROM t WHERE x * p <= 5")
            .unwrap();
        assert!(db.execute("CALL f(1, 2)").is_err());
    }

    #[test]
    fn multi_parameter_functions() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (x, y)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 10), (5, 5), (10, 1)")
            .unwrap();
        db.execute(
            "CREATE FUNCTION band (a IN 0.5 TO 2, b IN 5 TO 50) RETURNS ID \
             FROM t WHERE a * x + y >= b",
        )
        .unwrap();
        assert_eq!(
            db.execute("CALL band(1, 10)").unwrap(),
            ExecutionResult::Rows(vec![0, 1, 2])
        );
        // a=1, b=11: rows 0 (1+10=11) and 2 (10+1=11) sit exactly on the
        // boundary; row 1 (5+5=10) misses.
        assert_eq!(
            db.execute("CALL band(1, 11)").unwrap(),
            ExecutionResult::Rows(vec![0, 2])
        );
    }

    #[test]
    fn select_statement_runs_ad_hoc_queries() {
        let mut db = db_with_consumption();
        // Households with power factor below 0.4, written inline.
        assert_eq!(
            db.execute("SELECT ID FROM consumption WHERE active - 0.4 * voltage * current <= 0")
                .unwrap(),
            ExecutionResult::Rows(vec![2])
        );
        // ≥ direction too.
        assert_eq!(
            db.execute("SELECT ID FROM consumption WHERE active >= 400")
                .unwrap(),
            ExecutionResult::Rows(vec![1])
        );
        assert!(db
            .execute("SELECT ID FROM consumption WHERE 1 <= 2")
            .is_err());
        assert!(db.execute("SELECT ID FROM nope WHERE active <= 1").is_err());
    }

    #[test]
    fn statement_parsing_shapes() {
        let s = parse_statement("CREATE TABLE t (a, b, c)").unwrap();
        assert_eq!(
            s,
            Statement::CreateTable {
                name: "t".into(),
                columns: vec!["a".into(), "b".into(), "c".into()]
            }
        );
        let s = parse_statement("INSERT INTO t VALUES (1, -2.5), (3e2, 4)").unwrap();
        assert_eq!(
            s,
            Statement::Insert {
                table: "t".into(),
                rows: vec![vec![1.0, -2.5], vec![300.0, 4.0]]
            }
        );
        let s = parse_statement(
            "CREATE FUNCTION f (p IN 0.1 TO 1) RETURNS ID FROM t WHERE a - p * b <= 0 BUDGET 7",
        )
        .unwrap();
        match s {
            Statement::CreateFunction {
                predicate, budget, ..
            } => {
                assert_eq!(predicate, "a - p * b <= 0");
                assert_eq!(budget, Some(7));
            }
            other => panic!("{other:?}"),
        }
    }
}
