//! Function-based indexing with run-time parameters — the capability the
//! paper points out is missing from Oracle's function-based indexes
//! (Example 1).
//!
//! A [`FunctionSpec`] is the indexable skeleton of a parametric SQL
//! function: per axis an expression `φᵢ` over the relation's columns and a
//! *coefficient spec* — either a constant or `scale · paramⱼ` for a
//! run-time parameter `j` with a declared domain. Building it against a
//! [`Relation`] evaluates `φ` once (columnar) and constructs a
//! `PlanarIndexSet` whose parameter domains are derived from the
//! coefficient specs, so index normals are sampled exactly where queries
//! will fall (paper §5.2).

use crate::expr::Expr;
use crate::poly::Poly;
use crate::relation::{Relation, RowId};
use crate::{RelationError, Result};
use planar_core::{
    Cmp, Domain, FeatureTable, IndexConfig, InequalityQuery, ParameterDomain, PlanarIndexSet,
    QueryOutcome, TopKQuery, VecStore,
};

/// A per-axis coefficient: constant, a scaled run-time parameter, or an
/// arbitrary polynomial in the parameters (produced by the scalar-product
/// analyzer, [`crate::analyze`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Coef {
    /// The coefficient is a constant.
    Const(f64),
    /// The coefficient is `scale · param[index]`.
    Param {
        /// Which run-time parameter.
        index: usize,
        /// Fixed multiplier applied to the parameter.
        scale: f64,
        /// Domain of the *parameter* (before scaling).
        domain: Domain,
    },
    /// The coefficient is a polynomial in the run-time parameters, with a
    /// precomputed (interval-arithmetic) coefficient domain.
    Computed {
        /// Parameter-only polynomial evaluated at bind time.
        poly: Poly,
        /// Coefficient domain used for index-normal sampling.
        domain: Domain,
    },
}

impl Coef {
    /// A constant coefficient.
    pub fn constant(v: f64) -> Coef {
        Coef::Const(v)
    }

    /// A parameter coefficient `scale · param[index]` with the parameter's
    /// domain.
    pub fn param(index: usize, scale: f64, domain: Domain) -> Coef {
        Coef::Param {
            index,
            scale,
            domain,
        }
    }

    /// A coefficient from a parameter polynomial with a precomputed domain.
    pub fn computed(poly: Poly, domain: Domain) -> Coef {
        Coef::Computed { poly, domain }
    }

    /// The coefficient-side domain (after scaling) for index construction.
    fn coefficient_domain(&self) -> Domain {
        match self {
            Coef::Const(v) => Domain::Discrete(vec![*v]),
            Coef::Computed { domain, .. } => domain.clone(),
            Coef::Param { scale, domain, .. } => match domain {
                Domain::Discrete(vals) => {
                    Domain::Discrete(vals.iter().map(|v| v * scale).collect())
                }
                Domain::Continuous { lo, hi } => {
                    let (a, b) = (lo * scale, hi * scale);
                    Domain::Continuous {
                        lo: a.min(b),
                        hi: a.max(b),
                    }
                }
            },
        }
    }

    fn bind(&self, params: &[f64]) -> Result<f64> {
        match self {
            Coef::Const(v) => Ok(*v),
            Coef::Computed { poly, .. } => {
                let needed = poly.max_param().map_or(0, |i| i + 1);
                if params.len() < needed {
                    return Err(RelationError::ParamArityMismatch {
                        expected: needed,
                        found: params.len(),
                    });
                }
                Ok(poly.eval(&[], params))
            }
            Coef::Param { index, scale, .. } => {
                params
                    .get(*index)
                    .map(|p| p * scale)
                    .ok_or(RelationError::ParamArityMismatch {
                        expected: *index + 1,
                        found: params.len(),
                    })
            }
        }
    }
}

/// How the inequality offset `b` is formed at call time.
#[derive(Debug, Clone, PartialEq)]
pub enum OffsetSpec {
    /// A constant offset.
    Const(f64),
    /// `scale · param[index]`.
    Param {
        /// Which run-time parameter.
        index: usize,
        /// Fixed multiplier.
        scale: f64,
    },
    /// A polynomial in the run-time parameters.
    Computed(Poly),
}

impl OffsetSpec {
    fn bind(&self, params: &[f64]) -> Result<f64> {
        match self {
            OffsetSpec::Const(v) => Ok(*v),
            OffsetSpec::Computed(poly) => {
                let needed = poly.max_param().map_or(0, |i| i + 1);
                if params.len() < needed {
                    return Err(RelationError::ParamArityMismatch {
                        expected: needed,
                        found: params.len(),
                    });
                }
                Ok(poly.eval(&[], params))
            }
            OffsetSpec::Param { index, scale } => {
                params
                    .get(*index)
                    .map(|p| p * scale)
                    .ok_or(RelationError::ParamArityMismatch {
                        expected: *index + 1,
                        found: params.len(),
                    })
            }
        }
    }
}

/// Declaration of a parametric scalar-product function.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionSpec {
    axes: Vec<(Expr, Coef)>,
    cmp: Cmp,
    offset: OffsetSpec,
}

impl Default for FunctionSpec {
    fn default() -> Self {
        Self::new()
    }
}

impl FunctionSpec {
    /// An empty spec (add axes with [`Self::axis`]).
    pub fn new() -> Self {
        Self {
            axes: Vec::new(),
            cmp: Cmp::Leq,
            offset: OffsetSpec::Const(0.0),
        }
    }

    /// Add one axis: the indexed expression `φᵢ` and its coefficient spec.
    #[must_use]
    pub fn axis(mut self, phi: Expr, coef: Coef) -> Self {
        self.axes.push((phi, coef));
        self
    }

    /// Set the comparison direction (default `≤`).
    #[must_use]
    pub fn cmp(mut self, cmp: Cmp) -> Self {
        self.cmp = cmp;
        self
    }

    /// Set a constant offset `b` (default 0).
    #[must_use]
    pub fn offset(mut self, b: f64) -> Self {
        self.offset = OffsetSpec::Const(b);
        self
    }

    /// Make the offset a scaled run-time parameter.
    #[must_use]
    pub fn offset_param(mut self, index: usize, scale: f64) -> Self {
        self.offset = OffsetSpec::Param { index, scale };
        self
    }

    /// Make the offset a polynomial in the run-time parameters.
    #[must_use]
    pub fn offset_poly(mut self, poly: Poly) -> Self {
        self.offset = OffsetSpec::Computed(poly);
        self
    }

    /// Number of run-time parameters the spec references.
    pub fn param_count(&self) -> usize {
        let coef_max = self
            .axes
            .iter()
            .filter_map(|(_, c)| match c {
                Coef::Param { index, .. } => Some(index + 1),
                Coef::Computed { poly, .. } => poly.max_param().map(|i| i + 1),
                Coef::Const(_) => None,
            })
            .max()
            .unwrap_or(0);
        let off_max = match &self.offset {
            OffsetSpec::Param { index, .. } => index + 1,
            OffsetSpec::Computed(poly) => poly.max_param().map_or(0, |i| i + 1),
            OffsetSpec::Const(_) => 0,
        };
        coef_max.max(off_max)
    }

    /// Evaluate `φ` over the relation and build the index with the given
    /// budget of Planar indices.
    ///
    /// # Errors
    ///
    /// [`RelationError::EmptyFunction`], expression evaluation errors, and
    /// index-construction errors (e.g. a parameter domain containing zero).
    pub fn build(self, relation: &Relation, budget: usize) -> Result<FunctionIndex> {
        self.build_with(relation, IndexConfig::with_budget(budget))
    }

    /// [`Self::build`] with full index configuration.
    ///
    /// # Errors
    ///
    /// See [`Self::build`].
    pub fn build_with(self, relation: &Relation, config: IndexConfig) -> Result<FunctionIndex> {
        if self.axes.is_empty() {
            return Err(RelationError::EmptyFunction);
        }
        // Evaluate each φᵢ columnar, assemble the row-major feature table.
        let n = relation.len();
        let d = self.axes.len();
        let mut columns: Vec<Vec<f64>> = Vec::with_capacity(d);
        for (phi, _) in &self.axes {
            let mut out = Vec::new();
            phi.eval_relation(relation, &mut out)?;
            columns.push(out);
        }
        let mut table = FeatureTable::with_capacity(d, n)?;
        let mut row = vec![0.0; d];
        for i in 0..n {
            for (j, col) in columns.iter().enumerate() {
                row[j] = col[i];
            }
            table.push_row(&row)?;
        }
        let domain = ParameterDomain::new(
            self.axes
                .iter()
                .map(|(_, c)| c.coefficient_domain())
                .collect(),
        )?;
        let set = PlanarIndexSet::build(table, domain, config)?;
        Ok(FunctionIndex { spec: self, set })
    }
}

/// A built function index: call it with concrete parameters.
#[derive(Debug, Clone)]
pub struct FunctionIndex {
    spec: FunctionSpec,
    set: PlanarIndexSet<VecStore>,
}

impl FunctionIndex {
    /// The spec this index was built from.
    pub fn spec(&self) -> &FunctionSpec {
        &self.spec
    }

    /// The underlying Planar index set.
    pub fn index_set(&self) -> &PlanarIndexSet<VecStore> {
        &self.set
    }

    /// Materialize the concrete [`InequalityQuery`] for a parameter binding.
    ///
    /// # Errors
    ///
    /// [`RelationError::ParamArityMismatch`], or query validation errors.
    pub fn bind(&self, params: &[f64]) -> Result<InequalityQuery> {
        let expected = self.spec.param_count();
        if params.len() != expected {
            return Err(RelationError::ParamArityMismatch {
                expected,
                found: params.len(),
            });
        }
        let a = self
            .spec
            .axes
            .iter()
            .map(|(_, c)| c.bind(params))
            .collect::<Result<Vec<f64>>>()?;
        let b = self.spec.offset.bind(params)?;
        InequalityQuery::new(a, self.spec.cmp, b).map_err(RelationError::Index)
    }

    /// Execute the function with the given parameters via the index.
    ///
    /// # Errors
    ///
    /// See [`Self::bind`].
    pub fn call(&self, params: &[f64]) -> Result<QueryOutcome> {
        let q = self.bind(params)?;
        self.set.query(&q).map_err(RelationError::Index)
    }

    /// Execute via a forced sequential scan (the baseline).
    ///
    /// # Errors
    ///
    /// See [`Self::bind`].
    pub fn call_scan(&self, params: &[f64]) -> Result<QueryOutcome> {
        let q = self.bind(params)?;
        self.set.query_scan(&q).map_err(RelationError::Index)
    }

    /// Top-k rows nearest the function's decision hyperplane.
    ///
    /// # Errors
    ///
    /// See [`Self::bind`]; `k = 0` is rejected.
    pub fn call_top_k(&self, params: &[f64], k: usize) -> Result<planar_core::TopKOutcome> {
        let q = TopKQuery::new(self.bind(params)?, k).map_err(RelationError::Index)?;
        self.set.top_k(&q).map_err(RelationError::Index)
    }

    /// Re-evaluate `φ` for one relation row (after an update) and refresh
    /// the index.
    ///
    /// # Errors
    ///
    /// [`RelationError::RowNotFound`], index errors.
    pub fn refresh_row(&mut self, relation: &Relation, id: RowId) -> Result<()> {
        let raw = relation.row(id)?;
        let phi_row: Vec<f64> = self
            .spec
            .axes
            .iter()
            .map(|(phi, _)| phi.eval_row(&raw))
            .collect();
        if phi_row.iter().any(|v| !v.is_finite()) {
            return Err(RelationError::EvalNotFinite { row: id });
        }
        self.set.update_point(id, &phi_row)?;
        Ok(())
    }

    /// Index a row newly inserted into the relation.
    ///
    /// # Errors
    ///
    /// [`RelationError::RowNotFound`], index errors.
    pub fn index_new_row(&mut self, relation: &Relation, id: RowId) -> Result<()> {
        let raw = relation.row(id)?;
        let phi_row: Vec<f64> = self
            .spec
            .axes
            .iter()
            .map(|(phi, _)| phi.eval_row(&raw))
            .collect();
        if phi_row.iter().any(|v| !v.is_finite()) {
            return Err(RelationError::EvalNotFinite { row: id });
        }
        let new_id = self.set.insert_point(&phi_row)?;
        debug_assert_eq!(new_id, id, "relation and index ids must stay aligned");
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn consumption_relation() -> (Schema, Relation) {
        let schema = Schema::new(["active", "reactive", "voltage", "current"]).unwrap();
        let mut rel = Relation::new(schema.clone());
        // power factors: 0.5, 1.0, 0.25, 0.8
        rel.insert(&[120.0, 0.2, 240.0, 1.0]).unwrap();
        rel.insert(&[470.0, 0.1, 235.0, 2.0]).unwrap();
        rel.insert(&[60.0, 0.5, 240.0, 1.0]).unwrap();
        rel.insert(&[384.0, 0.3, 240.0, 2.0]).unwrap();
        (schema, rel)
    }

    fn critical_consume(schema: &Schema, rel: &Relation, budget: usize) -> FunctionIndex {
        FunctionSpec::new()
            .axis(Expr::parse("active", schema).unwrap(), Coef::constant(1.0))
            .axis(
                Expr::parse("voltage * current", schema).unwrap(),
                Coef::param(0, -1.0, Domain::Continuous { lo: 0.1, hi: 1.0 }),
            )
            .cmp(Cmp::Leq)
            .offset(0.0)
            .build(rel, budget)
            .unwrap()
    }

    #[test]
    fn critical_consume_selects_by_power_factor() {
        let (schema, rel) = consumption_relation();
        let f = critical_consume(&schema, &rel, 8);
        assert_eq!(f.call(&[0.6]).unwrap().sorted_ids(), vec![0, 2]);
        assert_eq!(f.call(&[0.26]).unwrap().sorted_ids(), vec![2]);
        assert_eq!(f.call(&[1.0]).unwrap().sorted_ids(), vec![0, 1, 2, 3]);
        // Index path must be taken and agree with the scan.
        let out = f.call(&[0.5]).unwrap();
        assert!(out.stats.used_index());
        assert_eq!(out.sorted_ids(), f.call_scan(&[0.5]).unwrap().sorted_ids());
    }

    #[test]
    fn param_arity_is_checked() {
        let (schema, rel) = consumption_relation();
        let f = critical_consume(&schema, &rel, 2);
        assert_eq!(
            f.call(&[]).unwrap_err(),
            RelationError::ParamArityMismatch {
                expected: 1,
                found: 0
            }
        );
        assert!(f.call(&[0.5, 0.5]).is_err());
    }

    #[test]
    fn empty_function_rejected() {
        let (_, rel) = consumption_relation();
        assert_eq!(
            FunctionSpec::new().build(&rel, 4).unwrap_err(),
            RelationError::EmptyFunction
        );
    }

    #[test]
    fn offset_param_and_geq() {
        let (schema, rel) = consumption_relation();
        // active ≥ 100·param  (find heavy consumers)
        let f = FunctionSpec::new()
            .axis(Expr::parse("active", &schema).unwrap(), Coef::constant(1.0))
            .axis(
                Expr::parse("reactive", &schema).unwrap(),
                Coef::constant(1.0),
            )
            .cmp(Cmp::Geq)
            .offset_param(0, 100.0)
            .build(&rel, 4)
            .unwrap();
        assert_eq!(f.call(&[4.0]).unwrap().sorted_ids(), vec![1]); // active ≥ 400
        assert_eq!(f.call(&[1.0]).unwrap().sorted_ids(), vec![0, 1, 3]);
    }

    #[test]
    fn refresh_row_tracks_updates() {
        let (schema, mut rel) = consumption_relation();
        let mut f = critical_consume(&schema, &rel, 4);
        // Household 1 drops to pf 0.1.
        rel.update_row(1, &[47.0, 0.1, 235.0, 2.0]).unwrap();
        f.refresh_row(&rel, 1).unwrap();
        assert_eq!(f.call(&[0.2]).unwrap().sorted_ids(), vec![1]);
    }

    #[test]
    fn index_new_row_tracks_inserts() {
        let (schema, mut rel) = consumption_relation();
        let mut f = critical_consume(&schema, &rel, 4);
        let id = rel.insert(&[24.0, 0.0, 240.0, 1.0]).unwrap(); // pf 0.1
        f.index_new_row(&rel, id).unwrap();
        assert_eq!(f.call(&[0.15]).unwrap().sorted_ids(), vec![id]);
    }

    #[test]
    fn top_k_returns_nearest_to_threshold() {
        let (schema, rel) = consumption_relation();
        let f = critical_consume(&schema, &rel, 8);
        // Threshold 0.9: satisfying pfs {0.5, 0.25, 0.8}; nearest to the
        // hyperplane is pf 0.8 (id 3).
        let out = f.call_top_k(&[0.9], 1).unwrap();
        assert_eq!(out.neighbors.len(), 1);
        assert_eq!(out.neighbors[0].0, 3);
    }

    #[test]
    fn discrete_param_domain_scales() {
        let c = Coef::param(0, -1.0, Domain::Discrete(vec![0.5, 1.0]));
        assert_eq!(c.coefficient_domain(), Domain::Discrete(vec![-0.5, -1.0]));
        let c = Coef::param(0, 2.0, Domain::Continuous { lo: -3.0, hi: -1.0 });
        assert_eq!(
            c.coefficient_domain(),
            Domain::Continuous { lo: -6.0, hi: -2.0 }
        );
    }
}
