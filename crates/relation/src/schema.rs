//! Relation schemas: ordered, named `f64` columns.

use crate::{RelationError, Result};
use std::collections::HashMap;
use std::sync::Arc;

/// An immutable, cheaply-cloneable schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    inner: Arc<SchemaInner>,
}

#[derive(Debug, PartialEq, Eq)]
struct SchemaInner {
    names: Vec<String>,
    by_name: HashMap<String, usize>,
}

impl Schema {
    /// Create a schema from column names.
    ///
    /// # Errors
    ///
    /// [`RelationError::EmptySchema`] for no columns,
    /// [`RelationError::DuplicateColumn`] for repeated names.
    pub fn new<I, S>(names: I) -> Result<Self>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        if names.is_empty() {
            return Err(RelationError::EmptySchema);
        }
        let mut by_name = HashMap::with_capacity(names.len());
        for (i, n) in names.iter().enumerate() {
            if by_name.insert(n.clone(), i).is_some() {
                return Err(RelationError::DuplicateColumn(n.clone()));
            }
        }
        Ok(Self {
            inner: Arc::new(SchemaInner { names, by_name }),
        })
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.inner.names.len()
    }

    /// Column names in order.
    pub fn names(&self) -> &[String] {
        &self.inner.names
    }

    /// Position of a column by name.
    ///
    /// # Errors
    ///
    /// [`RelationError::UnknownColumn`].
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.inner
            .by_name
            .get(name)
            .copied()
            .ok_or_else(|| RelationError::UnknownColumn(name.to_string()))
    }

    /// Name of the column at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn name_of(&self, idx: usize) -> &str {
        &self.inner.names[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_lookup() {
        let s = Schema::new(["a", "b", "c"]).unwrap();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert_eq!(s.name_of(2), "c");
        assert_eq!(
            s.index_of("z").unwrap_err(),
            RelationError::UnknownColumn("z".into())
        );
    }

    #[test]
    fn rejects_empty_and_duplicates() {
        assert_eq!(
            Schema::new(Vec::<String>::new()).unwrap_err(),
            RelationError::EmptySchema
        );
        assert_eq!(
            Schema::new(["x", "x"]).unwrap_err(),
            RelationError::DuplicateColumn("x".into())
        );
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let s = Schema::new(["a"]).unwrap();
        let t = s.clone();
        assert_eq!(s, t);
        assert!(Arc::ptr_eq(&s.inner, &t.inner));
    }
}
