//! Multivariate polynomials over columns and run-time parameters, with
//! interval bounds — the algebra behind automatic scalar-product-form
//! compilation (see [`crate::analyze`]).
//!
//! A predicate like the paper's Example 1,
//! `active − threshold·voltage·current ≤ 0`, is a polynomial in two kinds
//! of variables: *columns* (known at index time) and *parameters* (known at
//! query time). Expanding it into monomials makes the scalar-product
//! structure mechanical: **every monomial factors into a column-only part
//! and a parameter-only part**, so grouping by column part yields
//! `Σᵢ coefᵢ(params) · φᵢ(columns) {≤,≥} offset(params)` — exactly what the
//! Planar index needs.

use crate::{RelationError, Result};
use std::collections::BTreeMap;

/// A variable: a relation column or a run-time parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Var {
    /// Column `i` of the schema.
    Col(usize),
    /// Run-time parameter `i`.
    Param(usize),
}

/// A monomial: variables with positive integer powers, kept sorted.
/// The empty monomial is the constant `1`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Monomial {
    factors: Vec<(Var, u32)>,
}

impl Monomial {
    /// The constant monomial `1`.
    pub fn one() -> Self {
        Self::default()
    }

    /// A single variable to the first power.
    pub fn var(v: Var) -> Self {
        Self {
            factors: vec![(v, 1)],
        }
    }

    /// The factors `(variable, power)`, sorted by variable.
    pub fn factors(&self) -> &[(Var, u32)] {
        &self.factors
    }

    /// Is this the constant monomial?
    pub fn is_one(&self) -> bool {
        self.factors.is_empty()
    }

    /// Product of two monomials (powers add).
    pub fn mul(&self, other: &Monomial) -> Monomial {
        let mut map: BTreeMap<Var, u32> = BTreeMap::new();
        for &(v, p) in self.factors.iter().chain(&other.factors) {
            *map.entry(v).or_insert(0) += p;
        }
        Monomial {
            factors: map.into_iter().collect(),
        }
    }

    /// Split into (column-only part, parameter-only part).
    pub fn split(&self) -> (Monomial, Monomial) {
        let (cols, params): (Vec<_>, Vec<_>) = self
            .factors
            .iter()
            .copied()
            .partition(|(v, _)| matches!(v, Var::Col(_)));
        (Monomial { factors: cols }, Monomial { factors: params })
    }

    /// Total degree.
    pub fn degree(&self) -> u32 {
        self.factors.iter().map(|(_, p)| p).sum()
    }
}

/// A polynomial: a sum of monomials with `f64` coefficients.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Poly {
    /// Monomial → coefficient; zero coefficients are pruned.
    terms: BTreeMap<Monomial, f64>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Self::default()
    }

    /// A constant.
    pub fn constant(v: f64) -> Self {
        let mut p = Self::zero();
        if v != 0.0 {
            p.terms.insert(Monomial::one(), v);
        }
        p
    }

    /// A single variable.
    pub fn var(v: Var) -> Self {
        let mut p = Self::zero();
        p.terms.insert(Monomial::var(v), 1.0);
        p
    }

    /// The terms, sorted by monomial.
    pub fn terms(&self) -> impl Iterator<Item = (&Monomial, f64)> {
        self.terms.iter().map(|(m, &c)| (m, c))
    }

    /// Number of (non-zero) terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Is this the zero polynomial?
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The constant value if the polynomial has no variables.
    pub fn as_constant(&self) -> Option<f64> {
        match self.terms.len() {
            0 => Some(0.0),
            1 => {
                let (m, &c) = self.terms.iter().next()?;
                m.is_one().then_some(c)
            }
            _ => None,
        }
    }

    fn add_term(&mut self, m: Monomial, c: f64) {
        if c == 0.0 {
            return;
        }
        use std::collections::btree_map::Entry;
        match self.terms.entry(m) {
            Entry::Occupied(mut e) => {
                *e.get_mut() += c;
                if *e.get() == 0.0 {
                    e.remove();
                }
            }
            Entry::Vacant(v) => {
                v.insert(c);
            }
        }
    }

    /// Sum.
    pub fn add(&self, other: &Poly) -> Poly {
        let mut out = self.clone();
        for (m, &c) in &other.terms {
            out.add_term(m.clone(), c);
        }
        out
    }

    /// Difference `self − other`.
    pub fn sub(&self, other: &Poly) -> Poly {
        self.add(&other.neg())
    }

    /// Negation.
    pub fn neg(&self) -> Poly {
        Poly {
            terms: self.terms.iter().map(|(m, c)| (m.clone(), -c)).collect(),
        }
    }

    /// Product (full expansion).
    pub fn mul(&self, other: &Poly) -> Poly {
        let mut out = Poly::zero();
        for (ma, &ca) in &self.terms {
            for (mb, &cb) in &other.terms {
                out.add_term(ma.mul(mb), ca * cb);
            }
        }
        out
    }

    /// Integer power by repeated squaring.
    pub fn powi(&self, mut exp: u32) -> Poly {
        let mut base = self.clone();
        let mut acc = Poly::constant(1.0);
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul(&base);
            }
            base = base.mul(&base);
            exp >>= 1;
        }
        acc
    }

    /// Division — only by a non-zero constant (division by variables does
    /// not stay polynomial).
    ///
    /// # Errors
    ///
    /// [`RelationError::NotPolynomial`] when the divisor is non-constant or
    /// zero.
    pub fn div(&self, other: &Poly) -> Result<Poly> {
        match other.as_constant() {
            Some(c) if c != 0.0 => Ok(Poly {
                terms: self.terms.iter().map(|(m, v)| (m.clone(), v / c)).collect(),
            }),
            _ => Err(RelationError::NotPolynomial(
                "division by a non-constant expression".into(),
            )),
        }
    }

    /// Evaluate at a full assignment (`cols[i]` for `Var::Col(i)`,
    /// `params[i]` for `Var::Param(i)`).
    pub fn eval(&self, cols: &[f64], params: &[f64]) -> f64 {
        self.terms
            .iter()
            .map(|(m, c)| {
                c * m
                    .factors()
                    .iter()
                    .map(|&(v, p)| {
                        let base = match v {
                            Var::Col(i) => cols[i],
                            Var::Param(i) => params[i],
                        };
                        base.powi(p as i32)
                    })
                    .product::<f64>()
            })
            .sum()
    }

    /// Largest parameter index referenced, if any.
    pub fn max_param(&self) -> Option<usize> {
        self.terms
            .keys()
            .flat_map(|m| m.factors())
            .filter_map(|&(v, _)| match v {
                Var::Param(i) => Some(i),
                Var::Col(_) => None,
            })
            .max()
    }

    /// Interval bounds of a *parameter-only* polynomial, given per-parameter
    /// intervals. Conservative (interval arithmetic per term).
    ///
    /// # Panics
    ///
    /// Debug-panics if the polynomial references a column variable.
    pub fn param_bounds(&self, param_intervals: &[(f64, f64)]) -> (f64, f64) {
        let mut total = Interval::point(0.0);
        for (m, &c) in &self.terms {
            let mut term = Interval::point(c);
            for &(v, p) in m.factors() {
                let i = match v {
                    Var::Param(i) => i,
                    Var::Col(_) => {
                        debug_assert!(false, "param_bounds on a column polynomial");
                        return (f64::NEG_INFINITY, f64::INFINITY);
                    }
                };
                let (lo, hi) = param_intervals[i];
                term = term * Interval { lo, hi }.powi(p);
            }
            total = total + term;
        }
        (total.lo, total.hi)
    }
}

/// Closed-interval arithmetic for coefficient-domain derivation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl std::ops::Add for Interval {
    type Output = Interval;

    fn add(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo + other.lo,
            hi: self.hi + other.hi,
        }
    }
}

impl std::ops::Mul for Interval {
    type Output = Interval;

    fn mul(self, other: Interval) -> Interval {
        let candidates = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ];
        Interval {
            lo: candidates.iter().copied().fold(f64::INFINITY, f64::min),
            hi: candidates.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

impl Interval {
    /// A degenerate (point) interval.
    pub fn point(v: f64) -> Self {
        Self { lo: v, hi: v }
    }

    /// Interval integer power (tight for even powers across zero).
    pub fn powi(self, p: u32) -> Interval {
        if p == 0 {
            return Interval::point(1.0);
        }
        let (alo, ahi) = (self.lo.powi(p as i32), self.hi.powi(p as i32));
        if p % 2 == 1 {
            Interval { lo: alo, hi: ahi }
        } else if self.lo <= 0.0 && self.hi >= 0.0 {
            Interval {
                lo: 0.0,
                hi: alo.max(ahi),
            }
        } else {
            Interval {
                lo: alo.min(ahi),
                hi: alo.max(ahi),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Poly {
        Poly::var(Var::Col(0))
    }

    fn y() -> Poly {
        Poly::var(Var::Col(1))
    }

    fn p0() -> Poly {
        Poly::var(Var::Param(0))
    }

    #[test]
    fn arithmetic_expands_correctly() {
        // (x + 2)(x − 2) = x² − 4
        let e = x()
            .add(&Poly::constant(2.0))
            .mul(&x().sub(&Poly::constant(2.0)));
        assert_eq!(e.len(), 2);
        assert_eq!(e.eval(&[3.0], &[]), 5.0);
        assert_eq!(e.eval(&[2.0], &[]), 0.0);

        // (x + y)² = x² + 2xy + y²
        let sq = x().add(&y()).powi(2);
        assert_eq!(sq.len(), 3);
        assert_eq!(sq.eval(&[2.0, 3.0], &[]), 25.0);
    }

    #[test]
    fn cancellation_prunes_terms() {
        let e = x().sub(&x());
        assert!(e.is_empty());
        assert_eq!(e.as_constant(), Some(0.0));
    }

    #[test]
    fn division_only_by_constants() {
        let e = x()
            .mul(&Poly::constant(6.0))
            .div(&Poly::constant(2.0))
            .unwrap();
        assert_eq!(e.eval(&[5.0], &[]), 15.0);
        assert!(x().div(&y()).is_err());
        assert!(x().div(&Poly::zero()).is_err());
    }

    #[test]
    fn monomial_split_separates_cols_and_params() {
        // 3·x·p²·y
        let m = Monomial::var(Var::Col(0))
            .mul(&Monomial::var(Var::Param(0)))
            .mul(&Monomial::var(Var::Param(0)))
            .mul(&Monomial::var(Var::Col(1)));
        assert_eq!(m.degree(), 4);
        let (cols, params) = m.split();
        assert_eq!(cols.factors(), &[(Var::Col(0), 1), (Var::Col(1), 1)]);
        assert_eq!(params.factors(), &[(Var::Param(0), 2)]);
    }

    #[test]
    fn eval_with_params() {
        // x − p·y  (the paper's Example 1 shape)
        let e = x().sub(&p0().mul(&y()));
        assert_eq!(e.eval(&[120.0, 240.0], &[0.5]), 0.0);
        assert_eq!(e.eval(&[100.0, 240.0], &[0.5]), -20.0);
        assert_eq!(e.max_param(), Some(0));
        assert_eq!(x().max_param(), None);
    }

    #[test]
    fn interval_arithmetic() {
        let a = Interval { lo: -2.0, hi: 3.0 };
        assert_eq!(a.powi(2), Interval { lo: 0.0, hi: 9.0 });
        assert_eq!(a.powi(3), Interval { lo: -8.0, hi: 27.0 });
        let b = Interval { lo: 1.0, hi: 2.0 };
        assert_eq!(a * b, Interval { lo: -4.0, hi: 6.0 });
        assert_eq!(a + b, Interval { lo: -1.0, hi: 5.0 });
    }

    #[test]
    fn param_bounds_are_conservative_and_tight_for_monotone() {
        // −p over p ∈ [0.1, 1] → [−1, −0.1]
        let e = p0().neg();
        assert_eq!(e.param_bounds(&[(0.1, 1.0)]), (-1.0, -0.1));
        // 1 + p² over p ∈ [−2, 1] → [1, 5]
        let e = Poly::constant(1.0).add(&p0().powi(2));
        assert_eq!(e.param_bounds(&[(-2.0, 1.0)]), (1.0, 5.0));
    }

    #[test]
    fn powi_by_squaring_matches_repeated_mul() {
        let base = x().add(&Poly::constant(1.0));
        let mut manual = Poly::constant(1.0);
        for _ in 0..5 {
            manual = manual.mul(&base);
        }
        assert_eq!(base.powi(5), manual);
        assert_eq!(base.powi(0), Poly::constant(1.0));
    }
}
