//! A small Pratt parser for arithmetic expressions over column names.
//!
//! Grammar (standard precedence, `^` binds tightest and associates right):
//!
//! ```text
//! expr    := term (('+' | '-') term)*
//! term    := factor (('*' | '/') factor)*
//! factor  := ('-')* power
//! power   := atom ('^' factor)?
//! atom    := NUMBER | IDENT | '(' expr ')'
//! IDENT   := [A-Za-z_][A-Za-z0-9_]*
//! ```
//!
//! Identifiers are resolved against the schema at parse time, so an unknown
//! column is a parse-time error, not a query-time one.

use crate::expr::{BinOp, Expr};
use crate::schema::Schema;
use crate::{RelationError, Result};

/// An unresolved parse tree: identifiers are still names. Lowered to
/// [`Expr`] (columns only) by [`parse_expr`], or to parameterized
/// polynomials by [`crate::analyze`].
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum RawExpr {
    Number(f64),
    Ident(String),
    Neg(Box<RawExpr>),
    Binary {
        op: BinOp,
        left: Box<RawExpr>,
        right: Box<RawExpr>,
    },
}

impl RawExpr {
    fn binary(op: BinOp, left: RawExpr, right: RawExpr) -> RawExpr {
        RawExpr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Number(f64),
    Ident(String),
    Plus,
    Minus,
    Star,
    Slash,
    Caret,
    LParen,
    RParen,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: &str) -> RelationError {
        RelationError::Parse {
            message: message.to_string(),
            position: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    /// Next token with its starting byte position, or `None` at the end.
    fn next_token(&mut self) -> Result<Option<(usize, Token)>> {
        self.skip_ws();
        if self.pos >= self.src.len() {
            return Ok(None);
        }
        let start = self.pos;
        let c = self.src[self.pos];
        let tok = match c {
            b'+' => {
                self.pos += 1;
                Token::Plus
            }
            b'-' => {
                self.pos += 1;
                Token::Minus
            }
            b'*' => {
                self.pos += 1;
                Token::Star
            }
            b'/' => {
                self.pos += 1;
                Token::Slash
            }
            b'^' => {
                self.pos += 1;
                Token::Caret
            }
            b'(' => {
                self.pos += 1;
                Token::LParen
            }
            b')' => {
                self.pos += 1;
                Token::RParen
            }
            b'0'..=b'9' | b'.' => {
                let mut end = self.pos;
                let mut seen_e = false;
                while end < self.src.len() {
                    let b = self.src[end];
                    let is_num = b.is_ascii_digit() || b == b'.';
                    let is_exp = (b == b'e' || b == b'E') && !seen_e;
                    let is_exp_sign = (b == b'+' || b == b'-')
                        && end > self.pos
                        && matches!(self.src[end - 1], b'e' | b'E');
                    if is_exp {
                        seen_e = true;
                    }
                    if is_num || is_exp || is_exp_sign {
                        end += 1;
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&self.src[self.pos..end])
                    .expect("ascii digits are valid utf8");
                let value: f64 = text
                    .parse()
                    .map_err(|_| self.error(&format!("invalid number `{text}`")))?;
                self.pos = end;
                Token::Number(value)
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let mut end = self.pos;
                while end < self.src.len()
                    && (self.src[end].is_ascii_alphanumeric() || self.src[end] == b'_')
                {
                    end += 1;
                }
                let name = std::str::from_utf8(&self.src[self.pos..end])
                    .expect("ascii idents are valid utf8")
                    .to_string();
                self.pos = end;
                Token::Ident(name)
            }
            other => return Err(self.error(&format!("unexpected character `{}`", other as char))),
        };
        Ok(Some((start, tok)))
    }
}

struct Parser {
    tokens: Vec<(usize, Token)>,
    cursor: usize,
    src_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.cursor).map(|(_, t)| t)
    }

    fn bump(&mut self) -> Option<(usize, Token)> {
        let t = self.tokens.get(self.cursor).cloned();
        if t.is_some() {
            self.cursor += 1;
        }
        t
    }

    fn here(&self) -> usize {
        self.tokens
            .get(self.cursor)
            .map(|(p, _)| *p)
            .unwrap_or(self.src_len)
    }

    fn error(&self, message: &str) -> RelationError {
        RelationError::Parse {
            message: message.to_string(),
            position: self.here(),
        }
    }

    fn parse_expr(&mut self) -> Result<RawExpr> {
        let mut left = self.parse_term()?;
        while let Some(op) = match self.peek() {
            Some(Token::Plus) => Some(BinOp::Add),
            Some(Token::Minus) => Some(BinOp::Sub),
            _ => None,
        } {
            self.bump();
            let right = self.parse_term()?;
            left = RawExpr::binary(op, left, right);
        }
        Ok(left)
    }

    fn parse_term(&mut self) -> Result<RawExpr> {
        let mut left = self.parse_factor()?;
        while let Some(op) = match self.peek() {
            Some(Token::Star) => Some(BinOp::Mul),
            Some(Token::Slash) => Some(BinOp::Div),
            _ => None,
        } {
            self.bump();
            let right = self.parse_factor()?;
            left = RawExpr::binary(op, left, right);
        }
        Ok(left)
    }

    fn parse_factor(&mut self) -> Result<RawExpr> {
        if matches!(self.peek(), Some(Token::Minus)) {
            self.bump();
            let inner = self.parse_factor()?;
            return Ok(RawExpr::Neg(Box::new(inner)));
        }
        self.parse_power()
    }

    fn parse_power(&mut self) -> Result<RawExpr> {
        let base = self.parse_atom()?;
        if matches!(self.peek(), Some(Token::Caret)) {
            self.bump();
            // Right-associative: exponent is a factor (allows -x and chains).
            let exp = self.parse_factor()?;
            return Ok(RawExpr::binary(BinOp::Pow, base, exp));
        }
        Ok(base)
    }

    fn parse_atom(&mut self) -> Result<RawExpr> {
        match self.bump() {
            Some((_, Token::Number(v))) => Ok(RawExpr::Number(v)),
            Some((_, Token::Ident(name))) => Ok(RawExpr::Ident(name)),
            Some((_, Token::LParen)) => {
                let inner = self.parse_expr()?;
                match self.bump() {
                    Some((_, Token::RParen)) => Ok(inner),
                    _ => Err(self.error("expected `)`")),
                }
            }
            Some((pos, tok)) => Err(RelationError::Parse {
                message: format!("unexpected token {tok:?}"),
                position: pos,
            }),
            None => Err(self.error("unexpected end of expression")),
        }
    }
}

/// Lower a raw tree to an [`Expr`], resolving identifiers as columns.
fn lower_to_expr(raw: &RawExpr, schema: &Schema) -> Result<Expr> {
    match raw {
        RawExpr::Number(v) => Ok(Expr::Literal(*v)),
        RawExpr::Ident(name) => Expr::col(name, schema),
        RawExpr::Neg(inner) => Ok(Expr::Neg(Box::new(lower_to_expr(inner, schema)?))),
        RawExpr::Binary { op, left, right } => Ok(Expr::binary(
            *op,
            lower_to_expr(left, schema)?,
            lower_to_expr(right, schema)?,
        )),
    }
}

/// Parse `text` into an [`Expr`], resolving identifiers against `schema`.
///
/// # Errors
///
/// [`RelationError::Parse`] (with byte position) or
/// [`RelationError::UnknownColumn`].
pub fn parse_expr(text: &str, schema: &Schema) -> Result<Expr> {
    lower_to_expr(&parse_raw(text)?, schema)
}

/// Parse to the unresolved tree (shared by [`parse_expr`] and the
/// scalar-product analyzer).
pub(crate) fn parse_raw(text: &str) -> Result<RawExpr> {
    let mut lexer = Lexer::new(text);
    let mut tokens = Vec::new();
    while let Some(t) = lexer.next_token()? {
        tokens.push(t);
    }
    let mut parser = Parser {
        tokens,
        cursor: 0,
        src_len: text.len(),
    };
    let expr = parser.parse_expr()?;
    if parser.cursor != parser.tokens.len() {
        return Err(parser.error("trailing input after expression"));
    }
    Ok(expr)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(["x", "y", "voltage", "current"]).unwrap()
    }

    fn eval(text: &str, row: &[f64]) -> f64 {
        parse_expr(text, &schema()).unwrap().eval_row(row)
    }

    #[test]
    fn precedence_and_associativity() {
        assert_eq!(eval("1 + 2 * 3", &[0.0; 4]), 7.0);
        assert_eq!(eval("(1 + 2) * 3", &[0.0; 4]), 9.0);
        assert_eq!(eval("8 / 4 / 2", &[0.0; 4]), 1.0); // left-assoc
        assert_eq!(eval("2 ^ 3 ^ 2", &[0.0; 4]), 512.0); // right-assoc
        assert_eq!(eval("10 - 4 - 3", &[0.0; 4]), 3.0);
    }

    #[test]
    fn unary_minus() {
        assert_eq!(eval("-3 + 5", &[0.0; 4]), 2.0);
        assert_eq!(eval("--3", &[0.0; 4]), 3.0);
        assert_eq!(eval("2 * -x", &[4.0, 0.0, 0.0, 0.0]), -8.0);
        // Mathematical convention: unary minus binds looser than `^`,
        // so -2^2 = -(2^2).
        assert_eq!(eval("-2 ^ 2", &[0.0; 4]), -4.0);
        assert_eq!(eval("(-2) ^ 2", &[0.0; 4]), 4.0);
    }

    #[test]
    fn columns_resolve() {
        assert_eq!(eval("voltage * current", &[0.0, 0.0, 240.0, 2.0]), 480.0);
        assert!(matches!(
            parse_expr("watts + 1", &schema()),
            Err(RelationError::UnknownColumn(_))
        ));
    }

    #[test]
    fn scientific_notation_and_decimals() {
        assert_eq!(eval("1.5e2 + .5", &[0.0; 4]), 150.5);
        assert_eq!(eval("2e-1", &[0.0; 4]), 0.2);
    }

    #[test]
    fn error_positions() {
        let err = parse_expr("1 + $", &schema()).unwrap_err();
        assert_eq!(
            err,
            RelationError::Parse {
                message: "unexpected character `$`".into(),
                position: 4
            }
        );
        assert!(matches!(
            parse_expr("(1 + 2", &schema()),
            Err(RelationError::Parse { .. })
        ));
        assert!(matches!(
            parse_expr("1 2", &schema()),
            Err(RelationError::Parse { .. })
        ));
        assert!(matches!(
            parse_expr("", &schema()),
            Err(RelationError::Parse { .. })
        ));
    }

    #[test]
    fn example1_expression_roundtrip() {
        // The paper's Example 1 predicate body.
        let e = parse_expr("x - 0.5 * voltage * current", &schema()).unwrap();
        assert_eq!(e.eval_row(&[100.0, 0.0, 240.0, 1.0]), -20.0);
    }
}
