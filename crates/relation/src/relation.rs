//! Columnar row storage.
//!
//! Values are stored column-major: expression evaluation over a whole
//! relation walks one contiguous column per referenced attribute, which is
//! the layout analytical engines use for exactly this access pattern.

use crate::schema::Schema;
use crate::{RelationError, Result};

/// Identifier of a row (its insertion position).
pub type RowId = u32;

/// A columnar table of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    schema: Schema,
    columns: Vec<Vec<f64>>,
}

impl Relation {
    /// An empty relation with the given schema.
    pub fn new(schema: Schema) -> Self {
        let columns = (0..schema.arity()).map(|_| Vec::new()).collect();
        Self { schema, columns }
    }

    /// An empty relation with row capacity reserved.
    pub fn with_capacity(schema: Schema, rows: usize) -> Self {
        let columns = (0..schema.arity())
            .map(|_| Vec::with_capacity(rows))
            .collect();
        Self { schema, columns }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// True when the relation holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert a row (values in schema order); returns its [`RowId`].
    ///
    /// # Errors
    ///
    /// [`RelationError::ArityMismatch`] or [`RelationError::NotFinite`].
    pub fn insert(&mut self, values: &[f64]) -> Result<RowId> {
        if values.len() != self.schema.arity() {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.arity(),
                found: values.len(),
            });
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(RelationError::NotFinite);
        }
        let id = self.len() as RowId;
        for (col, &v) in self.columns.iter_mut().zip(values) {
            col.push(v);
        }
        Ok(id)
    }

    /// The value at `(row, column)`.
    ///
    /// # Errors
    ///
    /// [`RelationError::RowNotFound`].
    pub fn value(&self, row: RowId, column: usize) -> Result<f64> {
        self.columns[column]
            .get(row as usize)
            .copied()
            .ok_or(RelationError::RowNotFound(row))
    }

    /// Overwrite one cell.
    ///
    /// # Errors
    ///
    /// [`RelationError::RowNotFound`], [`RelationError::NotFinite`].
    pub fn update_value(&mut self, row: RowId, column: usize, value: f64) -> Result<()> {
        if !value.is_finite() {
            return Err(RelationError::NotFinite);
        }
        let cell = self.columns[column]
            .get_mut(row as usize)
            .ok_or(RelationError::RowNotFound(row))?;
        *cell = value;
        Ok(())
    }

    /// Overwrite a whole row.
    ///
    /// # Errors
    ///
    /// [`RelationError::ArityMismatch`], [`RelationError::RowNotFound`],
    /// [`RelationError::NotFinite`].
    pub fn update_row(&mut self, row: RowId, values: &[f64]) -> Result<()> {
        if values.len() != self.schema.arity() {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.arity(),
                found: values.len(),
            });
        }
        if (row as usize) >= self.len() {
            return Err(RelationError::RowNotFound(row));
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(RelationError::NotFinite);
        }
        for (col, &v) in self.columns.iter_mut().zip(values) {
            col[row as usize] = v;
        }
        Ok(())
    }

    /// Materialize a row (schema order).
    ///
    /// # Errors
    ///
    /// [`RelationError::RowNotFound`].
    pub fn row(&self, row: RowId) -> Result<Vec<f64>> {
        if (row as usize) >= self.len() {
            return Err(RelationError::RowNotFound(row));
        }
        Ok(self.columns.iter().map(|c| c[row as usize]).collect())
    }

    /// Borrow an entire column.
    pub fn column(&self, column: usize) -> &[f64] {
        &self.columns[column]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn relation() -> Relation {
        let schema = Schema::new(["a", "b"]).unwrap();
        let mut r = Relation::new(schema);
        r.insert(&[1.0, 10.0]).unwrap();
        r.insert(&[2.0, 20.0]).unwrap();
        r
    }

    #[test]
    fn insert_and_read() {
        let r = relation();
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.value(0, 1).unwrap(), 10.0);
        assert_eq!(r.row(1).unwrap(), vec![2.0, 20.0]);
        assert_eq!(r.column(0), &[1.0, 2.0]);
        assert_eq!(r.value(5, 0).unwrap_err(), RelationError::RowNotFound(5));
    }

    #[test]
    fn insert_validates() {
        let mut r = relation();
        assert_eq!(
            r.insert(&[1.0]).unwrap_err(),
            RelationError::ArityMismatch {
                expected: 2,
                found: 1
            }
        );
        assert_eq!(
            r.insert(&[1.0, f64::NAN]).unwrap_err(),
            RelationError::NotFinite
        );
    }

    #[test]
    fn updates() {
        let mut r = relation();
        r.update_value(0, 0, 7.0).unwrap();
        assert_eq!(r.value(0, 0).unwrap(), 7.0);
        r.update_row(1, &[8.0, 80.0]).unwrap();
        assert_eq!(r.row(1).unwrap(), vec![8.0, 80.0]);
        assert!(r.update_row(9, &[0.0, 0.0]).is_err());
        assert!(r.update_value(0, 0, f64::INFINITY).is_err());
    }
}
