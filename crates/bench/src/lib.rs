//! # planar-bench
//!
//! The benchmark harness that regenerates **every table and figure** of the
//! paper's evaluation (§7), plus the ablation studies called out in
//! `DESIGN.md`.
//!
//! Run experiments with the `harness` binary:
//!
//! ```text
//! cargo run -p planar-bench --release --bin harness -- list
//! cargo run -p planar-bench --release --bin harness -- fig7
//! cargo run -p planar-bench --release --bin harness -- --scale 1.0 all
//! ```
//!
//! `--scale` multiplies every dataset cardinality (1.0 = paper scale:
//! 1M-point synthetics, 2M-row consumption, 5K×5K moving-object pairs).
//! The default 0.05 finishes the full suite on a laptop in minutes while
//! preserving every qualitative shape; `EXPERIMENTS.md` records both.
//!
//! Timing-critical kernels additionally have Criterion micro-benchmarks in
//! `benches/`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod experiments;
pub mod report;

use std::time::Instant;

/// Harness configuration shared by all experiments.
#[derive(Debug, Clone)]
pub struct Config {
    /// Dataset-size multiplier (1.0 = paper scale).
    pub scale: f64,
    /// Queries per measured configuration (the paper averages 100 runs).
    pub queries: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads for the parallel engine experiments (`--threads`).
    /// Thread-sweep experiments always include 1..=threads in their sweep.
    pub threads: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            scale: 0.05,
            queries: 20,
            seed: 42,
            threads: 4,
        }
    }
}

impl Config {
    /// A cardinality scaled by the configured factor (at least 100).
    pub fn scaled(&self, paper_n: usize) -> usize {
        ((paper_n as f64 * self.scale) as usize).max(100)
    }
}

/// Time a closure, returning its result and elapsed milliseconds.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// Mean elapsed milliseconds of `f` over `iters` calls (each call may
/// return a value that is consumed to keep the optimizer honest).
pub fn mean_time_ms<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    assert!(iters > 0);
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() * 1e3 / iters as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_has_floor() {
        let c = Config {
            scale: 0.0001,
            ..Config::default()
        };
        assert_eq!(c.scaled(1_000_000), 100);
        let c = Config {
            scale: 0.5,
            ..Config::default()
        };
        assert_eq!(c.scaled(1_000_000), 500_000);
    }

    #[test]
    fn timers_return_positive() {
        let ((), ms) = time_ms(|| std::thread::sleep(std::time::Duration::from_millis(2)));
        assert!(ms >= 1.0);
        let mean = mean_time_ms(3, || 1 + 1);
        assert!(mean >= 0.0);
    }
}
