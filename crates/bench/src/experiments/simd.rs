//! SIMD verification experiment: columnar fused-kernel throughput vs the
//! row-major blocked-scalar baseline, and multi-index intersection pruning
//! on vs off. Results are printed as tables and written to
//! `BENCH_simd.json`, stamped with the dispatched kernel so archived
//! numbers are traceable to the code path that produced them.

use crate::report::{ms, Table};
use crate::{time_ms, Config};
use planar_core::{
    Cmp, ExecutionConfig, IndexConfig, InequalityQuery, PlanarIndexSet, QueryScratch,
    StatsAggregator, StatsSnapshot, VecStore,
};
use planar_datagen::queries::{eq18_domain, Eq18Generator};
use planar_datagen::synthetic::{SyntheticConfig, SyntheticKind};
use planar_datagen::SYNTHETIC_N;
use planar_geom::{dot_block, dot_cmp_block, BLOCK_ROWS};

/// Dataset dimensionality (d' = 8 is the paper's mid-size feature space).
const DIM: usize = 8;
/// RQ of the Eq. 18 query template.
const RQ: usize = 4;
/// Index budget for the pruning arm — enough siblings that intersection
/// has sharp intervals to intersect with.
const BUDGET: usize = 8;
/// Timing repetitions per arm (the mean is reported).
const REPS: usize = 5;
/// Rows verified per query in the kernel arm. An intermediate interval is
/// a contiguous key range verified while cache-hot, so the kernel
/// comparison uses an L2-resident window (8192 rows × 8 dims × 8 B =
/// 512 KiB) rather than a full-table sweep that would measure memory
/// bandwidth instead of the kernels.
const VERIFY_WINDOW: usize = 8192;

/// Verify the first `window` rows of `table` against `q` with the
/// PR 1-era row-major blocked-scalar path: gather 64 contiguous rows,
/// `dot_block`, compare. Returns the number of satisfying rows.
fn verify_rowmajor(table: &planar_core::FeatureTable, q: &InequalityQuery, window: u32) -> usize {
    let n = table.len().min(window as usize) as u32;
    let mut dots = [0.0f64; BLOCK_ROWS];
    let mut matched = 0;
    let mut lo = 0u32;
    while lo < n {
        let hi = (lo + BLOCK_ROWS as u32).min(n);
        let lanes = (hi - lo) as usize;
        dot_block(q.a(), table.rows_between(lo, hi), &mut dots[..lanes]);
        for &d in &dots[..lanes] {
            if q.satisfies_dot(d) {
                matched += 1;
            }
        }
        lo = hi;
    }
    matched
}

/// The same verification through the columnar layout and the fused
/// compare kernel (the path `verify_ids` takes since this experiment's
/// accompanying change). Returns the number of satisfying rows.
fn verify_columnar(table: &planar_core::FeatureTable, q: &InequalityQuery, window: u32) -> usize {
    let cols = table.columns();
    let stride = cols.stride();
    let leq = q.cmp() == Cmp::Leq;
    let mut matched = 0;
    for seg in cols.segments(0, (table.len() as u32).min(window)) {
        let mask = dot_cmp_block(q.a(), seg.cols, stride, seg.lanes, q.b(), leq);
        matched += mask.count_ones() as usize;
    }
    matched
}

struct KernelArm {
    rowmajor_ms: f64,
    columnar_ms: f64,
    rows_verified: usize,
}

struct PruningArm {
    queries: usize,
    verified_off: usize,
    verified_on: usize,
    intersect_pruned: usize,
    snapshot: StatsSnapshot,
}

/// The `simd` experiment (see module docs).
pub fn simd(cfg: &Config) {
    let n = cfg.scaled(SYNTHETIC_N);
    let table = SyntheticConfig::paper(SyntheticKind::Independent, n, DIM).generate();
    let set: PlanarIndexSet<VecStore> = PlanarIndexSet::build(
        table,
        eq18_domain(DIM, RQ),
        IndexConfig::with_budget(BUDGET).seed(cfg.seed),
    )
    .expect("simd experiment build");
    let mut generator =
        Eq18Generator::new(set.table(), RQ, cfg.seed ^ 0x51D).with_inequality_parameter(0.25);
    let queries: Vec<InequalityQuery> = generator.queries(cfg.queries.max(10));

    let kernel = kernel_arm(&set, &queries);
    let pruning = pruning_arm(&set, &queries);

    let mut t = Table::new(
        &format!(
            "SIMD verification: n={n}, dim={DIM}, {} queries, kernel={}",
            queries.len(),
            planar_geom::kernel_name()
        ),
        &["arm", "time_ms", "rows/s", "speedup"],
    );
    let rows = kernel.rows_verified as f64;
    t.row(vec![
        "row-major blocked".into(),
        ms(kernel.rowmajor_ms),
        format!("{:.0}", rows / (kernel.rowmajor_ms / 1e3)),
        "1.00".into(),
    ]);
    t.row(vec![
        "columnar fused".into(),
        ms(kernel.columnar_ms),
        format!("{:.0}", rows / (kernel.columnar_ms / 1e3)),
        format!("{:.2}", kernel.rowmajor_ms / kernel.columnar_ms),
    ]);
    t.print();

    let mut t = Table::new(
        &format!(
            "Intersection pruning: budget={BUDGET}, {} queries (answers identical)",
            pruning.queries
        ),
        &["arm", "scalar products", "settled by siblings"],
    );
    t.row(vec![
        "pruning off".into(),
        pruning.verified_off.to_string(),
        "0".into(),
    ]);
    t.row(vec![
        "pruning on".into(),
        pruning.verified_on.to_string(),
        pruning.intersect_pruned.to_string(),
    ]);
    t.print();

    let json = render_json(n, &kernel, &pruning);
    let path = "BENCH_simd.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("[harness] wrote {path}"),
        Err(e) => eprintln!("[harness] could not write {path}: {e}"),
    }
}

/// Time full-table verification through both layouts, asserting they agree
/// on every query's match count.
fn kernel_arm(set: &PlanarIndexSet<VecStore>, queries: &[InequalityQuery]) -> KernelArm {
    let table = set.table();
    let mut rowmajor_ms = 0.0;
    let mut columnar_ms = 0.0;
    let mut rows_verified = 0;
    let window = VERIFY_WINDOW as u32;
    for _ in 0..REPS {
        let (row_counts, t) = time_ms(|| {
            queries
                .iter()
                .map(|q| verify_rowmajor(table, q, window))
                .collect::<Vec<_>>()
        });
        rowmajor_ms += t;
        let (col_counts, t) = time_ms(|| {
            queries
                .iter()
                .map(|q| verify_columnar(table, q, window))
                .collect::<Vec<_>>()
        });
        columnar_ms += t;
        assert_eq!(row_counts, col_counts, "layouts disagree on match counts");
        rows_verified = row_counts.len() * table.len().min(VERIFY_WINDOW);
    }
    KernelArm {
        rowmajor_ms: rowmajor_ms / REPS as f64,
        columnar_ms: columnar_ms / REPS as f64,
        rows_verified,
    }
}

/// Run the query set with intersection pruning off and on, asserting the
/// result sets are identical, and snapshot the pruned run's aggregate
/// stats (which also records the kernel dispatch and thread clamps).
fn pruning_arm(set: &PlanarIndexSet<VecStore>, queries: &[InequalityQuery]) -> PruningArm {
    let off = ExecutionConfig::serial().intersect_pruning(false);
    let on = ExecutionConfig::serial().intersect_min_candidates(1);
    let mut scratch = QueryScratch::new();
    let mut agg = StatsAggregator::new();
    let (mut verified_off, mut verified_on, mut intersect_pruned) = (0, 0, 0);
    for q in queries {
        let plain = set.query_with(q, &off, &mut scratch).expect("unpruned");
        let pruned = set.query_with(q, &on, &mut scratch).expect("pruned");
        assert_eq!(
            plain.matches, pruned.matches,
            "intersection pruning changed a result set"
        );
        verified_off += plain.stats.verified;
        verified_on += pruned.stats.verified;
        intersect_pruned += pruned.stats.intersect_pruned;
        agg.add(&pruned.stats);
    }
    PruningArm {
        queries: queries.len(),
        verified_off,
        verified_on,
        intersect_pruned,
        snapshot: agg.snapshot(),
    }
}

/// Hand-rolled JSON (the workspace has no serde).
fn render_json(n: usize, kernel: &KernelArm, pruning: &PruningArm) -> String {
    let snap = &pruning.snapshot;
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"simd\",\n");
    out.push_str(&format!("  \"n\": {n},\n"));
    out.push_str(&format!("  \"dim\": {DIM},\n"));
    out.push_str(&format!("  \"budget\": {BUDGET},\n"));
    out.push_str(&format!("  \"kernel\": \"{}\",\n", snap.kernel));
    out.push_str(&format!("  \"fma_available\": {},\n", snap.fma_available));
    out.push_str(&format!(
        "  \"thread_clamp_events\": {},\n",
        snap.thread_clamp_events
    ));
    out.push_str("  \"verification\": {\n");
    out.push_str(&format!(
        "    \"rows_verified\": {},\n",
        kernel.rows_verified
    ));
    out.push_str(&format!(
        "    \"rowmajor_blocked_ms\": {:.3},\n",
        kernel.rowmajor_ms
    ));
    out.push_str(&format!(
        "    \"columnar_fused_ms\": {:.3},\n",
        kernel.columnar_ms
    ));
    out.push_str(&format!(
        "    \"speedup\": {:.3}\n",
        kernel.rowmajor_ms / kernel.columnar_ms
    ));
    out.push_str("  },\n");
    out.push_str("  \"intersection_pruning\": {\n");
    out.push_str(&format!("    \"queries\": {},\n", pruning.queries));
    out.push_str(&format!(
        "    \"verified_unpruned\": {},\n",
        pruning.verified_off
    ));
    out.push_str(&format!(
        "    \"verified_pruned\": {},\n",
        pruning.verified_on
    ));
    out.push_str(&format!(
        "    \"settled_by_siblings\": {},\n",
        pruning.intersect_pruned
    ));
    let reduction = if pruning.verified_off == 0 {
        0.0
    } else {
        100.0 * (pruning.verified_off - pruning.verified_on) as f64 / pruning.verified_off as f64
    };
    out.push_str(&format!(
        "    \"verified_reduction_pct\": {reduction:.2},\n"
    ));
    out.push_str(&format!(
        "    \"mean_intersect_pruned\": {:.2},\n",
        snap.mean_intersect_pruned
    ));
    out.push_str("    \"result_sets_identical\": true\n");
    out.push_str("  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_setup() -> (PlanarIndexSet<VecStore>, Vec<InequalityQuery>) {
        let cfg = Config {
            scale: 0.0, // scaled() floors at 100 points
            queries: 4,
            ..Config::default()
        };
        let n = cfg.scaled(SYNTHETIC_N);
        let table = SyntheticConfig::paper(SyntheticKind::Independent, n, DIM).generate();
        let set = PlanarIndexSet::build(
            table,
            eq18_domain(DIM, RQ),
            IndexConfig::with_budget(BUDGET).seed(cfg.seed),
        )
        .unwrap();
        let mut generator =
            Eq18Generator::new(set.table(), RQ, cfg.seed).with_inequality_parameter(0.25);
        let queries = generator.queries(cfg.queries);
        (set, queries)
    }

    #[test]
    fn layouts_agree_on_match_counts() {
        let (set, queries) = tiny_setup();
        for q in &queries {
            let window = VERIFY_WINDOW as u32;
            assert_eq!(
                verify_rowmajor(set.table(), q, window),
                verify_columnar(set.table(), q, window)
            );
        }
    }

    #[test]
    fn json_records_kernel_and_pruning() {
        let (set, queries) = tiny_setup();
        let kernel = kernel_arm(&set, &queries);
        let pruning = pruning_arm(&set, &queries);
        let json = render_json(100, &kernel, &pruning);
        assert!(json.contains("\"kernel\": \"avx2\"") || json.contains("\"kernel\": \"portable\""));
        assert!(json.contains("\"result_sets_identical\": true"));
        assert!(json.contains("\"verified_reduction_pct\""));
        assert_eq!(
            pruning.verified_on + pruning.intersect_pruned,
            pruning.verified_off,
            "pruned + settled must cover exactly the unpruned verifications"
        );
    }
}
