//! Ablation studies for the design decisions called out in DESIGN.md §5.

use crate::report::{ms, Table};
use crate::{mean_time_ms, time_ms, Config};
use planar_core::{
    Cmp, IndexConfig, ParameterDomain, PlanarIndexSet, SelectionStrategy, TopKQuery, VecStore,
};
use planar_datagen::queries::{eq18_domain, Eq18Generator};
use planar_datagen::synthetic::{SyntheticConfig, SyntheticKind};
use planar_datagen::SYNTHETIC_N;

fn standard_set(cfg: &Config, rq: usize, budget: usize) -> PlanarIndexSet<VecStore> {
    let n = cfg.scaled(SYNTHETIC_N);
    let table = SyntheticConfig::paper(SyntheticKind::Independent, n, 6).generate();
    PlanarIndexSet::build(
        table,
        eq18_domain(6, rq),
        IndexConfig::with_budget(budget).seed(cfg.seed),
    )
    .expect("build")
}

/// Best-index selection: stretch vs angle vs the exact oracle count.
pub fn selection(cfg: &Config) {
    let mut set = standard_set(cfg, 8, 50);
    let mut generator = Eq18Generator::new(set.table(), 8, cfg.seed ^ 0xAB1);
    let queries = generator.queries(cfg.queries);
    let mut t = Table::new(
        &format!(
            "Ablation: best-index selection, indp n={}, dim=6, RQ=8, #index={}",
            set.len(),
            set.num_indices()
        ),
        &["strategy", "mean_II", "mean_pruning_%", "query_ms"],
    );
    for strategy in [
        SelectionStrategy::MinStretch,
        SelectionStrategy::MinAngle,
        SelectionStrategy::OracleCount,
    ] {
        set.set_strategy(strategy);
        let mut ii = 0.0;
        let mut pruning = 0.0;
        let mut total_ms = 0.0;
        for q in &queries {
            let (out, tq) = time_ms(|| set.query(q).expect("query"));
            total_ms += tq;
            ii += out.stats.intermediate as f64;
            pruning += out.stats.pruning_percentage();
        }
        let m = queries.len() as f64;
        t.row(vec![
            format!("{strategy:?}"),
            format!("{:.0}", ii / m),
            format!("{:.1}", pruning / m),
            ms(total_ms / m),
        ]);
    }
    t.print();
}

/// Redundant-normal removal (paper §5.2) on vs off on a tight discrete
/// domain where duplicates are common.
pub fn dedup(cfg: &Config) {
    let n = cfg.scaled(SYNTHETIC_N);
    let table = SyntheticConfig::paper(SyntheticKind::Independent, n, 4).generate();
    let mut t = Table::new(
        &format!("Ablation: redundant-normal dedup, indp n={n}, dim=4, RQ=2, budget=100"),
        &["dedup", "#indices_built", "build_s", "query_ms"],
    );
    for dedup in [true, false] {
        let (set, build_ms) = time_ms(|| {
            PlanarIndexSet::<VecStore>::build(
                table.clone(),
                eq18_domain(4, 2),
                IndexConfig::with_budget(100).seed(cfg.seed).dedup(dedup),
            )
            .expect("build")
        });
        let mut generator = Eq18Generator::new(set.table(), 2, cfg.seed ^ 0xDD);
        let queries = generator.queries(cfg.queries);
        let mut total_ms = 0.0;
        for q in &queries {
            let (_, tq) = time_ms(|| set.query(q).expect("query"));
            total_ms += tq;
        }
        t.row(vec![
            dedup.to_string(),
            set.num_indices().to_string(),
            format!("{:.2}", build_ms / 1e3),
            ms(total_ms / queries.len() as f64),
        ]);
    }
    t.print();
}

/// Claim-3 lower-bound pruning in Algorithm 2, on vs off.
pub fn topk_pruning(cfg: &Config) {
    let set = standard_set(cfg, 4, 100);
    let mut generator = Eq18Generator::new(set.table(), 4, cfg.seed ^ 0x70);
    let queries = generator.queries(cfg.queries);
    let mut t = Table::new(
        &format!(
            "Ablation: Algorithm 2 LBS pruning, indp n={}, #index=100",
            set.len()
        ),
        &[
            "k",
            "pruned_checked_%",
            "unpruned_checked_%",
            "pruned_ms",
            "unpruned_ms",
        ],
    );
    for k in [10usize, 100, 1_000] {
        let mut pruned_checked = 0.0;
        let mut unpruned_checked = 0.0;
        let mut pruned_ms = 0.0;
        let mut unpruned_ms = 0.0;
        for q in &queries {
            let tk = TopKQuery::new(q.clone(), k).expect("k");
            let (a, ta) = time_ms(|| set.top_k(&tk).expect("top_k"));
            let (b, tb) = time_ms(|| set.top_k_unpruned(&tk).expect("top_k_unpruned"));
            assert_eq!(a.neighbors, b.neighbors, "pruning must not change answers");
            pruned_checked += a.stats.checked_percentage();
            unpruned_checked += b.stats.checked_percentage();
            pruned_ms += ta;
            unpruned_ms += tb;
        }
        let m = queries.len() as f64;
        t.row(vec![
            k.to_string(),
            format!("{:.2}", pruned_checked / m),
            format!("{:.2}", unpruned_checked / m),
            ms(pruned_ms / m),
            ms(unpruned_ms / m),
        ]);
    }
    t.print();
}

/// Interval-boundary search: the paper-literal d' binary searches vs the
/// reduced two-search form.
pub fn search(cfg: &Config) {
    let mut t = Table::new(
        "Ablation: boundary search — per-axis (paper Eq. 7) vs reduced thresholds",
        &["dim", "literal_us", "reduced_us", "identical_bounds"],
    );
    for dim in [2usize, 6, 10, 14] {
        let n = cfg.scaled(SYNTHETIC_N);
        let table = SyntheticConfig::paper(SyntheticKind::Independent, n, dim).generate();
        let set: PlanarIndexSet<VecStore> = PlanarIndexSet::build(
            table,
            eq18_domain(dim, 4),
            IndexConfig::with_budget(1).seed(cfg.seed),
        )
        .expect("build");
        let idx = set.index_at(0).expect("one index");
        let mut generator = Eq18Generator::new(set.table(), 4, cfg.seed ^ 0x5EA);
        let queries = generator.queries(cfg.queries.max(10));
        let shift = set.normalizer().key_shift(idx.normal());
        let normalized: Vec<_> = queries
            .iter()
            .map(|q| set.normalize_query(q).expect("in-octant").1)
            .collect();
        let mut identical = true;
        for nq in &normalized {
            identical &=
                idx.boundaries(nq, shift, Cmp::Leq) == idx.boundaries_literal(nq, shift, Cmp::Leq);
        }
        let literal_us =
            1e3 * mean_time_ms(50, || {
                for nq in &normalized {
                    std::hint::black_box(idx.boundaries_literal(nq, shift, Cmp::Leq));
                }
            }) / normalized.len() as f64;
        let reduced_us =
            1e3 * mean_time_ms(50, || {
                for nq in &normalized {
                    std::hint::black_box(idx.boundaries(nq, shift, Cmp::Leq));
                }
            }) / normalized.len() as f64;
        t.row(vec![
            dim.to_string(),
            format!("{literal_us:.2}"),
            format!("{reduced_us:.2}"),
            identical.to_string(),
        ]);
    }
    t.print();
}

/// Quiet the unused import when tests are compiled out.
#[allow(dead_code)]
fn _types(_: Option<ParameterDomain>) {}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Config {
        Config {
            scale: 0.0005,
            queries: 2,
            seed: 13,
            threads: 1,
        }
    }

    #[test]
    fn selection_smoke() {
        selection(&tiny());
    }

    #[test]
    fn topk_pruning_smoke() {
        topk_pruning(&tiny());
    }

    #[test]
    fn search_smoke() {
        search(&tiny());
    }
}
