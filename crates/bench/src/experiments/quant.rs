//! Quantized filter-tier experiment: raw filter-pass throughput of the
//! fused `i8`/`i16` classification kernels vs the exact `f64` compare
//! kernel, end-to-end query speedup with the tier enabled (answers
//! asserted bit-identical first), the re-verification band as a function
//! of the error-bound slack, and the per-shard autotuner's chosen
//! policies with a no-regression latency check. Results go to
//! `BENCH_quant.json`.

use crate::report::{ms, Table};
use crate::{time_ms, Config};
use planar_core::{
    Cmp, IndexConfig, InequalityQuery, PlanarIndexSet, QuantAutotuneConfig, QuantFilterStats,
    QuantPolicy, QuantTier, QuantizedColumns, ShardConfig, ShardedIndexSet, VecStore,
};
use planar_datagen::queries::{eq18_domain, Eq18Generator};
use planar_datagen::synthetic::{SyntheticConfig, SyntheticKind};
use planar_geom::{classify_block_i16, classify_block_i8, dot_cmp_block, quant_kernel_name};

/// Dataset dimensionality (d' = 8, the paper's mid-size feature space).
const DIM: usize = 8;
/// RQ of the Eq. 18 query template.
const RQ: usize = 4;
/// Index budget.
const BUDGET: usize = 8;
/// Timing repetitions per arm (the mean is reported).
const REPS: usize = 5;
/// Cardinality sweep (pre-`--scale`): the filter pass must clear ≥1.5×
/// at the largest size.
const NS: [usize; 3] = [5_000, 50_000, 500_000];
/// Error-bound slack sweep for the band arm.
const SLACKS: [f64; 3] = [1.0, 2.0, 4.0];

/// One pass of the exact `f64` compare kernel over every block of the
/// table — the work the filter tier fronts. Returns the match count.
fn f64_pass(table: &planar_core::FeatureTable, q: &InequalityQuery) -> usize {
    let cols = table.columns();
    let stride = cols.stride();
    let leq = q.cmp() == Cmp::Leq;
    let mut matched = 0usize;
    for seg in cols.segments(0, table.len() as u32) {
        matched +=
            dot_cmp_block(q.a(), seg.cols, stride, seg.lanes, q.b(), leq).count_ones() as usize;
    }
    matched
}

/// One pass of the fused quantized classification kernel over every block:
/// the same per-block setup the production filter does (fold the query
/// into `f32` code space, derive thresholds from the block's decode
/// offsets), then one `classify_block_*` call per block. Returns the
/// number of lanes the filter settled (below + above) — classification
/// *throughput* is what this arm measures; verdict soundness is covered by
/// the proptests and the end-to-end arm's identity assertion.
fn quant_pass(q: &InequalityQuery, mirror: &QuantizedColumns, n: usize, stride: usize) -> usize {
    let dim = q.a().len();
    let mut w = vec![0.0f32; dim];
    let mut settled = 0usize;
    let blocks = n.div_ceil(stride);
    for b in 0..blocks {
        let lanes = (n - b * stride).min(stride);
        let scales = &mirror.scales()[b * dim..(b + 1) * dim];
        let offsets = &mirror.offsets()[b * dim..(b + 1) * dim];
        let mut bias = -q.b();
        for j in 0..dim {
            w[j] = (q.a()[j] * scales[j]) as f32;
            bias += q.a()[j] * offsets[j];
        }
        let t = (-bias) as f32;
        let (below, above) = match (mirror.codes_i8(), mirror.codes_i16()) {
            (Some(codes), _) => {
                classify_block_i8(&w, &codes[b * dim * stride..], stride, lanes, t, t)
            }
            (_, Some(codes)) => {
                classify_block_i16(&w, &codes[b * dim * stride..], stride, lanes, t, t)
            }
            _ => unreachable!("mirror always holds one code plane"),
        };
        settled += (below | above).count_ones() as usize;
    }
    settled
}

struct FilterPoint {
    n: usize,
    f64_ms: f64,
    i16_ms: f64,
    i8_ms: f64,
}

struct EndToEndPoint {
    n: usize,
    off_ms: f64,
    i16_ms: f64,
    i8_ms: f64,
    band_i16: f64,
    band_i8: f64,
    fallback: f64,
}

struct SlackPoint {
    slack: f64,
    band: f64,
    rejected: f64,
    accepted: f64,
}

struct TunerArm {
    shards: usize,
    policies: Vec<QuantPolicy>,
    off_ms: f64,
    tuned_ms: f64,
}

fn dataset(cfg: &Config, n: usize) -> (PlanarIndexSet<VecStore>, Vec<InequalityQuery>) {
    let table = SyntheticConfig::paper(SyntheticKind::Independent, n, DIM).generate();
    let set: PlanarIndexSet<VecStore> = PlanarIndexSet::build(
        table,
        eq18_domain(DIM, RQ),
        IndexConfig::with_budget(BUDGET).seed(cfg.seed),
    )
    .expect("quant experiment build");
    let mut generator =
        Eq18Generator::new(set.table(), RQ, cfg.seed ^ 0x0AB7).with_inequality_parameter(0.25);
    let queries = generator.queries(cfg.queries.max(10));
    (set, queries)
}

/// True re-verification band of a query run's aggregated quant counters:
/// lanes the error bound left uncertain, over all lanes. Fallback lanes
/// (short segments, unencodable blocks) are reported separately.
fn band_rate(stats: &QuantFilterStats) -> f64 {
    if stats.lanes == 0 {
        return 0.0;
    }
    stats.reverified as f64 / stats.lanes as f64
}

/// Fraction of lanes that bypassed the filter entirely (short candidate
/// runs and unencodable blocks go straight to the exact kernel).
fn fallback_rate(stats: &QuantFilterStats) -> f64 {
    if stats.lanes == 0 {
        return 0.0;
    }
    stats.fallback as f64 / stats.lanes as f64
}

/// Run every query against `set`, returning elapsed ms, the collected
/// sorted id lists, and the summed quant counters.
fn run_queries(
    set: &PlanarIndexSet<VecStore>,
    queries: &[InequalityQuery],
) -> (f64, Vec<Vec<u32>>, QuantFilterStats) {
    let mut stats = QuantFilterStats::default();
    let (answers, elapsed) = time_ms(|| {
        queries
            .iter()
            .map(|q| {
                let out = set.query(q).expect("quant experiment query");
                stats.merge(&out.stats.quant);
                out.sorted_ids()
            })
            .collect::<Vec<_>>()
    });
    (elapsed, answers, stats)
}

/// The `quant` experiment (see module docs).
pub fn quant(cfg: &Config) {
    let mut filter = Vec::new();
    let mut e2e = Vec::new();
    for raw_n in NS {
        let n = cfg.scaled(raw_n);
        let (set, queries) = dataset(cfg, n);
        filter.push(filter_arm(&set, &queries, n));
        e2e.push(end_to_end_arm(&set, &queries, n));
    }
    let slack = slack_arm(cfg);
    let tuner = tuner_arm(cfg);

    let mut t = Table::new(
        &format!(
            "Quantized filter pass: dim={DIM}, {} queries, kernels={}/{}",
            cfg.queries.max(10),
            quant_kernel_name(false),
            quant_kernel_name(true),
        ),
        &["n", "f64 ms", "i16 ms", "i8 ms", "i16 x", "i8 x"],
    );
    for p in &filter {
        t.row(vec![
            p.n.to_string(),
            ms(p.f64_ms),
            ms(p.i16_ms),
            ms(p.i8_ms),
            format!("{:.2}", p.f64_ms / p.i16_ms),
            format!("{:.2}", p.f64_ms / p.i8_ms),
        ]);
    }
    t.print();

    let mut t = Table::new(
        "End-to-end queries, tier off vs on (answers bit-identical)",
        &[
            "n", "off ms", "i16 ms", "i8 ms", "band i16", "band i8", "fallback",
        ],
    );
    for p in &e2e {
        t.row(vec![
            p.n.to_string(),
            ms(p.off_ms),
            ms(p.i16_ms),
            ms(p.i8_ms),
            format!("{:.4}", p.band_i16),
            format!("{:.4}", p.band_i8),
            format!("{:.3}", p.fallback),
        ]);
    }
    t.print();

    let mut t = Table::new(
        "Re-verification band vs slack (i8, rates over classified lanes)",
        &["slack", "band", "rejected", "accepted"],
    );
    for p in &slack {
        t.row(vec![
            format!("{:.0}", p.slack),
            format!("{:.4}", p.band),
            format!("{:.4}", p.rejected),
            format!("{:.4}", p.accepted),
        ]);
    }
    t.print();

    let mut t = Table::new(
        &format!(
            "Autotuner over {} shards: off {} → tuned {}",
            tuner.shards,
            ms(tuner.off_ms),
            ms(tuner.tuned_ms)
        ),
        &["shard", "tier", "slack"],
    );
    for (s, p) in tuner.policies.iter().enumerate() {
        t.row(vec![
            s.to_string(),
            format!("{:?}", p.tier),
            format!("{:.0}", p.slack),
        ]);
    }
    t.print();

    let json = render_json(&filter, &e2e, &slack, &tuner);
    let path = "BENCH_quant.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("[harness] wrote {path}"),
        Err(e) => eprintln!("[harness] could not write {path}: {e}"),
    }
}

fn filter_arm(
    set: &PlanarIndexSet<VecStore>,
    queries: &[InequalityQuery],
    n: usize,
) -> FilterPoint {
    let cols = set.table().columns();
    let stride = cols.stride();
    let i8_mirror = QuantizedColumns::encode(cols, QuantTier::I8, 1.0);
    let i16_mirror = QuantizedColumns::encode(cols, QuantTier::I16, 1.0);
    let (mut f64_ms, mut i16_ms, mut i8_ms) = (0.0, 0.0, 0.0);
    for _ in 0..REPS {
        let (counts, t) = time_ms(|| {
            queries
                .iter()
                .map(|q| f64_pass(set.table(), q))
                .sum::<usize>()
        });
        std::hint::black_box(counts);
        f64_ms += t;
        let (counts, t) = time_ms(|| {
            queries
                .iter()
                .map(|q| quant_pass(q, &i16_mirror, n, stride))
                .sum::<usize>()
        });
        std::hint::black_box(counts);
        i16_ms += t;
        let (counts, t) = time_ms(|| {
            queries
                .iter()
                .map(|q| quant_pass(q, &i8_mirror, n, stride))
                .sum::<usize>()
        });
        std::hint::black_box(counts);
        i8_ms += t;
    }
    FilterPoint {
        n,
        f64_ms: f64_ms / REPS as f64,
        i16_ms: i16_ms / REPS as f64,
        i8_ms: i8_ms / REPS as f64,
    }
}

fn end_to_end_arm(
    set: &PlanarIndexSet<VecStore>,
    queries: &[InequalityQuery],
    n: usize,
) -> EndToEndPoint {
    let mut i16_set = set.clone();
    i16_set.set_quant_policy(QuantPolicy::tier(QuantTier::I16));
    let mut i8_set = set.clone();
    i8_set.set_quant_policy(QuantPolicy::tier(QuantTier::I8));

    // Bit-identical answers are a precondition for timing, not a result.
    let (_, base, _) = run_queries(set, queries);
    let (_, a16, _) = run_queries(&i16_set, queries);
    let (_, a8, _) = run_queries(&i8_set, queries);
    assert_eq!(base, a16, "i16 tier changed an answer");
    assert_eq!(base, a8, "i8 tier changed an answer");

    let (mut off_ms, mut i16_ms, mut i8_ms) = (0.0, 0.0, 0.0);
    let mut s16 = QuantFilterStats::default();
    let mut s8 = QuantFilterStats::default();
    for _ in 0..REPS {
        let (t, _, _) = run_queries(set, queries);
        off_ms += t;
        let (t, _, s) = run_queries(&i16_set, queries);
        i16_ms += t;
        s16.merge(&s);
        let (t, _, s) = run_queries(&i8_set, queries);
        i8_ms += t;
        s8.merge(&s);
    }
    EndToEndPoint {
        n,
        off_ms: off_ms / REPS as f64,
        i16_ms: i16_ms / REPS as f64,
        i8_ms: i8_ms / REPS as f64,
        band_i16: band_rate(&s16),
        band_i8: band_rate(&s8),
        fallback: fallback_rate(&s8),
    }
}

fn slack_arm(cfg: &Config) -> Vec<SlackPoint> {
    let n = cfg.scaled(NS[1]);
    let (set, queries) = dataset(cfg, n);
    SLACKS
        .iter()
        .map(|&slack| {
            let mut s = set.clone();
            // i8: the coarse codes make the uncertainty band visible at
            // this scale (the i16 band is ~256× narrower).
            s.set_quant_policy(QuantPolicy {
                tier: QuantTier::I8,
                slack,
            });
            let (_, _, stats) = run_queries(&s, &queries);
            // Rates over *classified* lanes: fallback lanes (short runs)
            // never see the error bound, so they would only dilute the
            // slack effect this arm isolates.
            let classified = (stats.lanes - stats.fallback).max(1) as f64;
            SlackPoint {
                slack,
                band: stats.reverified as f64 / classified,
                rejected: stats.rejected as f64 / classified,
                accepted: stats.accepted as f64 / classified,
            }
        })
        .collect()
}

fn tuner_arm(cfg: &Config) -> TunerArm {
    let shards = 4;
    let n = cfg.scaled(NS[1]);
    let table = SyntheticConfig::paper(SyntheticKind::Independent, n, DIM).generate();
    let mut set: ShardedIndexSet<VecStore> = ShardedIndexSet::build(
        table,
        eq18_domain(DIM, RQ),
        IndexConfig::with_budget(BUDGET).seed(cfg.seed),
        ShardConfig::round_robin(shards),
    )
    .expect("quant tuner build");
    let mut generator = Eq18Generator::new(set.shard(0).unwrap().table(), RQ, cfg.seed ^ 0x70E)
        .with_inequality_parameter(0.25);
    let queries: Vec<InequalityQuery> = generator.queries(cfg.queries.max(10));

    let run = |set: &ShardedIndexSet<VecStore>| {
        let (answers, elapsed) = time_ms(|| {
            queries
                .iter()
                .map(|q| set.query(q).expect("tuner query").sorted_ids())
                .collect::<Vec<_>>()
        });
        (elapsed, answers)
    };

    let (_, baseline) = run(&set);
    let off_set = set.clone();
    // Two observe→retune rounds: the first earns the I16 trial, the second
    // judges it from real counters (promote / widen / demote per shard).
    let tuner_cfg = QuantAutotuneConfig::default();
    set.retune_quantization(&tuner_cfg);
    run(&set);
    let policies = set.retune_quantization(&tuner_cfg);
    let (_, tuned_answers) = run(&set);
    assert_eq!(baseline, tuned_answers, "autotuner changed an answer");
    // Interleave the timed runs so clock/cache drift hits both arms
    // equally — separate phases would let a frequency wobble masquerade
    // as a tuner (anti-)win.
    let (mut off_ms, mut tuned_ms) = (0.0, 0.0);
    for _ in 0..2 * REPS {
        off_ms += run(&off_set).0;
        tuned_ms += run(&set).0;
    }
    let (off_ms, tuned_ms) = (off_ms / (2 * REPS) as f64, tuned_ms / (2 * REPS) as f64);
    // The tuner must never make the benched workload slower. Guarded to
    // meaningful sizes — at the CI-smoke floor (100 rows) a single timing
    // blip exceeds the whole measurement.
    if n >= 10_000 {
        assert!(
            tuned_ms <= off_ms * 1.15,
            "autotuner regressed latency: off {off_ms:.2} ms -> tuned {tuned_ms:.2} ms"
        );
    }
    TunerArm {
        shards,
        policies,
        off_ms,
        tuned_ms,
    }
}

/// Hand-rolled JSON (the workspace has no serde).
fn render_json(
    filter: &[FilterPoint],
    e2e: &[EndToEndPoint],
    slack: &[SlackPoint],
    tuner: &TunerArm,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"quant\",\n");
    out.push_str(&format!("  \"dim\": {DIM},\n"));
    out.push_str(&format!("  \"budget\": {BUDGET},\n"));
    out.push_str(&format!(
        "  \"kernel_i8\": \"{}\",\n  \"kernel_i16\": \"{}\",\n",
        quant_kernel_name(false),
        quant_kernel_name(true)
    ));
    out.push_str("  \"filter_pass\": [\n");
    for (i, p) in filter.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"n\": {}, \"f64_ms\": {:.3}, \"i16_ms\": {:.3}, \"i8_ms\": {:.3}, \
             \"speedup_i16\": {:.3}, \"speedup_i8\": {:.3}}}{}\n",
            p.n,
            p.f64_ms,
            p.i16_ms,
            p.i8_ms,
            p.f64_ms / p.i16_ms,
            p.f64_ms / p.i8_ms,
            if i + 1 == filter.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"end_to_end\": [\n");
    for (i, p) in e2e.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"n\": {}, \"off_ms\": {:.3}, \"i16_ms\": {:.3}, \"i8_ms\": {:.3}, \
             \"speedup_i16\": {:.3}, \"speedup_i8\": {:.3}, \"band_i16\": {:.4}, \
             \"band_i8\": {:.4}, \"fallback\": {:.4}, \"answers_identical\": true}}{}\n",
            p.n,
            p.off_ms,
            p.i16_ms,
            p.i8_ms,
            p.off_ms / p.i16_ms,
            p.off_ms / p.i8_ms,
            p.band_i16,
            p.band_i8,
            p.fallback,
            if i + 1 == e2e.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"band_vs_slack\": [\n");
    for (i, p) in slack.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"slack\": {:.1}, \"band\": {:.4}, \"rejected\": {:.4}, \
             \"accepted\": {:.4}}}{}\n",
            p.slack,
            p.band,
            p.rejected,
            p.accepted,
            if i + 1 == slack.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"autotuner\": {\n");
    out.push_str(&format!("    \"shards\": {},\n", tuner.shards));
    out.push_str("    \"per_shard\": [\n");
    for (i, p) in tuner.policies.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"tier\": \"{:?}\", \"slack\": {:.1}}}{}\n",
            p.tier,
            p.slack,
            if i + 1 == tuner.policies.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("    ],\n");
    out.push_str(&format!("    \"off_ms\": {:.3},\n", tuner.off_ms));
    out.push_str(&format!("    \"tuned_ms\": {:.3},\n", tuner.tuned_ms));
    out.push_str("    \"answers_identical\": true\n");
    out.push_str("  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> Config {
        Config {
            scale: 0.0, // scaled() floors at 100 points
            queries: 4,
            ..Config::default()
        }
    }

    #[test]
    fn end_to_end_answers_are_identical_at_tiny_scale() {
        let cfg = tiny_cfg();
        let n = cfg.scaled(NS[0]);
        let (set, queries) = dataset(&cfg, n);
        // The identity asserts inside the arm are the test.
        let p = end_to_end_arm(&set, &queries, n);
        assert_eq!(p.n, n);
    }

    #[test]
    fn filter_arm_runs_and_reports_positive_times() {
        let cfg = tiny_cfg();
        let n = cfg.scaled(NS[0]);
        let (set, queries) = dataset(&cfg, n);
        let p = filter_arm(&set, &queries, n);
        assert!(p.f64_ms >= 0.0 && p.i16_ms >= 0.0 && p.i8_ms >= 0.0);
    }

    #[test]
    fn json_has_all_arms() {
        let tuner = TunerArm {
            shards: 2,
            policies: vec![QuantPolicy::tier(QuantTier::I16); 2],
            off_ms: 1.0,
            tuned_ms: 0.5,
        };
        let json = render_json(
            &[FilterPoint {
                n: 100,
                f64_ms: 1.0,
                i16_ms: 0.5,
                i8_ms: 0.25,
            }],
            &[EndToEndPoint {
                n: 100,
                off_ms: 1.0,
                i16_ms: 0.8,
                i8_ms: 0.7,
                band_i16: 0.01,
                band_i8: 0.1,
                fallback: 0.2,
            }],
            &[SlackPoint {
                slack: 1.0,
                band: 0.01,
                rejected: 0.9,
                accepted: 0.09,
            }],
            &tuner,
        );
        assert!(json.contains("\"filter_pass\""));
        assert!(json.contains("\"end_to_end\""));
        assert!(json.contains("\"band_vs_slack\""));
        assert!(json.contains("\"autotuner\""));
        assert!(json.contains("\"answers_identical\": true"));
    }
}
