//! Top-k nearest-neighbor experiments: Table 3 and the §7.5.2
//! active-learning study.

use crate::report::{ms, Table};
use crate::{time_ms, Config};
use planar_core::{IndexConfig, PlanarIndexSet, SeqScan, TopKQuery, VecStore};
use planar_datagen::queries::{eq18_domain, Eq18Generator};
use planar_datagen::synthetic::{SyntheticConfig, SyntheticKind};
use planar_datagen::SYNTHETIC_N;
use planar_learning::hashing::{recall, HyperplaneHash};
use planar_learning::{ActiveLearner, LinearClassifier};

/// Table 3: top-k nearest-neighbor time on Indp (dim 6, RQ 4, #index 100).
pub fn table3(cfg: &Config) {
    let n = cfg.scaled(SYNTHETIC_N);
    let table = SyntheticConfig::paper(SyntheticKind::Independent, n, 6).generate();
    let scan_table = table.clone();
    let set: PlanarIndexSet<VecStore> = PlanarIndexSet::build(
        table,
        eq18_domain(6, 4),
        IndexConfig::with_budget(100).seed(cfg.seed),
    )
    .expect("build");
    let scan = SeqScan::new(&scan_table);
    let mut generator = Eq18Generator::new(set.table(), 4, cfg.seed ^ 0x73);
    let queries = generator.queries(cfg.queries);

    let mut t = Table::new(
        &format!("Table 3: top-k NN on indp, n={n}, dim=6, RQ=4, #index=100"),
        &["k", "checked_%", "planar_ms", "baseline_ms"],
    );
    // The paper's k values, scaled with the dataset.
    for paper_k in [50usize, 1_000, 10_000] {
        let k = ((paper_k as f64 * cfg.scale) as usize).max(1);
        let mut planar_ms = 0.0;
        let mut baseline_ms = 0.0;
        let mut checked = 0.0;
        for q in &queries {
            let tk = TopKQuery::new(q.clone(), k).expect("k > 0");
            let (out, tq) = time_ms(|| set.top_k(&tk).expect("top_k"));
            planar_ms += tq;
            checked += out.stats.checked_percentage();
            let (base, tb) = time_ms(|| scan.top_k(&tk).expect("scan top_k"));
            baseline_ms += tb;
            assert_eq!(out.neighbors, base, "exactness for k={k}");
        }
        let m = queries.len() as f64;
        t.row(vec![
            k.to_string(),
            format!("{:.2}", checked / m),
            ms(planar_ms / m),
            ms(baseline_ms / m),
        ]);
    }
    t.print();
}

/// §7.5.2: pool-based active learning with exact Planar retrieval, plus the
/// recall of a hashing-based approximate retriever (the paper's
/// exact-vs-approximate contrast with [14, 18]).
pub fn active_learning(cfg: &Config) {
    let n = cfg.scaled(SYNTHETIC_N / 10);
    let pool = SyntheticConfig::paper(SyntheticKind::Independent, n, 4).generate();

    // --- Active-learning accuracy curve -------------------------------
    let domain = planar_core::ParameterDomain::uniform_continuous(4, 0.2, 5.0).expect("domain");
    let mut learner = ActiveLearner::new(pool.clone(), domain, 20, 150.0, |x| {
        2.0 * x[0] + x[1] + 3.0 * x[2] + 0.5 * x[3] >= 320.0
    })
    .expect("learner");
    let mut t = Table::new(
        &format!("Active learning on indp n={n}: accuracy vs labels (exact Planar retrieval)"),
        &["round", "labels", "accuracy_%", "checked_%_of_pool"],
    );
    let reports = learner.run(30, 5).expect("run");
    for r in reports
        .iter()
        .step_by(5)
        .chain(reports.last().into_iter().filter(|r| r.round % 5 != 0))
    {
        t.row(vec![
            r.round.to_string(),
            r.labels_used.to_string(),
            format!("{:.1}", 100.0 * r.accuracy),
            format!("{:.1}", r.checked_percentage),
        ]);
    }
    t.print();

    // --- Exact vs approximate retrieval -------------------------------
    let mut t = Table::new(
        "Hyperplane top-k retrieval: exact Planar vs approximate hashing (recall@k, k=50)",
        &["hash_tables", "recall_%", "planar is exact"],
    );
    let k = 50usize.min(n / 10).max(1);
    let classifier = LinearClassifier::new(4, 180.0, 1.0).expect("classifier");
    let q = planar_core::InequalityQuery::leq(classifier.weights().to_vec(), classifier.bias())
        .expect("query");
    let exact = SeqScan::new(&pool)
        .top_k(&TopKQuery::new(q.clone(), k).expect("k"))
        .expect("exact");
    for tables in [2usize, 8, 32, 128] {
        let hash = HyperplaneHash::build(&pool, tables, cfg.seed);
        let approx = hash.top_k(&pool, q.a(), q.b(), k, |row| q.satisfies(row));
        t.row(vec![
            tables.to_string(),
            format!("{:.1}", 100.0 * recall(&exact, &approx)),
            "100.0".to_string(),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Config {
        Config {
            scale: 0.001,
            queries: 2,
            seed: 11,
            threads: 1,
        }
    }

    #[test]
    fn table3_smoke() {
        table3(&tiny());
    }

    #[test]
    fn active_learning_smoke() {
        active_learning(&tiny());
    }
}
