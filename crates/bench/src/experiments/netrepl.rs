//! Networked replication experiment: what does the TCP ship transport
//! cost over the in-process spool, and what does a quorum buy?
//!
//! Three questions the networked-replication work raises, answered with
//! numbers:
//!
//! 1. **TCP catch-up vs spool catch-up** — the same backlog is drained
//!    once over a `DirTransport` spool (bytes on a filesystem, no
//!    sockets) and once over a real `TcpTransport` dialing the serve
//!    listener's sniffed `PLNRSHP1` surface. The gap is the price of
//!    the socket hop, framing, and relay threads.
//! 2. **Quorum vs async acknowledgement latency** — per-write latency
//!    of `AckPolicy::Async` (local group-commit ack) against
//!    `write_quorum` under `AckPolicy::Quorum(1)` with a live TCP
//!    replica confirming each LSN. The delta is the round trip a
//!    synchronously-replicated write waits out.
//! 3. **Reconnect-storm recovery** — a `ChaosProxy` between replica and
//!    primary kills every live connection repeatedly; each storm's
//!    heal time (redial, Hello, resume, catch up) is measured. The
//!    stream must resume by watermark, never re-seed.
//!
//! Every phase asserts follower answers bit-identical to the primary
//! before any timing is reported. Results are printed as tables and
//! written to `BENCH_netrepl.json`.

use crate::report::{ms, Table};
use crate::{time_ms, Config};
use planar_core::fault::{ChaosProxy, TempDir};
use planar_core::{
    AckPolicy, ConcurrencyConfig, ConcurrentDurableShardedIndexSet, DirTransport, FailoverConfig,
    FsyncPolicy, InequalityQuery, Mutation, Primary, ReadConsistency, Replica, ShardConfig,
    ShardedIndexSet, TcpLinkOptions, TcpTransport, VecStore, WalOptions,
};
use planar_datagen::queries::{eq18_domain, Eq18Generator};
use planar_datagen::synthetic::{SyntheticConfig, SyntheticKind};
use planar_datagen::SYNTHETIC_N;
use planar_serve::{ServeConfig, Server, ServerHandle};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Dataset dimensionality.
const DIM: usize = 8;
/// RQ of the Eq. 18 query template.
const RQ: usize = 4;
/// Index budget.
const BUDGET: usize = 8;
/// Shards (and WAL segment streams) in the replication group.
const SHARDS: usize = 3;
/// Writes measured per acknowledgement policy.
const ACK_WRITES: usize = 32;
/// Connection-kill storms in the recovery phase.
const STORMS: usize = 5;
/// Writes landed during each storm.
const STORM_BATCH: usize = 8;

/// Fast reconnects so the storm phase measures healing, not backoff.
fn link_opts() -> TcpLinkOptions {
    TcpLinkOptions {
        backoff_base_ms: 2,
        backoff_cap_ms: 50,
        ..TcpLinkOptions::default()
    }
}

/// Attach any ship connections the listener has sniffed since the last
/// call (reconnects surface as fresh endpoints; dead links are reaped
/// by `pump`).
fn adopt(server: &ServerHandle, primary: &mut Primary<VecStore>) {
    while let Some(ep) = server.accept_replica(std::time::Duration::from_millis(1)) {
        primary.add_replica_pending(Box::new(ep.clone()), Box::new(ep));
    }
}

/// Pump/poll (adopting reconnections when a listener is present) until
/// the replica has applied everything appended. Returns turns taken.
fn drain(
    server: Option<&ServerHandle>,
    primary: &mut Primary<VecStore>,
    replica: &mut Replica<VecStore>,
    now: &mut u64,
) -> usize {
    primary.store().sync().expect("sync");
    let appended = primary.store().wal_health().appended_lsn;
    let mut turns = 0;
    while !(replica.is_seeded() && replica.applied_lsn() >= appended) {
        *now += 10;
        turns += 1;
        if let Some(server) = server {
            adopt(server, primary);
        }
        primary.pump(*now).expect("pump");
        replica.poll(*now).expect("poll");
        assert!(turns < 500_000, "replication failed to converge");
    }
    *now += 10;
    primary.pump(*now).expect("pump");
    turns
}

/// Assert the follower answers bit-identically to the primary.
fn check_identical(
    primary: &Primary<VecStore>,
    replica: &Replica<VecStore>,
    queries: &[InequalityQuery],
) {
    let appended = primary.store().wal_health().appended_lsn;
    let read = replica
        .follower_read(ReadConsistency::AtLeast(appended))
        .expect("caught-up follower read");
    let psnap = primary.store().snapshot();
    for q in queries {
        assert_eq!(
            read.snapshot.query(q).expect("replica query").sorted_ids(),
            psnap.query(q).expect("primary query").sorted_ids(),
            "follower read diverged from primary at lsn {appended}"
        );
    }
}

struct CatchUp {
    seed_ms: f64,
    frames_ms: f64,
    frames_applied: u64,
    records_per_sec: f64,
}

/// Seed + frame catch-up time for one already-wired replica. The
/// primary starts with a shipped-but-unreplicated backlog.
fn catch_up(
    server: Option<&ServerHandle>,
    primary: &mut Primary<VecStore>,
    replica: &mut Replica<VecStore>,
    queries: &[InequalityQuery],
) -> CatchUp {
    let mut now = 0u64;
    let (_, seed_ms) = time_ms(|| {
        let mut turns = 0usize;
        while !replica.is_seeded() {
            now += 10;
            turns += 1;
            if let Some(server) = server {
                adopt(server, primary);
            }
            primary.pump(now).expect("pump");
            replica.poll(now).expect("poll");
            assert!(turns < 500_000, "seeding failed to converge");
        }
    });
    let applied_at_seed = replica.applied_lsn();
    let (_, frames_ms) = time_ms(|| drain(server, primary, replica, &mut now));
    let frames_applied = replica.applied_lsn() - applied_at_seed;
    check_identical(primary, replica, queries);
    CatchUp {
        seed_ms,
        frames_ms,
        frames_applied,
        records_per_sec: frames_applied as f64 / (frames_ms.max(0.001) / 1e3),
    }
}

/// The `netrepl` experiment (see module docs).
pub fn netrepl(cfg: &Config) {
    let n = cfg.scaled(SYNTHETIC_N / 20).max(200);
    let backlog = cfg.scaled(1024).max(64);
    let table = SyntheticConfig::paper(SyntheticKind::Independent, n + backlog, DIM).generate();
    let base = {
        let head: Vec<Vec<f64>> = (0..n).map(|i| table.row(i as u32).to_vec()).collect();
        planar_core::FeatureTable::from_rows(DIM, head).expect("base table")
    };
    let build = || {
        ShardedIndexSet::<VecStore>::build(
            base.clone(),
            eq18_domain(DIM, RQ),
            planar_core::IndexConfig::with_budget(BUDGET).seed(cfg.seed),
            ShardConfig::round_robin(SHARDS),
        )
        .expect("netrepl experiment build")
    };
    let mut generator =
        Eq18Generator::new(&base, RQ, cfg.seed ^ 0x4e7e).with_inequality_parameter(0.2);
    let queries: Vec<InequalityQuery> = generator.queries(cfg.queries.max(16));
    let opts = WalOptions::default().fsync(FsyncPolicy::EveryN(64));

    let fresh_primary = |dir: &std::path::Path| {
        let store = Arc::new(
            ConcurrentDurableShardedIndexSet::create(
                dir.join("idx"),
                build(),
                opts,
                ConcurrencyConfig::default(),
            )
            .expect("create durable"),
        );
        for i in n..n + backlog {
            store.insert_point(table.row(i as u32)).expect("insert");
        }
        store.sync().expect("sync");
        store
    };

    // 1. Catch-up over the DirTransport spool (no sockets).
    let dir_tmp = TempDir::new("bench-netrepl-dir").expect("temp dir");
    let store = fresh_primary(dir_tmp.path());
    let mut primary = Primary::from_shared(Arc::clone(&store), FailoverConfig::default());
    let down_spool = dir_tmp.path().join("spool-down");
    let up_spool = dir_tmp.path().join("spool-up");
    primary.add_replica(
        Box::new(DirTransport::new(&down_spool).expect("spool")),
        Box::new(DirTransport::new(&up_spool).expect("spool")),
    );
    let mut replica = Replica::<VecStore>::new(
        dir_tmp.path().join("replica"),
        0,
        Box::new(DirTransport::new(&down_spool).expect("spool")),
        Box::new(DirTransport::new(&up_spool).expect("spool")),
        opts,
        FailoverConfig::default(),
    );
    let dir_result = catch_up(None, &mut primary, &mut replica, &queries);
    drop(primary);
    drop(replica);

    // 2. Catch-up over TCP through the serve listener's protocol sniff.
    let tcp_tmp = TempDir::new("bench-netrepl-tcp").expect("temp dir");
    let store = fresh_primary(tcp_tmp.path());
    let server = Server::start(Arc::clone(&store), ServeConfig::default()).expect("server");
    let mut primary = Primary::from_shared(Arc::clone(&store), FailoverConfig::default());
    let link = TcpTransport::new(server.addr(), link_opts());
    let mut replica = Replica::<VecStore>::new(
        tcp_tmp.path().join("replica"),
        0,
        Box::new(link.clone()),
        Box::new(link),
        opts,
        FailoverConfig::default(),
    );
    let tcp_result = catch_up(Some(&server), &mut primary, &mut replica, &queries);
    drop(replica);

    let mut t = Table::new(
        &format!("Catch-up: {backlog}-record backlog, n={n}, {SHARDS} shards"),
        &["transport", "seed", "frames", "rate"],
    );
    for (name, r) in [
        ("dir spool", &dir_result),
        ("tcp (sniffed port)", &tcp_result),
    ] {
        t.row(vec![
            name.into(),
            ms(r.seed_ms),
            format!("{} ({} records)", ms(r.frames_ms), r.frames_applied),
            format!("{:.0} rec/s", r.records_per_sec),
        ]);
    }
    t.print();

    // 3. Quorum vs async acknowledgement latency over the live TCP
    // link, with a fresh replica for the latency phase.
    let link = TcpTransport::new(server.addr(), link_opts());
    let mut replica = Replica::<VecStore>::new(
        tcp_tmp.path().join("replica-ack"),
        1,
        Box::new(link.clone()),
        Box::new(link),
        opts,
        FailoverConfig::default(),
    );
    let mut now = 1_000_000u64;
    drain(Some(&server), &mut primary, &mut replica, &mut now);
    check_identical(&primary, &replica, &queries);

    // Async: the local group-commit acknowledgement (insert + sync).
    let mut async_total = 0.0f64;
    let mut async_max = 0.0f64;
    for i in 0..ACK_WRITES {
        let row = table.row((i % (n + backlog)) as u32).to_vec();
        let (_, w_ms) = time_ms(|| {
            primary.store().insert_point(&row).expect("insert");
            primary.store().sync().expect("sync");
        });
        async_total += w_ms;
        async_max = async_max.max(w_ms);
    }
    drain(Some(&server), &mut primary, &mut replica, &mut now);

    // Quorum(1): each write waits for the TCP replica's confirmation.
    // A sidecar thread keeps the replica polling while `write_quorum`
    // pumps the primary inline.
    primary.set_ack_policy(AckPolicy::Quorum(1));
    let stop = Arc::new(AtomicBool::new(false));
    let sidecar = {
        let stop = Arc::clone(&stop);
        let mut replica = replica;
        let mut snow = now;
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                snow += 10;
                let _ = replica.poll(snow);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            replica
        })
    };
    let mut quorum_total = 0.0f64;
    let mut quorum_max = 0.0f64;
    for i in 0..ACK_WRITES {
        let row = table.row((i % (n + backlog)) as u32).to_vec();
        now += 10;
        let (ack, w_ms) = time_ms(|| primary.write_quorum(&Mutation::Insert { row }, now));
        ack.expect("quorum write");
        quorum_total += w_ms;
        quorum_max = quorum_max.max(w_ms);
    }
    stop.store(true, Ordering::Release);
    let mut replica = sidecar.join().expect("sidecar");
    primary.set_ack_policy(AckPolicy::Async);
    drain(Some(&server), &mut primary, &mut replica, &mut now);
    check_identical(&primary, &replica, &queries);
    let async_mean = async_total / ACK_WRITES as f64;
    let quorum_mean = quorum_total / ACK_WRITES as f64;

    let mut t = Table::new(
        &format!("Write acknowledgement latency over TCP ({ACK_WRITES} writes)"),
        &["policy", "mean", "max"],
    );
    t.row(vec![
        "async (local ack)".into(),
        ms(async_mean),
        ms(async_max),
    ]);
    t.row(vec![
        "quorum(1) confirmed".into(),
        ms(quorum_mean),
        ms(quorum_max),
    ]);
    t.print();
    server.shutdown();
    drop(primary);

    // 4. Reconnect-storm recovery through a chaos proxy.
    let storm_tmp = TempDir::new("bench-netrepl-storm").expect("temp dir");
    let store = fresh_primary(storm_tmp.path());
    let server = Server::start(Arc::clone(&store), ServeConfig::default()).expect("server");
    let proxy = ChaosProxy::start(server.addr()).expect("chaos proxy");
    let ctl = proxy.ctl();
    let mut primary = Primary::from_shared(Arc::clone(&store), FailoverConfig::default());
    let link = TcpTransport::new(proxy.addr(), link_opts());
    let mut replica = Replica::<VecStore>::new(
        storm_tmp.path().join("replica"),
        0,
        Box::new(link.clone()),
        Box::new(link),
        opts,
        FailoverConfig::default(),
    );
    let mut now = 0u64;
    drain(Some(&server), &mut primary, &mut replica, &mut now);
    let seeds_before = replica.stats().snapshots;
    let mut heal_ms = Vec::with_capacity(STORMS);
    for storm in 0..STORMS {
        ctl.reset_all();
        for i in 0..STORM_BATCH {
            let row = table.row(((storm * STORM_BATCH + i) % (n + backlog)) as u32);
            store.insert_point(row).expect("storm insert");
        }
        let (_, h_ms) = time_ms(|| drain(Some(&server), &mut primary, &mut replica, &mut now));
        heal_ms.push(h_ms);
    }
    check_identical(&primary, &replica, &queries);
    assert_eq!(
        replica.stats().snapshots,
        seeds_before,
        "reconnects must resume by watermark, never re-seed"
    );
    let link_drops = primary.stats().link_drops;
    let heal_mean = heal_ms.iter().sum::<f64>() / heal_ms.len().max(1) as f64;
    let heal_max = heal_ms.iter().cloned().fold(0.0f64, f64::max);

    let mut t = Table::new(
        &format!("Reconnect storms: {STORMS} full connection kills, {STORM_BATCH} writes each"),
        &["metric", "value"],
    );
    t.row(vec!["mean heal time".into(), ms(heal_mean)]);
    t.row(vec!["max heal time".into(), ms(heal_max)]);
    t.row(vec![
        "links dropped (reaped)".into(),
        link_drops.to_string(),
    ]);
    t.row(vec![
        "snapshots re-installed".into(),
        (replica.stats().snapshots - seeds_before).to_string(),
    ]);
    t.print();
    server.shutdown();

    let json = render_json(
        cfg,
        n,
        backlog,
        &dir_result,
        &tcp_result,
        async_mean,
        async_max,
        quorum_mean,
        quorum_max,
        &heal_ms,
        heal_mean,
        heal_max,
        link_drops,
    );
    let path = "BENCH_netrepl.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("[harness] wrote {path}"),
        Err(e) => eprintln!("[harness] could not write {path}: {e}"),
    }
}

/// Hand-rolled JSON (the workspace has no serde).
#[allow(clippy::too_many_arguments)]
fn render_json(
    cfg: &Config,
    n: usize,
    backlog: usize,
    dir: &CatchUp,
    tcp: &CatchUp,
    async_mean: f64,
    async_max: f64,
    quorum_mean: f64,
    quorum_max: f64,
    heal_ms: &[f64],
    heal_mean: f64,
    heal_max: f64,
    link_drops: u64,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"netrepl\",\n");
    out.push_str(&format!("  \"n\": {n},\n"));
    out.push_str(&format!("  \"dim\": {DIM},\n"));
    out.push_str(&format!("  \"budget\": {BUDGET},\n"));
    out.push_str(&format!("  \"shards\": {SHARDS},\n"));
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str("  \"catch_up\": {\n");
    out.push_str(&format!("    \"backlog_records\": {backlog},\n"));
    for (key, r, comma) in [("dir_spool", dir, true), ("tcp", tcp, false)] {
        out.push_str(&format!("    \"{key}\": {{\n"));
        out.push_str(&format!("      \"seed_ms\": {:.3},\n", r.seed_ms));
        out.push_str(&format!("      \"frames_ms\": {:.3},\n", r.frames_ms));
        out.push_str(&format!(
            "      \"frames_applied\": {},\n",
            r.frames_applied
        ));
        out.push_str(&format!(
            "      \"records_per_sec\": {:.0}\n",
            r.records_per_sec
        ));
        out.push_str(if comma { "    },\n" } else { "    }\n" });
    }
    out.push_str("  },\n");
    out.push_str("  \"ack_latency\": {\n");
    out.push_str(&format!("    \"writes\": {ACK_WRITES},\n"));
    out.push_str(&format!("    \"async_mean_ms\": {async_mean:.3},\n"));
    out.push_str(&format!("    \"async_max_ms\": {async_max:.3},\n"));
    out.push_str(&format!("    \"quorum_mean_ms\": {quorum_mean:.3},\n"));
    out.push_str(&format!("    \"quorum_max_ms\": {quorum_max:.3}\n"));
    out.push_str("  },\n");
    out.push_str("  \"reconnect_storm\": {\n");
    out.push_str(&format!("    \"storms\": {STORMS},\n"));
    out.push_str("    \"heal_ms\": [");
    for (i, h) in heal_ms.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{h:.3}"));
    }
    out.push_str("],\n");
    out.push_str(&format!("    \"mean_heal_ms\": {heal_mean:.3},\n"));
    out.push_str(&format!("    \"max_heal_ms\": {heal_max:.3},\n"));
    out.push_str(&format!("    \"link_drops\": {link_drops},\n"));
    out.push_str("    \"reseeds\": 0\n");
    out.push_str("  },\n");
    out.push_str("  \"follower_reads_identical\": true\n");
    out.push_str("}\n");
    out
}
