//! Concurrency experiment: epoch snapshots + group commit under load.
//!
//! Three questions the concurrent execution layer raises, answered with
//! numbers:
//!
//! 1. **Group-commit amortization** — per-acked-mutation cost of
//!    `FsyncPolicy::Always` through the group-commit queue as writer
//!    concurrency grows, against the single-writer `Always` and
//!    `EveryN(64)` baselines. The headline claim: concurrent `Always`
//!    lands within 2x of `every_64` without weakening the ack contract.
//! 2. **Readers racing a writer** — snapshot reads/sec and p99 latency
//!    with the writer idle vs streaming mutations under each fsync
//!    policy, plus the acked-mutations/sec the writer sustains.
//! 3. **Bit-identical batches** — `query_batch` against a pinned snapshot
//!    must equal single-threaded execution exactly.
//!
//! Results are printed as tables and written to `BENCH_concurrent.json`.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

use crate::report::{ms, Table};
use crate::{time_ms, Config};
use planar_core::fault::TempDir;
use planar_core::{
    ConcurrencyConfig, ConcurrentDurablePlanarIndexSet, DurablePlanarIndexSet, ExecutionConfig,
    FsyncPolicy, IndexConfig, InequalityQuery, PlanarIndexSet, VecStore, WalOptions,
};
use planar_datagen::queries::{eq18_domain, Eq18Generator};
use planar_datagen::synthetic::{SyntheticConfig, SyntheticKind};
use planar_datagen::SYNTHETIC_N;

/// Dataset dimensionality.
const DIM: usize = 8;
/// RQ of the Eq. 18 query template.
const RQ: usize = 4;
/// Index budget.
const BUDGET: usize = 8;
/// Acked mutations per group-commit measurement (matches the `wal`
/// experiment so the curves are comparable).
const MUTATIONS: usize = 2048;
/// Writer-thread counts for the group-commit sweep.
const WRITER_SWEEP: [usize; 3] = [1, 4, 16];
/// Wall-clock window for each reader-throughput measurement.
const READ_WINDOW_MS: u64 = 400;
/// Reader threads for the racing measurement.
const READERS: usize = 2;
/// Acceptance: concurrent `Always` within this factor of `every_64`.
const GC_TARGET_RATIO: f64 = 2.0;
/// Acceptance: racing readers keep this share of idle throughput.
const READ_TARGET_RATIO: f64 = 0.8;
/// Offered load of the paced writer in the reader-interference check
/// (mutations/sec). Saturating rows are also reported, but on a
/// single-core host an unthrottled writer trivially steals reader CPU
/// share no matter how the index is locked, so the acceptance check runs
/// against a fixed arrival rate sized to keep the writer's CPU work
/// (dominated by copy-on-publish) under ~10% of one core.
const PACED_WRITER_PER_SEC: u64 = 300;

fn policy_name(p: FsyncPolicy) -> &'static str {
    match p {
        FsyncPolicy::Always => "always",
        FsyncPolicy::EveryN(8) => "every_8",
        FsyncPolicy::EveryN(_) => "every_64",
        FsyncPolicy::OnCheckpoint => "on_checkpoint",
    }
}

/// q-th percentile (0..=1) of an unsorted latency sample, in microseconds.
fn percentile_us(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let idx = ((samples.len() - 1) as f64 * q).round() as usize;
    samples[idx]
}

struct GcRow {
    threads: usize,
    total_ms: f64,
    fsyncs: u64,
    max_group: u64,
}

struct RaceRow {
    policy: &'static str,
    reads_per_sec: f64,
    p99_us: f64,
    acked_per_sec: f64,
    ratio_vs_idle: f64,
}

/// The `concurrent` experiment (see module docs).
pub fn concurrent(cfg: &Config) {
    let n = cfg.scaled(SYNTHETIC_N / 10);
    let spare = MUTATIONS * 4;
    let table = SyntheticConfig::paper(SyntheticKind::Independent, n + spare, DIM).generate();
    let rows: Vec<Vec<f64>> = (n..n + spare)
        .map(|i| table.row(i as u32).to_vec())
        .collect();
    let base = {
        let head: Vec<Vec<f64>> = (0..n).map(|i| table.row(i as u32).to_vec()).collect();
        planar_core::FeatureTable::from_rows(DIM, head).expect("base table")
    };
    let build = || {
        PlanarIndexSet::<VecStore>::build(
            base.clone(),
            eq18_domain(DIM, RQ),
            IndexConfig::with_budget(BUDGET).seed(cfg.seed),
        )
        .expect("concurrent experiment build")
    };

    // ── 1. Group-commit amortization ────────────────────────────────────
    // Single-writer baselines first: the curve we are trying to collapse.
    let mut single_ms = Vec::new();
    for p in [FsyncPolicy::Always, FsyncPolicy::EveryN(64)] {
        let dir = TempDir::new("bench-conc-single").expect("temp dir");
        let mut durable = DurablePlanarIndexSet::create(
            dir.path().join("idx"),
            build(),
            WalOptions::default().fsync(p),
        )
        .expect("create durable");
        let (_, t) = time_ms(|| {
            for row in rows.iter().take(MUTATIONS) {
                durable.insert_point(row).expect("durable insert");
            }
        });
        single_ms.push(t);
    }
    let (single_always_ms, single_every64_ms) = (single_ms[0], single_ms[1]);

    // Matched baseline: the concurrent wrapper under `every_64`. Snapshot
    // publication clones the staged set each epoch, a cost both sides of
    // the comparison pay identically — against the *single-writer*
    // `every_64` number the clone would masquerade as fsync tax.
    let conc_every64_ms = {
        let dir = TempDir::new("bench-conc-every64").expect("temp dir");
        let conc = ConcurrentDurablePlanarIndexSet::create(
            dir.path().join("idx"),
            build(),
            WalOptions::default().fsync(FsyncPolicy::EveryN(64)),
            ConcurrencyConfig::default(),
        )
        .expect("create concurrent durable");
        let (_, t) = time_ms(|| {
            for row in rows.iter().take(MUTATIONS) {
                conc.insert_point(row).expect("concurrent insert");
            }
        });
        t
    };

    // Concurrent writers through the group-commit queue, Always policy:
    // every Ok is an fsync-backed promise, yet commits ride shared groups.
    let mut gc_rows = Vec::new();
    for &threads in &WRITER_SWEEP {
        let dir = TempDir::new("bench-conc-gc").expect("temp dir");
        let conc = ConcurrentDurablePlanarIndexSet::create(
            dir.path().join("idx"),
            build(),
            WalOptions::default().fsync(FsyncPolicy::Always),
            ConcurrencyConfig::default(),
        )
        .expect("create concurrent durable");
        let fsyncs_before = conc.fsync_count();
        let next = AtomicUsize::new(0);
        let (_, total_ms) = time_ms(|| {
            std::thread::scope(|s| {
                for _ in 0..threads {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= MUTATIONS {
                            break;
                        }
                        conc.insert_point(&rows[i]).expect("concurrent insert");
                    });
                }
            });
        });
        let stats = conc.group_commit_stats();
        gc_rows.push(GcRow {
            threads,
            total_ms,
            fsyncs: conc.fsync_count() - fsyncs_before,
            max_group: stats.max_group,
        });
    }

    let best_gc_ms = gc_rows
        .iter()
        .map(|r| r.total_ms)
        .fold(f64::INFINITY, f64::min);
    let gc_ratio = best_gc_ms / conc_every64_ms;
    let gc_pass = gc_ratio <= GC_TARGET_RATIO;

    let mut t = Table::new(
        &format!("Group commit: {MUTATIONS} acked inserts, policy=always, n={n}"),
        &[
            "writer",
            "total_ms",
            "per_mutation_us",
            "fsyncs",
            "max_group",
        ],
    );
    t.row(vec![
        "single-writer always".into(),
        ms(single_always_ms),
        format!("{:.2}", single_always_ms * 1e3 / MUTATIONS as f64),
        MUTATIONS.to_string(),
        "1".into(),
    ]);
    t.row(vec![
        "single-writer every_64".into(),
        ms(single_every64_ms),
        format!("{:.2}", single_every64_ms * 1e3 / MUTATIONS as f64),
        (MUTATIONS / 64).to_string(),
        "-".into(),
    ]);
    t.row(vec![
        "concurrent every_64".into(),
        ms(conc_every64_ms),
        format!("{:.2}", conc_every64_ms * 1e3 / MUTATIONS as f64),
        (MUTATIONS / 64).to_string(),
        "-".into(),
    ]);
    for r in &gc_rows {
        t.row(vec![
            format!("group-commit x{}", r.threads),
            ms(r.total_ms),
            format!("{:.2}", r.total_ms * 1e3 / MUTATIONS as f64),
            r.fsyncs.to_string(),
            r.max_group.to_string(),
        ]);
    }
    t.row(vec![
        format!("best always vs concurrent every_64 (target <= {GC_TARGET_RATIO:.1}x)"),
        format!("{gc_ratio:.2}x"),
        if gc_pass {
            "PASS".into()
        } else {
            "FAIL".into()
        },
        String::new(),
        String::new(),
    ]);
    t.print();

    // ── 2. Readers racing a writer ──────────────────────────────────────
    let set = build();
    let mut generator =
        Eq18Generator::new(set.table(), RQ, cfg.seed ^ 0x0ead).with_inequality_parameter(0.2);
    let queries: Vec<InequalityQuery> = generator.queries(cfg.queries.max(32));

    let dir = TempDir::new("bench-conc-readers").expect("temp dir");
    let conc = ConcurrentDurablePlanarIndexSet::create(
        dir.path().join("idx"),
        set,
        WalOptions::default(),
        ConcurrencyConfig::default(),
    )
    .expect("create concurrent durable");

    let (idle_rps, idle_p99, _) = read_window(&conc, &queries, None, None);
    let race_policies = [
        FsyncPolicy::Always,
        FsyncPolicy::EveryN(8),
        FsyncPolicy::EveryN(64),
        FsyncPolicy::OnCheckpoint,
    ];
    // Saturating writer rows (context), then a paced `Always` row: the
    // acceptance check holds the writer to a fixed arrival rate because
    // on one core an unthrottled writer steals reader CPU share no matter
    // how cheaply the index publishes.
    let mut race_rows = Vec::new();
    for (p, pace) in race_policies
        .iter()
        .map(|&p| (p, None))
        .chain(std::iter::once((
            FsyncPolicy::Always,
            Some(PACED_WRITER_PER_SEC),
        )))
    {
        let dir = TempDir::new("bench-conc-race").expect("temp dir");
        let fresh = ConcurrentDurablePlanarIndexSet::create(
            dir.path().join("idx"),
            build(),
            WalOptions::default().fsync(p),
            ConcurrencyConfig::default(),
        )
        .expect("create racing durable");
        let (rps, p99, acked) = read_window(&fresh, &queries, Some(&rows), pace);
        race_rows.push(RaceRow {
            policy: if pace.is_some() {
                "always_paced"
            } else {
                policy_name(p)
            },
            reads_per_sec: rps,
            p99_us: p99,
            acked_per_sec: acked,
            ratio_vs_idle: rps / idle_rps,
        });
    }
    let paced_ratio = race_rows.last().expect("paced row").ratio_vs_idle;
    let read_pass = paced_ratio >= READ_TARGET_RATIO;

    let mut t = Table::new(
        &format!("{READERS} readers racing a writer: {READ_WINDOW_MS}ms windows, n={n}"),
        &["writer", "reads/sec", "p99_us", "acked_mut/sec", "vs idle"],
    );
    t.row(vec![
        "idle".into(),
        format!("{idle_rps:.0}"),
        format!("{idle_p99:.1}"),
        "-".into(),
        "1.00x".into(),
    ]);
    for r in &race_rows {
        let label = if r.policy == "always_paced" {
            format!("streaming (always @ {PACED_WRITER_PER_SEC}/s)")
        } else {
            format!("streaming ({}, saturating)", r.policy)
        };
        t.row(vec![
            label,
            format!("{:.0}", r.reads_per_sec),
            format!("{:.1}", r.p99_us),
            format!("{:.0}", r.acked_per_sec),
            format!("{:.2}x", r.ratio_vs_idle),
        ]);
    }
    t.row(vec![
        format!("paced always vs idle (target >= {READ_TARGET_RATIO:.1}x)"),
        format!("{paced_ratio:.2}x"),
        if read_pass {
            "PASS".into()
        } else {
            "FAIL".into()
        },
        String::new(),
        String::new(),
    ]);
    t.print();

    // ── 3. Bit-identical batches ────────────────────────────────────────
    let snap = conc.snapshot();
    let exec = ExecutionConfig::with_threads(cfg.threads);
    let batch = snap.query_batch(&queries, &exec).expect("snapshot batch");
    let identical = batch
        .iter()
        .zip(&queries)
        .all(|(out, q)| out.sorted_ids() == snap.query(q).expect("serial read").sorted_ids());
    assert!(identical, "snapshot batch must equal serial execution");
    eprintln!(
        "[harness] batch over pinned snapshot bit-identical to serial: {} queries OK",
        queries.len()
    );

    let json = render_json(
        cfg,
        n,
        single_always_ms,
        single_every64_ms,
        conc_every64_ms,
        &gc_rows,
        gc_ratio,
        gc_pass,
        idle_rps,
        idle_p99,
        &race_rows,
        read_pass,
        identical,
    );
    let path = "BENCH_concurrent.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("[harness] wrote {path}"),
        Err(e) => eprintln!("[harness] could not write {path}: {e}"),
    }
}

/// Run `READERS` snapshot-reading threads for `READ_WINDOW_MS` against
/// `set`, optionally racing one writer thread streaming inserts from
/// `rows` (unthrottled when `pace_per_sec` is `None`, else held to that
/// arrival rate). Returns (reads/sec summed over readers, p99 read
/// latency in microseconds, acked mutations/sec — 0 when the writer is
/// idle).
fn read_window(
    set: &ConcurrentDurablePlanarIndexSet<VecStore>,
    queries: &[InequalityQuery],
    rows: Option<&[Vec<f64>]>,
    pace_per_sec: Option<u64>,
) -> (f64, f64, f64) {
    let stop = AtomicBool::new(false);
    let mut lat_us: Vec<f64> = Vec::new();
    let mut reads = 0usize;
    let mut acked = 0usize;
    let mut elapsed_s = 0.0;
    std::thread::scope(|s| {
        let readers: Vec<_> = (0..READERS)
            .map(|r| {
                let stop = &stop;
                s.spawn(move || {
                    let mut lat = Vec::new();
                    let mut i = r; // stagger the query mix per reader
                    while !stop.load(Ordering::Relaxed) {
                        let q = &queries[i % queries.len()];
                        i += 1;
                        let t0 = Instant::now();
                        let snap = set.snapshot();
                        std::hint::black_box(snap.query(q).expect("snapshot read"));
                        lat.push(t0.elapsed().as_secs_f64() * 1e6);
                    }
                    lat
                })
            })
            .collect();
        let writer_handle = rows.map(|rows| {
            let stop = &stop;
            s.spawn(move || {
                let interval = pace_per_sec
                    .map(|rate| std::time::Duration::from_secs_f64(1.0 / rate.max(1) as f64));
                let started = Instant::now();
                let mut w = 0usize;
                while !stop.load(Ordering::Relaxed) && w < rows.len() {
                    if let Some(interval) = interval {
                        // Hold the offered load: sleep until this
                        // mutation's scheduled arrival.
                        let due = started + interval * w as u32;
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                    }
                    set.insert_point(&rows[w]).expect("streamed insert");
                    w += 1;
                }
                w
            })
        });
        let t0 = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(READ_WINDOW_MS));
        stop.store(true, Ordering::Relaxed);
        for h in readers {
            let l = h.join().expect("reader");
            reads += l.len();
            lat_us.extend(l);
        }
        if let Some(h) = writer_handle {
            acked = h.join().expect("writer");
        }
        elapsed_s = t0.elapsed().as_secs_f64();
    });
    (
        reads as f64 / elapsed_s,
        percentile_us(&mut lat_us, 0.99),
        acked as f64 / elapsed_s,
    )
}

/// Hand-rolled JSON (the workspace has no serde).
#[allow(clippy::too_many_arguments)]
fn render_json(
    cfg: &Config,
    n: usize,
    single_always_ms: f64,
    single_every64_ms: f64,
    conc_every64_ms: f64,
    gc_rows: &[GcRow],
    gc_ratio: f64,
    gc_pass: bool,
    idle_rps: f64,
    idle_p99: f64,
    race_rows: &[RaceRow],
    read_pass: bool,
    identical: bool,
) -> String {
    let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"concurrent\",\n");
    out.push_str(&format!("  \"n\": {n},\n"));
    out.push_str(&format!("  \"dim\": {DIM},\n"));
    out.push_str(&format!("  \"budget\": {BUDGET},\n"));
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str(&format!("  \"host_cpus\": {cpus},\n"));
    out.push_str(&format!("  \"mutations\": {MUTATIONS},\n"));
    out.push_str("  \"group_commit\": {\n");
    out.push_str(&format!(
        "    \"single_writer_always_ms\": {single_always_ms:.3},\n"
    ));
    out.push_str(&format!(
        "    \"single_writer_every_64_ms\": {single_every64_ms:.3},\n"
    ));
    out.push_str(&format!(
        "    \"concurrent_every_64_ms\": {conc_every64_ms:.3},\n"
    ));
    out.push_str("    \"concurrent_always\": [\n");
    for (i, r) in gc_rows.iter().enumerate() {
        let comma = if i + 1 == gc_rows.len() { "" } else { "," };
        out.push_str(&format!(
            "      {{\"threads\": {}, \"total_ms\": {:.3}, \"per_mutation_us\": {:.2}, \"fsyncs\": {}, \"max_group\": {}}}{comma}\n",
            r.threads,
            r.total_ms,
            r.total_ms * 1e3 / MUTATIONS as f64,
            r.fsyncs,
            r.max_group,
        ));
    }
    out.push_str("    ],\n");
    let best_gc_ms = gc_rows
        .iter()
        .map(|r| r.total_ms)
        .fold(f64::INFINITY, f64::min);
    out.push_str(&format!(
        "    \"best_always_vs_concurrent_every_64_ratio\": {gc_ratio:.3},\n"
    ));
    out.push_str(&format!(
        "    \"best_always_vs_single_writer_every_64_ratio\": {:.3},\n",
        best_gc_ms / single_every64_ms
    ));
    out.push_str(&format!("    \"target_ratio\": {GC_TARGET_RATIO:.1},\n"));
    out.push_str(&format!("    \"pass\": {gc_pass}\n"));
    out.push_str("  },\n");
    out.push_str("  \"readers\": {\n");
    out.push_str(&format!("    \"reader_threads\": {READERS},\n"));
    out.push_str(&format!("    \"window_ms\": {READ_WINDOW_MS},\n"));
    out.push_str(&format!(
        "    \"paced_writer_per_sec\": {PACED_WRITER_PER_SEC},\n"
    ));
    out.push_str(&format!("    \"idle_reads_per_sec\": {idle_rps:.0},\n"));
    out.push_str(&format!("    \"idle_p99_us\": {idle_p99:.1},\n"));
    out.push_str("    \"racing\": [\n");
    for (i, r) in race_rows.iter().enumerate() {
        let comma = if i + 1 == race_rows.len() { "" } else { "," };
        out.push_str(&format!(
            "      {{\"policy\": \"{}\", \"reads_per_sec\": {:.0}, \"p99_us\": {:.1}, \"acked_mutations_per_sec\": {:.0}, \"ratio_vs_idle\": {:.3}}}{comma}\n",
            r.policy, r.reads_per_sec, r.p99_us, r.acked_per_sec, r.ratio_vs_idle,
        ));
    }
    out.push_str("    ],\n");
    out.push_str(&format!("    \"target_ratio\": {READ_TARGET_RATIO:.1},\n"));
    out.push_str(&format!("    \"pass\": {read_pass}\n"));
    out.push_str("  },\n");
    out.push_str(&format!("  \"batch_bit_identical\": {identical}\n"));
    out.push_str("}\n");
    out
}
