//! Durability experiment: what do the WAL and deadlines cost?
//!
//! Three questions the crash-consistency work raises, answered with
//! numbers:
//!
//! 1. **Fsync-policy latency** — per-mutation cost of `Always`,
//!    `EveryN(8)`, `EveryN(64)` and `OnCheckpoint` against the in-memory
//!    (no WAL) baseline.
//! 2. **Replay throughput** — recovery time with a long un-checkpointed
//!    tail vs an open right after a checkpoint, and the records/second
//!    the replay path sustains.
//! 3. **Deadline-hit partial rates** — how many answers of a batch
//!    survive as the `ExecutionConfig::deadline` budget shrinks from
//!    "generous" to zero.
//!
//! Results are printed as tables and written to `BENCH_wal.json`.

use std::time::Duration;

use crate::report::{ms, Table};
use crate::{time_ms, Config};
use planar_core::fault::TempDir;
use planar_core::{
    DurablePlanarIndexSet, ExecutionConfig, FsyncPolicy, IndexConfig, InequalityQuery,
    PlanarIndexSet, VecStore, WalOptions,
};
use planar_datagen::queries::{eq18_domain, Eq18Generator};
use planar_datagen::synthetic::{SyntheticConfig, SyntheticKind};
use planar_datagen::SYNTHETIC_N;

/// Dataset dimensionality.
const DIM: usize = 8;
/// RQ of the Eq. 18 query template.
const RQ: usize = 4;
/// Index budget.
const BUDGET: usize = 8;
/// Logged mutations per fsync-policy measurement (and replay tail).
const MUTATIONS: usize = 2048;

fn policy_name(p: FsyncPolicy) -> &'static str {
    match p {
        FsyncPolicy::Always => "always",
        FsyncPolicy::EveryN(8) => "every_8",
        FsyncPolicy::EveryN(_) => "every_64",
        FsyncPolicy::OnCheckpoint => "on_checkpoint",
    }
}

/// The `wal` experiment (see module docs).
pub fn wal(cfg: &Config) {
    let n = cfg.scaled(SYNTHETIC_N / 10);
    let table = SyntheticConfig::paper(SyntheticKind::Independent, n + MUTATIONS, DIM).generate();
    let rows: Vec<Vec<f64>> = (n..n + MUTATIONS)
        .map(|i| table.row(i as u32).to_vec())
        .collect();
    let base = {
        let head: Vec<Vec<f64>> = (0..n).map(|i| table.row(i as u32).to_vec()).collect();
        planar_core::FeatureTable::from_rows(DIM, head).expect("base table")
    };
    let build = || {
        PlanarIndexSet::<VecStore>::build(
            base.clone(),
            eq18_domain(DIM, RQ),
            IndexConfig::with_budget(BUDGET).seed(cfg.seed),
        )
        .expect("wal experiment build")
    };

    // 1. Fsync-policy mutation latency.
    let (_, memory_ms) = time_ms(|| {
        let mut set = build();
        for row in &rows {
            set.insert_point(row).expect("insert");
        }
    });
    let policies = [
        FsyncPolicy::Always,
        FsyncPolicy::EveryN(8),
        FsyncPolicy::EveryN(64),
        FsyncPolicy::OnCheckpoint,
    ];
    let mut policy_ms = Vec::new();
    for &p in &policies {
        let dir = TempDir::new("bench-wal-fsync").expect("temp dir");
        let mut durable = DurablePlanarIndexSet::create(
            dir.path().join("idx"),
            build(),
            WalOptions::default().fsync(p),
        )
        .expect("create durable");
        let (_, t) = time_ms(|| {
            for row in &rows {
                durable.insert_point(row).expect("durable insert");
            }
        });
        policy_ms.push(t);
    }

    let mut t = Table::new(
        &format!("WAL fsync policies: {MUTATIONS} inserts, n={n}, dim={DIM}"),
        &["policy", "total_ms", "per_mutation_us", "vs no WAL"],
    );
    t.row(vec![
        "none (in-memory)".into(),
        ms(memory_ms),
        format!("{:.2}", memory_ms * 1e3 / MUTATIONS as f64),
        "1.00x".into(),
    ]);
    for (&p, &v) in policies.iter().zip(&policy_ms) {
        t.row(vec![
            policy_name(p).into(),
            ms(v),
            format!("{:.2}", v * 1e3 / MUTATIONS as f64),
            format!("{:.2}x", v / memory_ms),
        ]);
    }
    t.print();

    // 2. Replay throughput: recover a long tail vs a checkpointed open.
    let dir = TempDir::new("bench-wal-replay").expect("temp dir");
    let idx = dir.path().join("idx");
    let opts = WalOptions::default().fsync(FsyncPolicy::OnCheckpoint);
    let mut durable = DurablePlanarIndexSet::create(&idx, build(), opts).expect("create durable");
    for row in &rows {
        durable.insert_point(row).expect("durable insert");
    }
    durable.sync().expect("sync");
    drop(durable); // crash: MUTATIONS records above the watermark

    // Cold: the first recovery after the crash, end to end (snapshot load
    // + tail replay). Warm: recover the same tail again with hot page
    // caches, then subtract the checkpointed clean-open cost to isolate
    // the replay path's marginal throughput.
    let (_, cold_open_ms) = time_ms(|| {
        let (d, report) =
            PlanarIndexSet::<VecStore>::open_durable(&idx, opts).expect("recover tail (cold)");
        assert_eq!(report.wal_replayed, MUTATIONS);
        d
    });
    let (mut durable, warm_open_ms) = {
        let ((d, report), t) = time_ms(|| {
            PlanarIndexSet::<VecStore>::open_durable(&idx, opts).expect("recover tail (warm)")
        });
        assert_eq!(report.wal_replayed, MUTATIONS);
        (d, t)
    };
    durable.checkpoint().expect("checkpoint");
    drop(durable);
    let (_, clean_open_ms) = time_ms(|| {
        let (d, report) = PlanarIndexSet::<VecStore>::open_durable(&idx, opts).expect("clean open");
        assert_eq!(report.wal_replayed, 0);
        d
    });
    let cold_per_sec = MUTATIONS as f64 / (cold_open_ms.max(0.001) / 1e3);
    let warm_per_sec = MUTATIONS as f64 / ((warm_open_ms - clean_open_ms).max(0.001) / 1e3);

    let mut t = Table::new(
        &format!("Recovery: {MUTATIONS}-record tail vs checkpointed"),
        &["open", "time_ms", "records_replayed"],
    );
    t.row(vec![
        "un-checkpointed tail (cold)".into(),
        ms(cold_open_ms),
        MUTATIONS.to_string(),
    ]);
    t.row(vec![
        "un-checkpointed tail (warm)".into(),
        ms(warm_open_ms),
        MUTATIONS.to_string(),
    ]);
    t.row(vec![
        "after checkpoint".into(),
        ms(clean_open_ms),
        "0".into(),
    ]);
    t.row(vec![
        "cold replay (end-to-end)".into(),
        format!("{cold_per_sec:.0} rec/s"),
        String::new(),
    ]);
    t.row(vec![
        "warm replay (marginal)".into(),
        format!("{warm_per_sec:.0} rec/s"),
        String::new(),
    ]);
    t.print();

    // 3. Deadline-hit partial rates.
    let set = build();
    let mut generator =
        Eq18Generator::new(set.table(), RQ, cfg.seed ^ 0x0ead).with_inequality_parameter(0.2);
    let queries: Vec<InequalityQuery> = generator.queries(cfg.queries.max(64));
    let exec = ExecutionConfig::with_threads(cfg.threads);
    let (full, full_ms) = time_ms(|| set.query_batch(&queries, &exec).expect("unbudgeted batch"));
    assert!(full.iter().all(|o| !o.served_by.is_partial()));

    let budgets = [
        ("unbudgeted", None),
        ("2x batch time", Some(full_ms * 2.0)),
        ("1/4 batch time", Some(full_ms / 4.0)),
        ("zero", Some(0.0)),
    ];
    let mut deadline_rows = Vec::new();
    for (label, budget) in budgets {
        let exec = match budget {
            None => ExecutionConfig::with_threads(cfg.threads),
            Some(b) => ExecutionConfig::with_threads(cfg.threads)
                .with_deadline(Duration::from_secs_f64(b / 1e3)),
        };
        let out = set.query_batch(&queries, &exec).expect("budgeted batch");
        let partial = out.iter().filter(|o| o.served_by.is_partial()).count();
        deadline_rows.push((label, budget, queries.len() - partial, partial));
    }

    let mut t = Table::new(
        &format!(
            "Deadline-aware batches: {} queries, {} threads",
            queries.len(),
            cfg.threads
        ),
        &["budget", "completed", "partial"],
    );
    for (label, _, completed, partial) in &deadline_rows {
        t.row(vec![
            (*label).into(),
            completed.to_string(),
            partial.to_string(),
        ]);
    }
    t.print();

    let json = render_json(
        cfg,
        n,
        &policies,
        &policy_ms,
        memory_ms,
        cold_open_ms,
        warm_open_ms,
        clean_open_ms,
        cold_per_sec,
        warm_per_sec,
        &deadline_rows,
    );
    let path = "BENCH_wal.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("[harness] wrote {path}"),
        Err(e) => eprintln!("[harness] could not write {path}: {e}"),
    }
}

/// Hand-rolled JSON (the workspace has no serde).
#[allow(clippy::too_many_arguments)]
fn render_json(
    cfg: &Config,
    n: usize,
    policies: &[FsyncPolicy],
    policy_ms: &[f64],
    memory_ms: f64,
    cold_open_ms: f64,
    warm_open_ms: f64,
    clean_open_ms: f64,
    cold_per_sec: f64,
    warm_per_sec: f64,
    deadline_rows: &[(&str, Option<f64>, usize, usize)],
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"wal\",\n");
    out.push_str(&format!("  \"n\": {n},\n"));
    out.push_str(&format!("  \"dim\": {DIM},\n"));
    out.push_str(&format!("  \"budget\": {BUDGET},\n"));
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str(&format!("  \"mutations\": {MUTATIONS},\n"));
    out.push_str("  \"fsync_policy_ms\": {\n");
    out.push_str(&format!("    \"none\": {memory_ms:.3},\n"));
    for (i, (&p, &v)) in policies.iter().zip(policy_ms).enumerate() {
        let comma = if i + 1 == policies.len() { "" } else { "," };
        out.push_str(&format!("    \"{}\": {v:.3}{comma}\n", policy_name(p)));
    }
    out.push_str("  },\n");
    out.push_str("  \"recovery\": {\n");
    out.push_str(&format!("    \"cold_open_ms\": {cold_open_ms:.3},\n"));
    out.push_str(&format!("    \"warm_open_ms\": {warm_open_ms:.3},\n"));
    out.push_str(&format!("    \"clean_open_ms\": {clean_open_ms:.3},\n"));
    out.push_str(&format!(
        "    \"replay_cold_records_per_sec\": {cold_per_sec:.0},\n"
    ));
    out.push_str(&format!(
        "    \"replay_warm_records_per_sec\": {warm_per_sec:.0}\n"
    ));
    out.push_str("  },\n");
    out.push_str("  \"deadline\": [\n");
    for (i, (label, budget, completed, partial)) in deadline_rows.iter().enumerate() {
        let comma = if i + 1 == deadline_rows.len() {
            ""
        } else {
            ","
        };
        let budget = budget.map_or("null".to_string(), |b| format!("{b:.3}"));
        out.push_str(&format!(
            "    {{\"budget\": \"{label}\", \"budget_ms\": {budget}, \"completed\": {completed}, \"partial\": {partial}}}{comma}\n"
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}
