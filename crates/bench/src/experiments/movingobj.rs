//! Moving-object intersection experiments (Figure 14).
//!
//! Object-set sizes scale with `sqrt(scale)` so the *pair* count — the
//! quantity that actually drives cost — scales linearly with `--scale`
//! (paper scale: 5,000 objects per set → 25M pairs).

use crate::report::{ms, Table};
use crate::{time_ms, Config};
use planar_moving::baseline;
use planar_moving::intersection::{
    AcceleratingIntersectionIndex, CircularIntersectionIndex, LinearIntersectionIndex,
};
use planar_moving::rtree::mbr_intersection;
use planar_moving::workload;

const PAPER_OBJECTS: usize = 5_000;
const INSTANTS: [f64; 6] = [10.0, 11.0, 12.0, 13.0, 14.0, 15.0];
const QUERY_TIMES: [f64; 11] = [
    10.0, 10.5, 11.0, 11.5, 12.0, 12.5, 13.0, 13.5, 14.0, 14.5, 15.0,
];

fn objects_per_set(cfg: &Config) -> usize {
    ((PAPER_OBJECTS as f64 * cfg.scale.sqrt()) as usize).max(50)
}

/// Figure 14a: linear motion — Planar vs all-pairs baseline vs MBR R-tree.
pub fn fig14a(cfg: &Config) {
    let n = objects_per_set(cfg);
    let set_a = workload::linear_objects(n, 1000.0, cfg.seed);
    let set_b = workload::linear_objects(n, 1000.0, cfg.seed ^ 1);
    let (idx, build_ms) = time_ms(|| {
        LinearIntersectionIndex::<planar_core::VecStore>::build(
            set_a.clone(),
            set_b.clone(),
            &INSTANTS,
        )
        .expect("build")
    });
    let mut t = Table::new(
        &format!(
            "Fig 14a: linear moving objects, {n}x{n} pairs (index build {:.1}s)",
            build_ms / 1e3
        ),
        &[
            "t_min",
            "planar_ms",
            "baseline_ms",
            "mbr_ms",
            "matches",
            "pruning_%",
        ],
    );
    for qt in QUERY_TIMES {
        let ((pairs, stats), planar_ms) = time_ms(|| idx.query(qt, 10.0).expect("query"));
        let (base_pairs, baseline_ms) =
            time_ms(|| baseline::linear_pairs_within(&set_a, &set_b, qt, 10.0));
        let (mbr_pairs, mbr_ms) = time_ms(|| mbr_intersection(&set_a, &set_b, qt, 10.0));
        assert_eq!(pairs.len(), base_pairs.len(), "exactness at t={qt}");
        assert_eq!(pairs.len(), mbr_pairs.len(), "MBR exactness at t={qt}");
        t.row(vec![
            format!("{qt:.1}"),
            ms(planar_ms),
            ms(baseline_ms),
            ms(mbr_ms),
            pairs.len().to_string(),
            format!("{:.1}", stats.pruning_percentage()),
        ]);
    }
    t.print();
}

/// Figure 14b: circular vs linear motion — Planar vs baseline (no MBR
/// method applies: future positions are not affine in t).
pub fn fig14b(cfg: &Config) {
    let n = objects_per_set(cfg);
    let circles = workload::circular_objects(n, cfg.seed);
    let lines = workload::linear_objects(n, 100.0, cfg.seed ^ 2);
    let (idx, build_ms) = time_ms(|| {
        CircularIntersectionIndex::<planar_core::VecStore>::build(&circles, &lines, &INSTANTS)
            .expect("build")
    });
    let mut t = Table::new(
        &format!(
            "Fig 14b: circular moving objects, {n}x{n} pairs (index build {:.1}s)",
            build_ms / 1e3
        ),
        &["t_min", "planar_ms", "baseline_ms", "matches", "pruning_%"],
    );
    for qt in QUERY_TIMES {
        let ((pairs, stats), planar_ms) = time_ms(|| idx.query(qt, 10.0).expect("query"));
        let (base_pairs, baseline_ms) =
            time_ms(|| baseline::circular_pairs_within(&circles, &lines, qt, 10.0));
        assert_eq!(pairs.len(), base_pairs.len(), "exactness at t={qt}");
        t.row(vec![
            format!("{qt:.1}"),
            ms(planar_ms),
            ms(baseline_ms),
            pairs.len().to_string(),
            format!("{:.1}", stats.pruning_percentage()),
        ]);
    }
    t.print();
}

/// Figure 14c: accelerating (3D) vs linear motion — Planar vs baseline.
pub fn fig14c(cfg: &Config) {
    let n = objects_per_set(cfg);
    let accel = workload::accelerating_objects(n, 1000.0, cfg.seed);
    let lines = workload::linear_objects_3d(n, 1000.0, cfg.seed ^ 3);
    let (idx, build_ms) = time_ms(|| {
        AcceleratingIntersectionIndex::<planar_core::VecStore>::build(&accel, &lines, &INSTANTS)
            .expect("build")
    });
    let mut t = Table::new(
        &format!(
            "Fig 14c: accelerating objects (3D), {n}x{n} pairs (index build {:.1}s)",
            build_ms / 1e3
        ),
        &["t_min", "planar_ms", "baseline_ms", "matches", "pruning_%"],
    );
    for qt in QUERY_TIMES {
        let ((pairs, stats), planar_ms) = time_ms(|| idx.query(qt, 10.0).expect("query"));
        let (base_pairs, baseline_ms) =
            time_ms(|| baseline::accelerating_pairs_within(&accel, &lines, qt, 10.0));
        assert_eq!(pairs.len(), base_pairs.len(), "exactness at t={qt}");
        t.row(vec![
            format!("{qt:.1}"),
            ms(planar_ms),
            ms(baseline_ms),
            pairs.len().to_string(),
            format!("{:.1}", stats.pruning_percentage()),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Config {
        Config {
            scale: 0.0002,
            queries: 1,
            seed: 5,
            threads: 1,
        }
    }

    #[test]
    fn fig14a_smoke() {
        fig14a(&tiny());
    }

    #[test]
    fn fig14b_smoke() {
        fig14b(&tiny());
    }

    #[test]
    fn fig14c_smoke() {
        fig14c(&tiny());
    }
}
