//! Real-world-dataset experiments (simulated datasets, see DESIGN.md §4):
//! Table 2 and Figure 6.

use crate::report::{ms, Table};
use crate::{time_ms, Config};
use planar_core::{FeatureTable, IndexConfig, ParameterDomain, PlanarIndexSet, SeqScan, VecStore};
use planar_datagen::consumption::{
    consumption_domain, critical_consume_query, sample_threshold, ConsumptionGenerator,
};
use planar_datagen::queries::{eq18_domain, Eq18Generator};
use planar_datagen::synthetic::{SyntheticConfig, SyntheticKind};
use planar_datagen::{cmoment, ctexture, DatasetSummary, CONSUMPTION_N, IMAGE_N, SYNTHETIC_N};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Table 2: characteristics of every dataset.
pub fn table2(cfg: &Config) {
    let mut t = Table::new(
        "Table 2: dataset characteristics (scaled)",
        &["dataset", "#points", "#dim", "attr_min", "attr_max"],
    );
    let n_syn = cfg.scaled(SYNTHETIC_N);
    for kind in SyntheticKind::ALL {
        let table = SyntheticConfig::paper(kind, n_syn, 6).generate();
        push_summary(&mut t, &DatasetSummary::of(kind.name(), &table));
    }
    let n_img = cfg.scaled(IMAGE_N);
    push_summary(
        &mut t,
        &DatasetSummary::of("CMoment", &cmoment(n_img, cfg.seed)),
    );
    push_summary(
        &mut t,
        &DatasetSummary::of("CTexture", &ctexture(n_img, cfg.seed)),
    );
    let consumption = ConsumptionGenerator::new(cfg.scaled(CONSUMPTION_N)).raw_table();
    push_summary(&mut t, &DatasetSummary::of("Consumption", &consumption));
    t.print();
}

fn push_summary(t: &mut Table, s: &DatasetSummary) {
    t.row(vec![
        s.name.clone(),
        s.n.to_string(),
        s.dim.to_string(),
        format!("{:.2}", s.min),
        format!("{:.2}", s.max),
    ]);
}

/// Figure 6a: the Critical_Consume SQL function over the consumption data.
pub fn fig6a(cfg: &Config) {
    let n = cfg.scaled(CONSUMPTION_N);
    let table = ConsumptionGenerator::new(n).feature_table();
    let scan_table = table.clone();
    let scan = SeqScan::new(&scan_table);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x6A);
    let thresholds: Vec<f64> = (0..cfg.queries)
        .map(|_| sample_threshold(&mut rng))
        .collect();

    let mut baseline_ms = 0.0;
    for th in &thresholds {
        let q = critical_consume_query(*th);
        let (_, tb) = time_ms(|| scan.evaluate(&q).expect("scan"));
        baseline_ms += tb;
    }
    baseline_ms /= thresholds.len() as f64;

    let mut t = Table::new(
        &format!("Fig 6a: Consumption SQL function, n={n}"),
        &["#index", "query_ms", "baseline_ms", "speedup"],
    );
    for n_index in [10usize, 50, 100, 200] {
        let set: PlanarIndexSet<VecStore> = PlanarIndexSet::build(
            table.clone(),
            consumption_domain(),
            IndexConfig::with_budget(n_index).seed(cfg.seed),
        )
        .expect("build");
        let mut planar_ms = 0.0;
        for th in &thresholds {
            let q = critical_consume_query(*th);
            let (out, tq) = time_ms(|| set.query(&q).expect("query"));
            assert!(out.stats.used_index());
            planar_ms += tq;
        }
        planar_ms /= thresholds.len() as f64;
        t.row(vec![
            n_index.to_string(),
            ms(planar_ms),
            ms(baseline_ms),
            crate::report::speedup(baseline_ms, planar_ms),
        ]);
    }
    t.print();
}

fn image_figure(cfg: &Config, name: &str, table: FeatureTable) {
    let scan_table = table.clone();
    let scan = SeqScan::new(&scan_table);
    let dim = table.dim();
    let mut t = Table::new(
        &format!("Fig 6: {name}, n={}", table.len()),
        &[
            "RQ",
            "#index=1",
            "#index=10",
            "#index=50",
            "#index=100",
            "baseline",
        ],
    );
    for rq in [2usize, 4, 8, 12] {
        let mut cells = vec![rq.to_string()];
        let mut generator = Eq18Generator::new(&table, rq, cfg.seed ^ 0x16);
        let queries = generator.queries(cfg.queries);
        let mut baseline_ms = 0.0;
        for q in &queries {
            let (_, tb) = time_ms(|| scan.evaluate(q).expect("scan"));
            baseline_ms += tb;
        }
        baseline_ms /= queries.len() as f64;
        for n_index in [1usize, 10, 50, 100] {
            let set: PlanarIndexSet<VecStore> = PlanarIndexSet::build(
                table.clone(),
                eq18_domain(dim, rq),
                IndexConfig::with_budget(n_index).seed(cfg.seed),
            )
            .expect("build");
            let mut planar_ms = 0.0;
            for q in &queries {
                let (_, tq) = time_ms(|| set.query(q).expect("query"));
                planar_ms += tq;
            }
            cells.push(ms(planar_ms / queries.len() as f64));
        }
        cells.push(ms(baseline_ms));
        t.row(cells);
    }
    t.print();
}

/// Figure 6b: CMoment query times.
pub fn fig6b(cfg: &Config) {
    image_figure(cfg, "CMoment", cmoment(cfg.scaled(IMAGE_N), cfg.seed));
}

/// Figure 6c: CTexture query times.
pub fn fig6c(cfg: &Config) {
    image_figure(cfg, "CTexture", ctexture(cfg.scaled(IMAGE_N), cfg.seed));
}

/// Figure 6d: index construction time on the real datasets.
pub fn fig6d(cfg: &Config) {
    let mut t = Table::new(
        "Fig 6d: index build time (s), real datasets",
        &["#index", "CMoment", "CTexture", "Consumption"],
    );
    let n_img = cfg.scaled(IMAGE_N);
    let cm = cmoment(n_img, cfg.seed);
    let ct = ctexture(n_img, cfg.seed);
    let cons = ConsumptionGenerator::new(cfg.scaled(CONSUMPTION_N)).feature_table();
    for n_index in [1usize, 10, 50, 100, 200] {
        let mut cells = vec![n_index.to_string()];
        for (table, domain) in [
            (&cm, eq18_domain(cm.dim(), 4)),
            (&ct, eq18_domain(ct.dim(), 4)),
            (&cons, consumption_domain()),
        ] {
            let (_, build_ms) = time_ms(|| {
                PlanarIndexSet::<VecStore>::build(
                    table.clone(),
                    domain.clone(),
                    IndexConfig::with_budget(n_index).seed(cfg.seed),
                )
                .expect("build")
            });
            cells.push(format!("{:.2}", build_ms / 1e3));
        }
        t.row(cells);
    }
    t.print();
}

/// Keep the unused-import lint honest for ParameterDomain in rustdoc
/// examples.
#[allow(dead_code)]
fn _types(_: Option<ParameterDomain>) {}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Config {
        Config {
            scale: 0.002,
            queries: 2,
            seed: 3,
            threads: 1,
        }
    }

    #[test]
    fn table2_smoke() {
        table2(&tiny());
    }

    #[test]
    fn fig6a_smoke() {
        fig6a(&tiny());
    }
}
