//! Parallel engine experiment: multi-index build time and batched query
//! throughput at 1, 2, 4, … worker threads, with speedups over the
//! single-threaded engine. Results are printed as tables and written to
//! `BENCH_parallel.json` for machine consumption.

use crate::report::{ms, Table};
use crate::{time_ms, Config};
use planar_core::{ExecutionConfig, IndexConfig, InequalityQuery, PlanarIndexSet, VecStore};
use planar_datagen::queries::{eq18_domain, Eq18Generator};
use planar_datagen::synthetic::{SyntheticConfig, SyntheticKind};
use planar_datagen::SYNTHETIC_N;

/// Dataset dimensionality for the parallel workload.
const DIM: usize = 8;
/// RQ of the Eq. 18 query template.
const RQ: usize = 4;
/// Index budget — large enough that the per-index builds dominate and
/// parallel construction has work to distribute.
const BUDGET: usize = 32;
/// Timing repetitions per configuration (the mean is reported).
const REPS: usize = 3;

struct Sweep {
    threads: usize,
    build_ms: f64,
    batch_ms: f64,
    topk_ms: f64,
}

/// Thread counts to sweep: powers of two up to `max(8, cfg.threads)`,
/// always including 1 (the serial baseline) — 1/2/4/8 by default.
fn thread_counts(cfg: &Config) -> Vec<usize> {
    let cap = cfg.threads.max(8);
    let mut counts = vec![1usize];
    let mut t = 2;
    while t <= cap {
        counts.push(t);
        t *= 2;
    }
    if *counts.last().unwrap() != cap {
        counts.push(cap);
    }
    counts
}

/// The `parallel` experiment (see module docs).
pub fn parallel_engine(cfg: &Config) {
    // cfg.scaled(2M) = 100K points at the default 0.05 scale.
    let n = cfg.scaled(2 * SYNTHETIC_N);
    let table = SyntheticConfig::paper(SyntheticKind::Independent, n, DIM).generate();
    let batch = (cfg.queries * 8).max(64);

    let build_cfg = || IndexConfig::with_budget(BUDGET).seed(cfg.seed);
    let reference: PlanarIndexSet<VecStore> =
        PlanarIndexSet::build(table.clone(), eq18_domain(DIM, RQ), build_cfg())
            .expect("parallel experiment build");
    let mut generator = Eq18Generator::new(reference.table(), RQ, cfg.seed ^ 0xBEEF)
        .with_inequality_parameter(0.25);
    let queries: Vec<InequalityQuery> = generator.queries(batch);
    let topk_queries: Vec<planar_core::TopKQuery> = queries
        .iter()
        .map(|q| planar_core::TopKQuery::new(q.clone(), 10).expect("k > 0"))
        .collect();

    let mut sweeps: Vec<Sweep> = Vec::new();
    for &threads in &thread_counts(cfg) {
        let exec = ExecutionConfig::with_threads(threads);

        let mut build_ms = 0.0;
        for _ in 0..REPS {
            let (set, t) = time_ms(|| {
                PlanarIndexSet::<VecStore>::build_with(
                    table.clone(),
                    eq18_domain(DIM, RQ),
                    build_cfg(),
                    &exec,
                )
                .expect("parallel build")
            });
            assert_eq!(set.num_indices(), reference.num_indices());
            build_ms += t;
        }

        let mut batch_ms = 0.0;
        let mut topk_ms = 0.0;
        for _ in 0..REPS {
            let (out, t) = time_ms(|| reference.query_batch(&queries, &exec).expect("batch"));
            assert_eq!(out.len(), queries.len());
            batch_ms += t;
            let (out, t) = time_ms(|| {
                reference
                    .top_k_batch(&topk_queries, &exec)
                    .expect("topk batch")
            });
            assert_eq!(out.len(), topk_queries.len());
            topk_ms += t;
        }

        sweeps.push(Sweep {
            threads,
            build_ms: build_ms / REPS as f64,
            batch_ms: batch_ms / REPS as f64,
            topk_ms: topk_ms / REPS as f64,
        });
    }

    let base = &sweeps[0];
    let (base_build, base_batch, base_topk) = (base.build_ms, base.batch_ms, base.topk_ms);
    let mut t = Table::new(
        &format!("Parallel engine: n={n}, dim={DIM}, #index={BUDGET}, batch={batch} queries"),
        &[
            "threads", "build_ms", "build_x", "batch_ms", "batch_x", "qps", "topk_ms", "topk_x",
        ],
    );
    for s in &sweeps {
        t.row(vec![
            s.threads.to_string(),
            ms(s.build_ms),
            format!("{:.2}", base_build / s.build_ms),
            ms(s.batch_ms),
            format!("{:.2}", base_batch / s.batch_ms),
            format!("{:.0}", batch as f64 / (s.batch_ms / 1e3)),
            ms(s.topk_ms),
            format!("{:.2}", base_topk / s.topk_ms),
        ]);
    }
    t.print();

    let json = render_json(n, batch, &sweeps);
    let path = "BENCH_parallel.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("[harness] wrote {path}"),
        Err(e) => eprintln!("[harness] could not write {path}: {e}"),
    }
}

/// Hand-rolled JSON (the workspace has no serde): one object per thread
/// count with absolute times and speedups over the single-thread row.
fn render_json(n: usize, batch: usize, sweeps: &[Sweep]) -> String {
    let base = &sweeps[0];
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"parallel\",\n");
    // Speedups are bounded by the host's core count; record it so a sweep
    // run on a small machine is not misread as an engine limitation.
    let host = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    out.push_str(&format!("  \"host_cpus\": {host},\n"));
    out.push_str(&format!("  \"n\": {n},\n"));
    out.push_str(&format!("  \"dim\": {DIM},\n"));
    out.push_str(&format!("  \"budget\": {BUDGET},\n"));
    out.push_str(&format!("  \"batch_queries\": {batch},\n"));
    out.push_str("  \"sweep\": [\n");
    for (i, s) in sweeps.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"threads\": {}, ",
                "\"build_ms\": {:.3}, \"build_speedup\": {:.3}, ",
                "\"batch_ms\": {:.3}, \"batch_speedup\": {:.3}, ",
                "\"batch_queries_per_s\": {:.1}, ",
                "\"topk_ms\": {:.3}, \"topk_speedup\": {:.3}}}{}\n"
            ),
            s.threads,
            s.build_ms,
            base.build_ms / s.build_ms,
            s.batch_ms,
            base.batch_ms / s.batch_ms,
            batch as f64 / (s.batch_ms / 1e3),
            s.topk_ms,
            base.topk_ms / s.topk_ms,
            if i + 1 == sweeps.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_sweep_starts_at_one_and_covers_config() {
        let counts = thread_counts(&Config::default());
        assert_eq!(counts, vec![1, 2, 4, 8]);
        let cfg = Config {
            threads: 12,
            ..Config::default()
        };
        let counts = thread_counts(&cfg);
        assert_eq!(counts[0], 1);
        assert!(counts.contains(&8));
        assert_eq!(*counts.last().unwrap(), 12);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let sweeps = vec![
            Sweep {
                threads: 1,
                build_ms: 10.0,
                batch_ms: 8.0,
                topk_ms: 6.0,
            },
            Sweep {
                threads: 4,
                build_ms: 3.0,
                batch_ms: 2.0,
                topk_ms: 2.0,
            },
        ];
        let json = render_json(1000, 64, &sweeps);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"threads\"").count(), 2);
        assert!(json.contains("\"build_speedup\": 3.333"));
        assert!(json.contains("\"batch_speedup\": 4.000"));
    }
}
