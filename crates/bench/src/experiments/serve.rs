//! Serving experiment: the network front-end under concurrent load.
//!
//! Three questions the serving layer raises, answered with numbers over
//! real loopback sockets (whole stack measured: framing, admission,
//! micro-batching, engine, response encoding):
//!
//! 1. **Coalesced vs per-request dispatch** — many closed-loop clients
//!    issuing short queries against the adaptive micro-batcher
//!    (`max_batch = 64`, one dispatcher) and against a thread-per-request
//!    baseline (`max_batch = 1`, one dispatcher per client). Short
//!    queries and high client counts are exactly the regime where
//!    per-request dispatch drowns in scheduler churn — dozens of ready
//!    executor threads, a wakeup per request — and coalescing turns that
//!    into one wakeup per batch. Every served answer is asserted
//!    bit-identical to a direct `query_batch_isolated` call *before*
//!    anything is timed; the headline is requests/sec and the realized
//!    mean batch size.
//! 2. **Latency vs offered load** — client-observed p50/p90/p99 as the
//!    number of closed-loop clients grows. The adaptive close policy
//!    should deepen batches (reported) instead of letting the queue grow
//!    unboundedly.
//! 3. **Overload degradation** — a quota-limited server under rising
//!    offered concurrency. Rejections must be *typed* (`Retry` /
//!    `Overload`), never transport errors or hangs, and every answer that
//!    is served must remain bit-identical to the direct call.
//!
//! Results are printed as tables and written to `BENCH_serve.json`.

use crate::report::Table;
use crate::{time_ms, Config};
use planar_core::{
    ConcurrencyConfig, ConcurrentShardedIndexSet, ExecutionConfig, IndexConfig, InequalityQuery,
    PartitionScheme, ShardConfig, ShardedIndexSet, VecStore,
};
use planar_datagen::queries::{eq18_domain, Eq18Generator};
use planar_datagen::synthetic::{SyntheticConfig, SyntheticKind};
use planar_datagen::SYNTHETIC_N;
use planar_serve::{AdmissionConfig, BatchPolicy, Client, Response, ServeConfig, Server};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Dataset dimensionality.
const DIM: usize = 8;
/// RQ of the Eq. 18 query template.
const RQ: usize = 4;
/// Index budget.
const BUDGET: usize = 16;
/// Shards in the served engine.
const SHARDS: usize = 4;
/// Closed-loop clients for the dispatch comparison.
const DISPATCH_CLIENTS: usize = 32;
/// Requests per client in the dispatch comparison.
const DISPATCH_REQUESTS: usize = 40;
/// Repetitions per dispatch policy (best rep reported — see arm 1).
const DISPATCH_REPS: usize = 3;
/// Client counts for the latency-vs-load sweep.
const LOAD_SWEEP: [usize; 4] = [1, 2, 4, 8];
/// Requests per client in the latency sweep.
const LOAD_REQUESTS: usize = 30;
/// Client counts for the overload sweep.
const OVERLOAD_SWEEP: [usize; 4] = [1, 2, 4, 8];
/// Requests per client in the overload sweep.
const OVERLOAD_REQUESTS: usize = 50;
/// Tenant quota (requests/sec) for the overload arm — far below what
/// the sweep offers at high concurrency, so rejects must appear.
/// Queries on the 1M-row engine cost ~20ms, so even one closed-loop
/// client offers ~50/s; 20/s binds from two clients up.
const OVERLOAD_RATE: f64 = 20.0;
/// Tenant burst for the overload arm.
const OVERLOAD_BURST: f64 = 5.0;

/// One client's view of a sweep outcome.
#[derive(Default, Clone)]
struct Outcome {
    served: usize,
    retries: usize,
    overloads: usize,
}

/// The `serve` experiment (see module docs).
pub fn serve(cfg: &Config) {
    // Two engines, two regimes. The latency and overload arms want
    // queries expensive enough (tens of ms at the default scale) that
    // deadlines and quotas bind, so they get cfg.scaled(20M) = 1M points
    // at the default 0.05 scale — sized like the `shard` experiment. The
    // dispatch arm wants the opposite: short (sub-ms) queries from many
    // clients, the regime where per-request dispatch pays a scheduler
    // wakeup per query and coalescing amortizes it — so it gets n/5.
    let n = cfg.scaled(20 * SYNTHETIC_N);
    let n_dispatch = cfg.scaled(4 * SYNTHETIC_N);
    let (engine, queries, expected) = build_served_engine(cfg, n);
    let (dispatch_engine, dispatch_queries, dispatch_expected) =
        build_served_engine(cfg, n_dispatch);

    // ---- Arm 1: coalesced vs per-request dispatch ----------------------
    // The per-request baseline models thread-per-request execution: one
    // executor per client, every request its own engine batch and its own
    // dispatcher wakeup, all executors timeslicing one core. The
    // coalesced policy funnels the same offered load through one
    // dispatcher as shard-major engine batches. Each policy runs
    // DISPATCH_REPS times and reports its best rep: with 64 threads on
    // one core a single scheduler hiccup can swallow 30% of a rep, and
    // best-of de-noises both arms the same way.
    let mut dispatch_rows: Vec<(&str, f64, f64, f64)> = Vec::new();
    for (label, max_batch, dispatchers) in [
        ("coalesced", 64usize, 1usize),
        ("per_request", 1usize, DISPATCH_CLIENTS),
    ] {
        let mut best: Option<(f64, f64)> = None; // (wall_ms, mean_batch)
        for rep in 0..DISPATCH_REPS {
            let server = Server::start(
                Arc::clone(&dispatch_engine),
                ServeConfig {
                    batch: BatchPolicy {
                        max_batch,
                        // Generous close budget: on a single core it takes
                        // a few ms for a burst of clients to all get
                        // scheduled and their frames decoded; the
                        // gap-close policy still dispatches far earlier
                        // once a burst drains.
                        max_wait: Duration::from_millis(5),
                    },
                    dispatchers,
                    ..ServeConfig::default()
                },
            )
            .expect("start server");
            let addr = server.addr();

            // Identity gate before timing: one client runs the whole
            // query set and every answer must equal the direct call's.
            if rep == 0 {
                let mut client = Client::connect(addr).expect("connect");
                for (q, want) in dispatch_queries.iter().zip(dispatch_expected.iter()) {
                    match client.query(q.a(), q.cmp(), q.b()).expect("query") {
                        Response::Matches { ids, .. } => {
                            assert_eq!(&ids, want, "served answer diverged ({label})");
                        }
                        other => panic!("unexpected response {other:?}"),
                    }
                }
            }

            let barrier = Arc::new(Barrier::new(DISPATCH_CLIENTS + 1));
            let handles: Vec<_> = (0..DISPATCH_CLIENTS)
                .map(|c| {
                    let barrier = Arc::clone(&barrier);
                    let queries = Arc::clone(&dispatch_queries);
                    std::thread::spawn(move || {
                        let mut client = Client::connect(addr).expect("connect");
                        barrier.wait();
                        for r in 0..DISPATCH_REQUESTS {
                            let q = &queries[(c + r) % queries.len()];
                            match client.query(q.a(), q.cmp(), q.b()).expect("query") {
                                Response::Matches { .. } => {}
                                other => panic!("unexpected response {other:?}"),
                            }
                        }
                    })
                })
                .collect();
            let ((), wall_ms) = time_ms(|| {
                barrier.wait();
                for h in handles {
                    h.join().expect("client thread");
                }
            });
            let metrics = server.metrics();
            let batches = metrics.batches.load(Ordering::Relaxed).max(1);
            let coalesced = metrics.coalesced.load(Ordering::Relaxed);
            let mean_batch = coalesced as f64 / batches as f64;
            server.shutdown();
            if best.is_none_or(|(w, _)| wall_ms < w) {
                best = Some((wall_ms, mean_batch));
            }
        }
        let (wall_ms, mean_batch) = best.expect("at least one rep");
        let total = (DISPATCH_CLIENTS * DISPATCH_REQUESTS) as f64;
        dispatch_rows.push((label, total / (wall_ms / 1e3), mean_batch, wall_ms));
    }

    let mut t = Table::new(
        &format!(
            "Dispatch policy: {DISPATCH_CLIENTS} clients x {DISPATCH_REQUESTS} requests, n={n_dispatch}"
        ),
        &["policy", "req/s", "mean batch", "wall ms"],
    );
    for (label, rps, mean_batch, wall) in &dispatch_rows {
        t.row(vec![
            (*label).into(),
            format!("{rps:.0}"),
            format!("{mean_batch:.2}"),
            format!("{wall:.1}"),
        ]);
    }
    t.print();
    let coalesced_rps = dispatch_rows[0].1;
    let per_request_rps = dispatch_rows[1].1;
    println!(
        "  coalesced/per-request throughput ratio: {:.2}x\n",
        coalesced_rps / per_request_rps
    );

    // ---- Arm 2: latency percentiles vs offered load --------------------
    let mut load_rows: Vec<(usize, u64, u64, u64, f64, f64)> = Vec::new();
    for &clients in &LOAD_SWEEP {
        let server =
            Server::start(Arc::clone(&engine), ServeConfig::default()).expect("start server");
        let addr = server.addr();
        let barrier = Arc::new(Barrier::new(clients));
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let barrier = Arc::clone(&barrier);
                let queries = Arc::clone(&queries);
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut lat = Vec::with_capacity(LOAD_REQUESTS);
                    barrier.wait();
                    for r in 0..LOAD_REQUESTS {
                        let q = &queries[(c + r) % queries.len()];
                        let t0 = Instant::now();
                        match client.query(q.a(), q.cmp(), q.b()).expect("query") {
                            Response::Matches { .. } => {}
                            other => panic!("unexpected response {other:?}"),
                        }
                        lat.push(t0.elapsed().as_micros() as u64);
                    }
                    lat
                })
            })
            .collect();
        let mut latencies: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect();
        latencies.sort_unstable();
        let pct =
            |p: f64| latencies[((latencies.len() as f64 * p) as usize).min(latencies.len() - 1)];
        let metrics = server.metrics();
        let batches = metrics.batches.load(Ordering::Relaxed).max(1);
        let mean_batch = metrics.coalesced.load(Ordering::Relaxed) as f64 / batches as f64;
        let total_s = latencies.iter().sum::<u64>() as f64 / 1e6;
        let rps = latencies.len() as f64 / (total_s / clients as f64);
        load_rows.push((clients, pct(0.50), pct(0.90), pct(0.99), mean_batch, rps));
        server.shutdown();
    }

    let mut t = Table::new(
        &format!("Latency vs offered load ({LOAD_REQUESTS} requests/client)"),
        &[
            "clients",
            "p50 us",
            "p90 us",
            "p99 us",
            "mean batch",
            "req/s",
        ],
    );
    for (clients, p50, p90, p99, mean_batch, rps) in &load_rows {
        t.row(vec![
            clients.to_string(),
            p50.to_string(),
            p90.to_string(),
            p99.to_string(),
            format!("{mean_batch:.2}"),
            format!("{rps:.0}"),
        ]);
    }
    t.print();
    println!();

    // ---- Arm 3: overload degradation -----------------------------------
    let checked = Arc::new(AtomicUsize::new(0));
    let mut overload_rows: Vec<(usize, usize, usize, usize)> = Vec::new();
    for &clients in &OVERLOAD_SWEEP {
        let server = Server::start(
            Arc::clone(&engine),
            ServeConfig {
                admission: AdmissionConfig {
                    tenant_rate: OVERLOAD_RATE,
                    tenant_burst: OVERLOAD_BURST,
                    max_queue: 64,
                    ..AdmissionConfig::default()
                },
                ..ServeConfig::default()
            },
        )
        .expect("start server");
        let addr = server.addr();
        let barrier = Arc::new(Barrier::new(clients));
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let barrier = Arc::clone(&barrier);
                let queries = Arc::clone(&queries);
                let expected = Arc::clone(&expected);
                let checked = Arc::clone(&checked);
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut out = Outcome::default();
                    barrier.wait();
                    for r in 0..OVERLOAD_REQUESTS {
                        let i = (c + r) % queries.len();
                        let q = &queries[i];
                        // All clients share tenant 1 so the quota is the
                        // binding constraint as concurrency grows.
                        match client
                            .query_as(1, None, q.a(), q.cmp(), q.b())
                            .expect("transport must not fail under overload")
                        {
                            Response::Matches { ids, .. } => {
                                assert_eq!(
                                    &ids, &expected[i],
                                    "served answer diverged under overload"
                                );
                                checked.fetch_add(1, Ordering::Relaxed);
                                out.served += 1;
                            }
                            Response::Retry { .. } => out.retries += 1,
                            Response::Overload { .. } => out.overloads += 1,
                            other => panic!("untyped degradation: {other:?}"),
                        }
                    }
                    out
                })
            })
            .collect();
        let mut total = Outcome::default();
        for h in handles {
            let o = h.join().expect("client thread");
            total.served += o.served;
            total.retries += o.retries;
            total.overloads += o.overloads;
        }
        let offered = clients * OVERLOAD_REQUESTS;
        assert_eq!(
            total.served + total.retries + total.overloads,
            offered,
            "every request must get a typed response"
        );
        overload_rows.push((clients, total.served, total.retries, total.overloads));
        server.shutdown();
    }

    let mut t = Table::new(
        &format!(
            "Overload degradation (tenant quota {OVERLOAD_RATE}/s, burst {OVERLOAD_BURST}, {OVERLOAD_REQUESTS} requests/client)"
        ),
        &["clients", "served", "retries", "overloads"],
    );
    for (clients, served, retries, overloads) in &overload_rows {
        t.row(vec![
            clients.to_string(),
            served.to_string(),
            retries.to_string(),
            overloads.to_string(),
        ]);
    }
    t.print();
    let last = overload_rows.last().expect("sweep not empty");
    assert!(
        last.2 + last.3 > 0,
        "the top of the overload sweep must produce typed rejects"
    );
    println!(
        "  bit-identity checked on {} served answers under overload\n",
        checked.load(Ordering::Relaxed)
    );

    let json = render_json(
        cfg,
        n,
        n_dispatch,
        &dispatch_rows,
        &load_rows,
        &overload_rows,
    );
    let path = "BENCH_serve.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("[harness] wrote {path}"),
        Err(e) => eprintln!("[harness] could not write {path}: {e}"),
    }
}

/// A served engine plus its query set and direct-call ground truth.
type ServedEngine = (
    Arc<ConcurrentShardedIndexSet<VecStore>>,
    Arc<Vec<InequalityQuery>>,
    Arc<Vec<Vec<u32>>>,
);

/// Build one served engine: synthetic table, Eq. 18 query set, sharded
/// index behind the concurrent wrapper, and direct-call ground truth.
fn build_served_engine(cfg: &Config, n: usize) -> ServedEngine {
    let table = SyntheticConfig::paper(SyntheticKind::Independent, n, DIM).generate();
    let mut generator =
        Eq18Generator::new(&table, RQ, cfg.seed ^ 0x5EF7E).with_inequality_parameter(0.25);
    let queries: Vec<InequalityQuery> = generator.queries(cfg.queries.max(16));

    let set = ShardedIndexSet::<VecStore>::build(
        table,
        eq18_domain(DIM, RQ),
        IndexConfig::with_budget(BUDGET).seed(cfg.seed),
        ShardConfig {
            shards: SHARDS,
            scheme: PartitionScheme::PilotKeyRange,
        },
    )
    .expect("serve experiment build");
    let engine = Arc::new(ConcurrentShardedIndexSet::new(
        set,
        ConcurrencyConfig::default(),
    ));

    // Ground truth for every query, from a direct in-process batch call.
    let expected: Vec<Vec<u32>> = engine
        .snapshot()
        .query_batch_isolated(&queries, &ExecutionConfig::serial())
        .into_iter()
        .map(|r| r.expect("direct ground truth").matches)
        .collect();
    (engine, Arc::new(queries), Arc::new(expected))
}

/// Hand-rolled JSON (the workspace has no serde).
fn render_json(
    cfg: &Config,
    n: usize,
    n_dispatch: usize,
    dispatch_rows: &[(&str, f64, f64, f64)],
    load_rows: &[(usize, u64, u64, u64, f64, f64)],
    overload_rows: &[(usize, usize, usize, usize)],
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"serve\",\n");
    out.push_str(&format!("  \"n\": {n},\n"));
    out.push_str(&format!("  \"n_dispatch\": {n_dispatch},\n"));
    out.push_str(&format!("  \"dispatch_clients\": {DISPATCH_CLIENTS},\n"));
    out.push_str(&format!("  \"dim\": {DIM},\n"));
    out.push_str(&format!("  \"budget\": {BUDGET},\n"));
    out.push_str(&format!("  \"shards\": {SHARDS},\n"));
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str(&format!(
        "  \"host_cpus\": {},\n",
        std::thread::available_parallelism().map_or(1, |p| p.get())
    ));
    out.push_str("  \"dispatch\": [\n");
    for (i, (label, rps, mean_batch, wall)) in dispatch_rows.iter().enumerate() {
        let comma = if i + 1 == dispatch_rows.len() {
            ""
        } else {
            ","
        };
        out.push_str(&format!(
            "    {{\"policy\": \"{label}\", \"requests_per_sec\": {rps:.1}, \"mean_batch\": {mean_batch:.3}, \"wall_ms\": {wall:.2}}}{comma}\n"
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"coalesced_speedup\": {:.3},\n",
        dispatch_rows[0].1 / dispatch_rows[1].1
    ));
    out.push_str("  \"latency_vs_load\": [\n");
    for (i, (clients, p50, p90, p99, mean_batch, rps)) in load_rows.iter().enumerate() {
        let comma = if i + 1 == load_rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"clients\": {clients}, \"p50_us\": {p50}, \"p90_us\": {p90}, \"p99_us\": {p99}, \"mean_batch\": {mean_batch:.3}, \"requests_per_sec\": {rps:.1}}}{comma}\n"
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"overload\": [\n");
    for (i, (clients, served, retries, overloads)) in overload_rows.iter().enumerate() {
        let comma = if i + 1 == overload_rows.len() {
            ""
        } else {
            ","
        };
        out.push_str(&format!(
            "    {{\"clients\": {clients}, \"served\": {served}, \"retries\": {retries}, \"overloads\": {overloads}}}{comma}\n"
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}
