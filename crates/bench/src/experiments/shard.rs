//! Sharded engine experiment: batched inequality and top-k throughput at
//! 1, 2, 4 and 8 shards vs the unsharded engine on the same large-n
//! synthetic workload, with every answer checked identical against the
//! unsharded baseline before it is timed as a win. Results are printed as
//! a table and written to `BENCH_shard.json`.
//!
//! Both engines are timed on the serial executor, so the curve isolates
//! what the sharded *layout* buys on one core: shard-major batch execution
//! keeps one shard's rows and key stores cache-resident across the whole
//! batch while the unsharded engine's working set streams from DRAM, and
//! range partitioning lets shards outside a query's key band be settled
//! wholesale. Verified-work totals are conserved by partitioning (every
//! matched point must still be confirmed somewhere), so the single-core
//! speedup is bounded by the DRAM-to-cache latency ratio — about 2x on
//! the reference host. On a multi-core host the same fan-out additionally
//! scales with `min(shards, cores)` through `ExecutionConfig` threads;
//! `host_cpus` is recorded in the JSON so the two regimes are not
//! conflated when reading results.

use crate::report::{ms, Table};
use crate::{time_ms, Config};
use planar_core::{
    ExecutionConfig, IndexConfig, InequalityQuery, PartitionScheme, PlanarIndexSet, ShardConfig,
    ShardedIndexSet, TopKQuery, VecStore,
};
use planar_datagen::queries::{eq18_domain, Eq18Generator};
use planar_datagen::synthetic::{SyntheticConfig, SyntheticKind};
use planar_datagen::SYNTHETIC_N;

/// Dataset dimensionality for the sharded workload.
const DIM: usize = 8;
/// RQ of the Eq. 18 query template.
const RQ: usize = 4;
/// Index budget per engine. Every shard gets the same budget the
/// unsharded baseline gets: the experiment measures partitioned execution,
/// not a bigger aggregate index.
const BUDGET: usize = 32;
/// Neighbors per top-k query.
const K: usize = 10;
/// Timing repetitions per configuration (the minimum is reported).
const REPS: usize = 3;
/// Shard counts to sweep. One shard measures the fan-out overhead floor.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Sweep {
    shards: usize,
    build_ms: f64,
    batch_ms: f64,
    topk_ms: f64,
}

/// The `shard` experiment (see module docs).
pub fn shard(cfg: &Config) {
    // cfg.scaled(40M) = 2M points at the default 0.05 scale. Sized so the
    // unsharded engine's working set (row table + key stores) overflows
    // even a large server L3 and verification streams from DRAM, while a
    // single shard's working set stays cache-resident.
    let n = cfg.scaled(40 * SYNTHETIC_N);
    let table = SyntheticConfig::paper(SyntheticKind::Independent, n, DIM).generate();
    let batch = (cfg.queries * 8).max(160);

    let build_cfg = || IndexConfig::with_budget(BUDGET).seed(cfg.seed);
    let baseline: PlanarIndexSet<VecStore> =
        PlanarIndexSet::build(table.clone(), eq18_domain(DIM, RQ), build_cfg())
            .expect("shard experiment baseline build");
    let mut generator =
        Eq18Generator::new(baseline.table(), RQ, cfg.seed ^ 0xBEEF).with_inequality_parameter(0.25);
    let queries: Vec<InequalityQuery> = generator.queries(batch);
    let topk_queries: Vec<TopKQuery> = queries
        .iter()
        .map(|q| TopKQuery::new(q.clone(), K).expect("k > 0"))
        .collect();

    let exec = ExecutionConfig::serial();
    let expected = baseline.query_batch(&queries, &exec).expect("warm batch");
    let expected_topk = baseline
        .top_k_batch(&topk_queries, &exec)
        .expect("warm topk");
    let mut base_batch_ms = f64::INFINITY;
    let mut base_topk_ms = f64::INFINITY;
    for _ in 0..REPS {
        let (out, t) = time_ms(|| baseline.query_batch(&queries, &exec).expect("batch"));
        assert_eq!(out.len(), queries.len());
        base_batch_ms = base_batch_ms.min(t);
        let (out, t) = time_ms(|| {
            baseline
                .top_k_batch(&topk_queries, &exec)
                .expect("topk batch")
        });
        assert_eq!(out.len(), topk_queries.len());
        base_topk_ms = base_topk_ms.min(t);
    }

    let mut sweeps: Vec<Sweep> = Vec::new();
    for &shards in &SHARD_COUNTS {
        let shard_cfg = ShardConfig {
            shards,
            scheme: PartitionScheme::PilotKeyRange,
        };
        let (set, build_ms) = time_ms(|| {
            ShardedIndexSet::<VecStore>::build(
                table.clone(),
                eq18_domain(DIM, RQ),
                build_cfg(),
                shard_cfg,
            )
            .expect("sharded build")
        });

        // Answer identity first: every inequality id set and every top-k
        // neighbor list (ids and bit-exact distances) must match the
        // unsharded engine before this shard count is timed.
        let got = set.query_batch(&queries, &exec).expect("verify batch");
        for (sharded, unsharded) in got.iter().zip(&expected) {
            assert_eq!(
                sharded.sorted_ids(),
                unsharded.sorted_ids(),
                "sharded inequality answers diverged at {shards} shards"
            );
        }
        let got = set
            .top_k_batch(&topk_queries, &exec)
            .expect("verify topk batch");
        for (sharded, unsharded) in got.iter().zip(&expected_topk) {
            assert_eq!(
                sharded.neighbors.len(),
                unsharded.neighbors.len(),
                "sharded top-k size diverged at {shards} shards"
            );
            for (a, b) in sharded.neighbors.iter().zip(&unsharded.neighbors) {
                assert_eq!(a.0, b.0, "sharded top-k ids diverged at {shards} shards");
                assert_eq!(
                    a.1.to_bits(),
                    b.1.to_bits(),
                    "sharded top-k distances diverged at {shards} shards"
                );
            }
        }

        let mut batch_ms = f64::INFINITY;
        let mut topk_ms = f64::INFINITY;
        for _ in 0..REPS {
            let (out, t) = time_ms(|| set.query_batch(&queries, &exec).expect("batch"));
            assert_eq!(out.len(), queries.len());
            batch_ms = batch_ms.min(t);
            let (out, t) = time_ms(|| set.top_k_batch(&topk_queries, &exec).expect("topk batch"));
            assert_eq!(out.len(), topk_queries.len());
            topk_ms = topk_ms.min(t);
        }

        sweeps.push(Sweep {
            shards,
            build_ms,
            batch_ms,
            topk_ms,
        });
    }

    let mut t = Table::new(
        &format!(
            "Sharded engine: n={n}, dim={DIM}, #index={BUDGET}/shard, batch={batch} queries, \
             range partitioner, answers verified vs unsharded"
        ),
        &[
            "shards", "build_ms", "batch_ms", "batch_x", "qps", "topk_ms", "topk_x",
        ],
    );
    t.row(vec![
        "none".into(),
        "-".into(),
        ms(base_batch_ms),
        "1.00".into(),
        format!("{:.0}", batch as f64 / (base_batch_ms / 1e3)),
        ms(base_topk_ms),
        "1.00".into(),
    ]);
    for s in &sweeps {
        t.row(vec![
            s.shards.to_string(),
            ms(s.build_ms),
            ms(s.batch_ms),
            format!("{:.2}", base_batch_ms / s.batch_ms),
            format!("{:.0}", batch as f64 / (s.batch_ms / 1e3)),
            ms(s.topk_ms),
            format!("{:.2}", base_topk_ms / s.topk_ms),
        ]);
    }
    t.print();

    let json = render_json(n, batch, base_batch_ms, base_topk_ms, &sweeps);
    let path = "BENCH_shard.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("[harness] wrote {path}"),
        Err(e) => eprintln!("[harness] could not write {path}: {e}"),
    }
}

/// Hand-rolled JSON (the workspace has no serde): the unsharded baseline
/// plus one object per shard count with speedups over that baseline.
fn render_json(
    n: usize,
    batch: usize,
    base_batch_ms: f64,
    base_topk_ms: f64,
    sweeps: &[Sweep],
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"shard\",\n");
    let host = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    out.push_str(&format!("  \"host_cpus\": {host},\n"));
    out.push_str(&format!("  \"n\": {n},\n"));
    out.push_str(&format!("  \"dim\": {DIM},\n"));
    out.push_str(&format!("  \"budget_per_shard\": {BUDGET},\n"));
    out.push_str(&format!("  \"batch_queries\": {batch},\n"));
    out.push_str("  \"partitioner\": \"pilot_key_range\",\n");
    out.push_str("  \"answers_verified\": true,\n");
    out.push_str(&format!(
        "  \"unsharded\": {{\"batch_ms\": {base_batch_ms:.3}, \"topk_ms\": {base_topk_ms:.3}}},\n"
    ));
    out.push_str("  \"sweep\": [\n");
    for (i, s) in sweeps.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"shards\": {}, \"build_ms\": {:.3}, ",
                "\"batch_ms\": {:.3}, \"batch_speedup\": {:.3}, ",
                "\"batch_queries_per_s\": {:.1}, ",
                "\"topk_ms\": {:.3}, \"topk_speedup\": {:.3}}}{}\n"
            ),
            s.shards,
            s.build_ms,
            s.batch_ms,
            base_batch_ms / s.batch_ms,
            batch as f64 / (s.batch_ms / 1e3),
            s.topk_ms,
            base_topk_ms / s.topk_ms,
            if i + 1 == sweeps.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_sweep_covers_one_through_eight() {
        assert_eq!(SHARD_COUNTS, [1, 2, 4, 8]);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let sweeps = vec![
            Sweep {
                shards: 1,
                build_ms: 50.0,
                batch_ms: 10.0,
                topk_ms: 8.0,
            },
            Sweep {
                shards: 8,
                build_ms: 60.0,
                batch_ms: 2.5,
                topk_ms: 4.0,
            },
        ];
        let json = render_json(1000, 160, 10.0, 8.0, &sweeps);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"shards\"").count(), 2);
        assert!(json.contains("\"batch_speedup\": 4.000"));
        assert!(json.contains("\"topk_speedup\": 2.000"));
        assert!(json.contains("\"answers_verified\": true"));
    }
}
