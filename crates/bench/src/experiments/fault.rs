//! Fault-tolerance experiment: what does robustness cost?
//!
//! Two questions the lifecycle work raises, answered with numbers:
//!
//! 1. **Recovery vs cold rebuild** — when one index section of a snapshot
//!    is corrupt, `load_or_recover` salvages the core and rebuilds only the
//!    quarantined index. How does that compare with a clean load and with
//!    rebuilding the whole set from raw rows?
//! 2. **Degraded vs healthy latency** — with every index quarantined the
//!    engine serves exact answers via the scan path. How much slower is
//!    that worst-case degraded service than indexed service?
//!
//! Results are printed as tables and written to `BENCH_fault.json`.

use crate::report::{ms, Table};
use crate::{time_ms, Config};
use planar_core::fault::{Corruption, TempDir};
use planar_core::{
    ExecutionConfig, IndexConfig, InequalityQuery, PlanarIndexSet, QueryScratch, VecStore,
};
use planar_datagen::queries::{eq18_domain, Eq18Generator};
use planar_datagen::synthetic::{SyntheticConfig, SyntheticKind};
use planar_datagen::SYNTHETIC_N;

/// Dataset dimensionality.
const DIM: usize = 8;
/// RQ of the Eq. 18 query template.
const RQ: usize = 4;
/// Index budget — enough that rebuilding one index is visibly cheaper than
/// rebuilding all of them.
const BUDGET: usize = 16;
/// Timing repetitions per measurement (the mean is reported).
const REPS: usize = 3;

struct Lifecycle {
    snapshot_bytes: usize,
    cold_build_ms: f64,
    save_ms: f64,
    clean_load_ms: f64,
    recover_ms: f64,
    rebuilt_indices: usize,
}

struct Serving {
    healthy_ms: f64,
    degraded_ms: f64,
}

/// The `fault` experiment (see module docs).
pub fn fault(cfg: &Config) {
    let n = cfg.scaled(2 * SYNTHETIC_N);
    let table = SyntheticConfig::paper(SyntheticKind::Independent, n, DIM).generate();
    let build_cfg = || IndexConfig::with_budget(BUDGET).seed(cfg.seed);

    let (set, cold_build_ms) = {
        let mut total = 0.0;
        let mut built = None;
        for _ in 0..REPS {
            let (s, t) = time_ms(|| {
                PlanarIndexSet::<VecStore>::build(table.clone(), eq18_domain(DIM, RQ), build_cfg())
                    .expect("fault experiment build")
            });
            built = Some(s);
            total += t;
        }
        (built.expect("REPS > 0"), total / REPS as f64)
    };

    let dir = TempDir::new("bench-fault").expect("temp dir");
    let path = dir.file("snapshot.plnr");
    let mut save_ms = 0.0;
    for _ in 0..REPS {
        let (_, t) = time_ms(|| set.save_to(&path).expect("save"));
        save_ms += t;
    }
    save_ms /= REPS as f64;
    let pristine = std::fs::read(&path).expect("read snapshot");

    let mut clean_load_ms = 0.0;
    for _ in 0..REPS {
        let (loaded, t) = time_ms(|| PlanarIndexSet::<VecStore>::load_from(&path).expect("load"));
        assert_eq!(loaded.num_indices(), set.num_indices());
        clean_load_ms += t;
    }
    clean_load_ms /= REPS as f64;

    // Corrupt the tail of the file: per-index sections live after the core,
    // so this damages exactly one index section (the last), which recovery
    // quarantines and rebuilds from the intact core.
    let mut corrupt = pristine.clone();
    Corruption::BitFlip {
        offset: corrupt.len() - 20,
        bit: 3,
    }
    .apply(&mut corrupt);
    std::fs::write(&path, &corrupt).expect("write corrupt snapshot");

    let mut recover_ms = 0.0;
    let mut rebuilt_indices = 0;
    for _ in 0..REPS {
        let ((loaded, report), t) = time_ms(|| {
            PlanarIndexSet::<VecStore>::load_or_recover(&path).expect("recovering load")
        });
        assert_eq!(loaded.num_indices(), set.num_indices());
        rebuilt_indices = report.rebuilt.len();
        assert!(rebuilt_indices > 0, "corruption must quarantine something");
        recover_ms += t;
    }
    recover_ms /= REPS as f64;
    std::fs::write(&path, &pristine).expect("restore snapshot");

    let lifecycle = Lifecycle {
        snapshot_bytes: pristine.len(),
        cold_build_ms,
        save_ms,
        clean_load_ms,
        recover_ms,
        rebuilt_indices,
    };

    // Degraded vs healthy serving on the same query workload.
    // Selective queries (small accepting interval) so the indexed path has
    // pruning to lose: the degraded slowdown is the cost of giving that up.
    let mut generator =
        Eq18Generator::new(set.table(), RQ, cfg.seed ^ 0xFA17).with_inequality_parameter(0.05);
    let queries: Vec<InequalityQuery> = generator.queries(cfg.queries.max(20));
    let exec = ExecutionConfig::serial();
    let mut scratch = QueryScratch::new();

    let mut healthy_ms = 0.0;
    for _ in 0..REPS {
        let (_, t) = time_ms(|| {
            for q in &queries {
                let out = set
                    .query_with(q, &exec, &mut scratch)
                    .expect("healthy query");
                assert!(!out.served_by.is_degraded());
            }
        });
        healthy_ms += t;
    }
    healthy_ms /= REPS as f64;

    let mut degraded_set = set;
    for pos in 0..degraded_set.num_indices() {
        degraded_set.quarantine(pos);
    }
    let mut degraded_ms = 0.0;
    for _ in 0..REPS {
        let (_, t) = time_ms(|| {
            for q in &queries {
                let out = degraded_set
                    .query_with(q, &exec, &mut scratch)
                    .expect("degraded query");
                assert!(out.served_by.is_degraded());
            }
        });
        degraded_ms += t;
    }
    degraded_ms /= REPS as f64;

    let serving = Serving {
        healthy_ms,
        degraded_ms,
    };

    let mut t = Table::new(
        &format!("Index lifecycle: n={n}, dim={DIM}, #index={BUDGET}"),
        &["phase", "time_ms", "vs cold build"],
    );
    for (phase, v) in [
        ("cold build", lifecycle.cold_build_ms),
        ("save", lifecycle.save_ms),
        ("clean load", lifecycle.clean_load_ms),
        ("recover (1 bad section)", lifecycle.recover_ms),
    ] {
        t.row(vec![
            phase.to_string(),
            ms(v),
            format!("{:.2}x", v / lifecycle.cold_build_ms),
        ]);
    }
    t.print();

    let mut t = Table::new(
        &format!("Serving: {} queries, serial", queries.len()),
        &["mode", "time_ms", "slowdown"],
    );
    t.row(vec![
        "healthy (indexed)".into(),
        ms(serving.healthy_ms),
        "1.00x".into(),
    ]);
    t.row(vec![
        "degraded (all quarantined)".into(),
        ms(serving.degraded_ms),
        format!("{:.2}x", serving.degraded_ms / serving.healthy_ms),
    ]);
    t.print();

    let json = render_json(cfg, n, queries.len(), &lifecycle, &serving);
    let path = "BENCH_fault.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("[harness] wrote {path}"),
        Err(e) => eprintln!("[harness] could not write {path}: {e}"),
    }
}

/// Hand-rolled JSON (the workspace has no serde).
fn render_json(cfg: &Config, n: usize, queries: usize, lc: &Lifecycle, sv: &Serving) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"fault\",\n");
    out.push_str(&format!("  \"n\": {n},\n"));
    out.push_str(&format!("  \"dim\": {DIM},\n"));
    out.push_str(&format!("  \"budget\": {BUDGET},\n"));
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str(&format!("  \"snapshot_bytes\": {},\n", lc.snapshot_bytes));
    out.push_str("  \"lifecycle_ms\": {\n");
    out.push_str(&format!("    \"cold_build\": {:.3},\n", lc.cold_build_ms));
    out.push_str(&format!("    \"save\": {:.3},\n", lc.save_ms));
    out.push_str(&format!("    \"clean_load\": {:.3},\n", lc.clean_load_ms));
    out.push_str(&format!("    \"recover\": {:.3}\n", lc.recover_ms));
    out.push_str("  },\n");
    out.push_str(&format!("  \"rebuilt_indices\": {},\n", lc.rebuilt_indices));
    out.push_str("  \"serving\": {\n");
    out.push_str(&format!("    \"queries\": {queries},\n"));
    out.push_str(&format!("    \"healthy_ms\": {:.3},\n", sv.healthy_ms));
    out.push_str(&format!("    \"degraded_ms\": {:.3},\n", sv.degraded_ms));
    out.push_str(&format!(
        "    \"degraded_slowdown\": {:.3}\n",
        sv.degraded_ms / sv.healthy_ms
    ));
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}
