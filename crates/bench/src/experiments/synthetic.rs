//! Synthetic-dataset experiments: Figures 7–13 and the Table 1 complexity
//! check.

use crate::report::{ms, pct, Table};
use crate::{time_ms, Config};
use planar_core::{
    DynamicPlanarIndexSet, HeapSize, IndexConfig, PlanarIndexSet, SeqScan, VecStore,
};
use planar_datagen::queries::{eq18_domain, Eq18Generator};
use planar_datagen::synthetic::{SyntheticConfig, SyntheticKind};
use planar_datagen::SYNTHETIC_N;

/// One measured configuration.
struct Measurement {
    index_ms: f64,
    baseline_ms: f64,
    pruning: f64,
}

/// Build a set and measure mean query time (indexed + baseline) and mean
/// pruning percentage over the config's query count.
fn measure(
    cfg: &Config,
    kind: SyntheticKind,
    n: usize,
    dim: usize,
    rq: usize,
    n_index: usize,
    inequality_parameter: f64,
) -> Measurement {
    let table = SyntheticConfig::paper(kind, n, dim).generate();
    let scan_table = table.clone();
    let set: PlanarIndexSet<VecStore> = PlanarIndexSet::build(
        table,
        eq18_domain(dim, rq),
        IndexConfig::with_budget(n_index).seed(cfg.seed),
    )
    .expect("synthetic build");
    let mut generator = Eq18Generator::new(set.table(), rq, cfg.seed ^ 0xBEEF)
        .with_inequality_parameter(inequality_parameter);
    let queries = generator.queries(cfg.queries);
    let scan = SeqScan::new(&scan_table);

    let mut index_ms = 0.0;
    let mut baseline_ms = 0.0;
    let mut pruning = 0.0;
    for q in &queries {
        let (out, t) = time_ms(|| set.query(q).expect("query"));
        index_ms += t;
        pruning += out.stats.pruning_percentage();
        let (_, tb) = time_ms(|| scan.evaluate(q).expect("scan"));
        baseline_ms += tb;
    }
    let k = queries.len() as f64;
    Measurement {
        index_ms: index_ms / k,
        baseline_ms: baseline_ms / k,
        pruning: pruning / k,
    }
}

/// Table 1 (empirical side): planar query time should grow ~logarithmically
/// with n at fixed selectivity regime, the baseline linearly.
pub fn table1(cfg: &Config) {
    let mut t = Table::new(
        "Table 1 (empirical): query time vs n — Planar O(d' log n + t) vs scan O(n d')",
        &["n", "planar_ms", "baseline_ms", "speedup"],
    );
    let base = cfg.scaled(SYNTHETIC_N);
    for frac in [0.01, 0.04, 0.16, 0.64, 1.0] {
        let n = ((base as f64 * frac) as usize).max(100);
        let m = measure(cfg, SyntheticKind::Independent, n, 6, 2, 50, 0.25);
        t.row(vec![
            n.to_string(),
            ms(m.index_ms),
            ms(m.baseline_ms),
            crate::report::speedup(m.baseline_ms, m.index_ms),
        ]);
    }
    t.print();
}

/// Figures 7 and 9: query time and pruning % vs dimensionality and RQ at
/// #index = 100.
pub fn fig7_9(cfg: &Config) {
    let n = cfg.scaled(SYNTHETIC_N);
    let mut time_table = Table::new(
        &format!("Fig 7: query time (ms), synthetic n={n}, #index=100"),
        &["dim", "RQ", "indp", "corr", "anti", "baseline"],
    );
    let mut prune_table = Table::new(
        &format!("Fig 9: pruning %, synthetic n={n}, #index=100"),
        &["dim", "RQ", "indp", "corr", "anti"],
    );
    for dim in [2usize, 6, 10, 14] {
        for rq in [2usize, 4, 8, 12] {
            let mut times = Vec::new();
            let mut prunes = Vec::new();
            let mut baseline = 0.0;
            for kind in SyntheticKind::ALL {
                let m = measure(cfg, kind, n, dim, rq, 100, 0.25);
                times.push(ms(m.index_ms));
                prunes.push(pct(m.pruning));
                baseline = m.baseline_ms; // comparable across kinds (paper notes this)
            }
            time_table.row(vec![
                dim.to_string(),
                rq.to_string(),
                times[0].clone(),
                times[1].clone(),
                times[2].clone(),
                ms(baseline),
            ]);
            prune_table.row(vec![
                dim.to_string(),
                rq.to_string(),
                prunes[0].clone(),
                prunes[1].clone(),
                prunes[2].clone(),
            ]);
        }
    }
    time_table.print();
    prune_table.print();
}

/// Figures 8 and 10: query time and pruning % vs dimensionality and #index
/// at RQ = 4.
pub fn fig8_10(cfg: &Config) {
    let n = cfg.scaled(SYNTHETIC_N);
    let mut time_table = Table::new(
        &format!("Fig 8: query time (ms), synthetic n={n}, RQ=4"),
        &["dim", "#index", "indp", "corr", "anti", "baseline"],
    );
    let mut prune_table = Table::new(
        &format!("Fig 10: pruning %, synthetic n={n}, RQ=4"),
        &["dim", "#index", "indp", "corr", "anti"],
    );
    for dim in [2usize, 6, 10, 14] {
        for n_index in [1usize, 10, 50, 100] {
            let mut times = Vec::new();
            let mut prunes = Vec::new();
            let mut baseline = 0.0;
            for kind in SyntheticKind::ALL {
                let m = measure(cfg, kind, n, dim, 4, n_index, 0.25);
                times.push(ms(m.index_ms));
                prunes.push(pct(m.pruning));
                baseline = m.baseline_ms;
            }
            time_table.row(vec![
                dim.to_string(),
                n_index.to_string(),
                times[0].clone(),
                times[1].clone(),
                times[2].clone(),
                ms(baseline),
            ]);
            prune_table.row(vec![
                dim.to_string(),
                n_index.to_string(),
                prunes[0].clone(),
                prunes[1].clone(),
                prunes[2].clone(),
            ]);
        }
    }
    time_table.print();
    prune_table.print();
}

/// Figure 11: query selectivity and query time vs the inequality parameter.
pub fn fig11(cfg: &Config) {
    let n = cfg.scaled(SYNTHETIC_N);
    let mut t = Table::new(
        &format!(
            "Fig 11: selectivity & query time vs inequality parameter, n={n}, #index=100, RQ=4"
        ),
        &[
            "dim",
            "ineq",
            "kind",
            "selectivity_%",
            "planar_ms",
            "baseline_ms",
        ],
    );
    for dim in [6usize, 10] {
        for s in [0.10, 0.25, 0.50, 0.75, 1.00] {
            for kind in SyntheticKind::ALL {
                let table = SyntheticConfig::paper(kind, n, dim).generate();
                let scan_table = table.clone();
                let set: PlanarIndexSet<VecStore> = PlanarIndexSet::build(
                    table,
                    eq18_domain(dim, 4),
                    IndexConfig::with_budget(100).seed(cfg.seed),
                )
                .expect("build");
                let mut generator = Eq18Generator::new(set.table(), 4, cfg.seed ^ 0xF11)
                    .with_inequality_parameter(s);
                let queries = generator.queries(cfg.queries);
                let scan = SeqScan::new(&scan_table);
                let mut planar_ms = 0.0;
                let mut baseline_ms = 0.0;
                let mut selectivity = 0.0;
                for q in &queries {
                    let (out, tq) = time_ms(|| set.query(q).expect("query"));
                    planar_ms += tq;
                    selectivity += 100.0 * out.matches.len() as f64 / n as f64;
                    let (_, tb) = time_ms(|| scan.evaluate(q).expect("scan"));
                    baseline_ms += tb;
                }
                let k = queries.len() as f64;
                t.row(vec![
                    dim.to_string(),
                    format!("{s:.2}"),
                    kind.name().to_string(),
                    pct(selectivity / k),
                    ms(planar_ms / k),
                    ms(baseline_ms / k),
                ]);
            }
        }
    }
    t.print();
}

/// Figure 12: index build time and query time vs number of data points.
pub fn fig12(cfg: &Config) {
    let base = cfg.scaled(SYNTHETIC_N);
    let mut build_table = Table::new(
        "Fig 12a: index build time (s) vs n (all synthetic kinds alike)",
        &["n", "#index=1", "#index=10", "#index=50", "#index=100"],
    );
    let mut query_tables: Vec<Table> = SyntheticKind::ALL
        .iter()
        .zip(['b', 'c', 'd'])
        .map(|(k, letter)| {
            Table::new(
                &format!("Fig 12{letter}: query time (ms) vs n — {}", k.name()),
                &[
                    "n",
                    "#index=1",
                    "#index=10",
                    "#index=50",
                    "#index=100",
                    "baseline",
                ],
            )
        })
        .collect();
    for frac in [0.1, 0.3, 0.5, 0.7, 1.0] {
        let n = ((base as f64 * frac) as usize).max(100);
        // Build times on indp (paper: independent of kind).
        let mut build_cells = vec![n.to_string()];
        for n_index in [1usize, 10, 50, 100] {
            let table = SyntheticConfig::paper(SyntheticKind::Independent, n, 6).generate();
            let (_, ms_build) = time_ms(|| {
                PlanarIndexSet::<VecStore>::build(
                    table,
                    eq18_domain(6, 4),
                    IndexConfig::with_budget(n_index).seed(cfg.seed),
                )
                .expect("build")
            });
            build_cells.push(format!("{:.2}", ms_build / 1e3));
        }
        build_table.row(build_cells);
        for (kind, qt) in SyntheticKind::ALL.iter().zip(&mut query_tables) {
            let mut cells = vec![n.to_string()];
            let mut baseline = 0.0;
            for n_index in [1usize, 10, 50, 100] {
                let m = measure(cfg, *kind, n, 6, 4, n_index, 0.25);
                cells.push(ms(m.index_ms));
                baseline = m.baseline_ms;
            }
            cells.push(ms(baseline));
            qt.row(cells);
        }
    }
    build_table.print();
    for qt in &query_tables {
        qt.print();
    }
}

/// Figure 13a: index construction time vs dimensionality and #index.
pub fn fig13a(cfg: &Config) {
    let n = cfg.scaled(SYNTHETIC_N);
    let mut t = Table::new(
        &format!("Fig 13a: index build time (s), n={n}"),
        &["dim", "#index=1", "#index=10", "#index=50", "#index=100"],
    );
    for dim in [2usize, 6, 10, 14] {
        let mut cells = vec![dim.to_string()];
        for n_index in [1usize, 10, 50, 100] {
            let table = SyntheticConfig::paper(SyntheticKind::Independent, n, dim).generate();
            let (_, ms_build) = time_ms(|| {
                PlanarIndexSet::<VecStore>::build(
                    table,
                    eq18_domain(dim, 4),
                    IndexConfig::with_budget(n_index).seed(cfg.seed),
                )
                .expect("build")
            });
            cells.push(format!("{:.2}", ms_build / 1e3));
        }
        t.row(cells);
    }
    t.print();
}

/// Figure 13b: memory consumption vs #index and dimensionality.
pub fn fig13b(cfg: &Config) {
    let n = cfg.scaled(SYNTHETIC_N);
    let mut t = Table::new(
        &format!("Fig 13b: memory (MB), n={n}"),
        &[
            "#index",
            "dim=2",
            "dim=6",
            "dim=10",
            "dim=14",
            "baseline(dim=14)",
        ],
    );
    for n_index in [1usize, 10, 50, 100] {
        let mut cells = vec![n_index.to_string()];
        let mut raw_mb = 0.0;
        for dim in [2usize, 6, 10, 14] {
            let table = SyntheticConfig::paper(SyntheticKind::Independent, n, dim).generate();
            raw_mb = table.heap_size() as f64 / (1024.0 * 1024.0);
            let set = PlanarIndexSet::<VecStore>::build(
                table,
                eq18_domain(dim, 4),
                IndexConfig::with_budget(n_index).seed(cfg.seed),
            )
            .expect("build");
            cells.push(format!(
                "{:.1}",
                set.memory_usage() as f64 / (1024.0 * 1024.0)
            ));
        }
        cells.push(format!("{raw_mb:.1}"));
        t.row(cells);
    }
    t.print();
}

/// Figure 13c: dynamic index update time vs fraction of points updated.
pub fn fig13c(cfg: &Config) {
    let n = cfg.scaled(SYNTHETIC_N);
    let n_index = 10usize;
    let mut t = Table::new(
        &format!("Fig 13c: per-index update time (ms), n={n}, #index={n_index} (B+-tree store)"),
        &["update_%", "dim=6", "dim=10"],
    );
    let mut rows: Vec<Vec<String>> = [1usize, 5, 10, 25]
        .iter()
        .map(|p| vec![p.to_string()])
        .collect();
    for dim in [6usize, 10] {
        let table = SyntheticConfig::paper(SyntheticKind::Independent, n, dim).generate();
        let mut set: DynamicPlanarIndexSet = PlanarIndexSet::build(
            table,
            eq18_domain(dim, 4),
            IndexConfig::with_budget(n_index).seed(cfg.seed),
        )
        .expect("build");
        // Updated rows cycle through precomputed replacement values.
        let replacement: Vec<f64> = (0..dim).map(|i| 1.0 + (i as f64) * 7.0 % 99.0).collect();
        for (row_idx, pct_updates) in [1usize, 5, 10, 25].iter().enumerate() {
            let count = (n * pct_updates / 100).max(1);
            let (_, total_ms) = time_ms(|| {
                for id in 0..count as u32 {
                    set.update_point(id, &replacement).expect("update");
                }
            });
            rows[row_idx].push(ms(total_ms / n_index as f64));
        }
    }
    for row in rows {
        t.row(row);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Config {
        Config {
            scale: 0.0002, // 200 points
            queries: 2,
            seed: 7,
            threads: 1,
        }
    }

    #[test]
    fn measure_runs_and_is_sane() {
        let m = measure(&tiny(), SyntheticKind::Correlated, 500, 4, 4, 10, 0.25);
        assert!(m.index_ms >= 0.0 && m.baseline_ms >= 0.0);
        assert!((0.0..=100.0).contains(&m.pruning));
    }

    #[test]
    fn table1_smoke() {
        table1(&tiny());
    }

    #[test]
    fn fig13c_smoke() {
        fig13c(&tiny());
    }
}
