//! Replication experiment: what does WAL shipping cost, and how fast
//! does a follower come back?
//!
//! Three questions the replication work raises, answered with numbers:
//!
//! 1. **Catch-up rate** — a fresh replica bootstraps (snapshot install
//!    plus frame tailing) against a primary with a long shipped backlog;
//!    the applied-records/second should beat the cold replay rate in
//!    `BENCH_wal.json`, because the replica batches its epoch publishes.
//! 2. **Steady-state lag** — a paced writer keeps mutating while the
//!    replica polls each round; the appended-minus-applied lag must stay
//!    bounded (and return to zero when the writer pauses).
//! 3. **Failover time** — elect + promote on the caught-up follower,
//!    through to the promoted primary's first accepted write.
//!
//! Every phase cross-checks follower reads against the primary's
//! answers at the same LSN — bit-identical or the experiment panics.
//! Results are printed as tables and written to `BENCH_replication.json`.

use crate::report::{ms, Table};
use crate::{time_ms, Config};
use planar_core::fault::TempDir;
use planar_core::replicate::ChannelTransport;
use planar_core::{
    elect, ConcurrencyConfig, ConcurrentDurableShardedIndexSet, FailoverConfig, FsyncPolicy,
    InequalityQuery, Primary, ReadConsistency, Replica, ShardConfig, ShardedIndexSet, VecStore,
    WalOptions,
};
use planar_datagen::queries::{eq18_domain, Eq18Generator};
use planar_datagen::synthetic::{SyntheticConfig, SyntheticKind};
use planar_datagen::SYNTHETIC_N;

/// Dataset dimensionality.
const DIM: usize = 8;
/// RQ of the Eq. 18 query template.
const RQ: usize = 4;
/// Index budget.
const BUDGET: usize = 8;
/// Shards (and WAL segment streams) in the replication group.
const SHARDS: usize = 4;
/// Backlog the fresh replica must catch up through.
const BACKLOG: usize = 2048;
/// Paced-writer rounds and batch size for the steady-state phase.
const PACED_ROUNDS: usize = 32;
const PACED_BATCH: usize = 32;

/// Pump/poll until the replica has applied everything the primary
/// appended. Returns the number of turns taken.
fn drain(primary: &mut Primary<VecStore>, replica: &mut Replica<VecStore>, now: &mut u64) -> usize {
    primary.store().sync().expect("sync");
    let appended = primary.store().wal_health().appended_lsn;
    let mut turns = 0;
    while !(replica.is_seeded() && replica.applied_lsn() >= appended) {
        *now += 50;
        turns += 1;
        primary.pump(*now).expect("pump");
        replica.poll(*now).expect("poll");
        assert!(turns < 100_000, "replication failed to converge");
    }
    // One more pump so the final ack is drained and the primary's view
    // of the replica converges too.
    *now += 50;
    primary.pump(*now).expect("pump");
    turns
}

/// Assert the follower answers bit-identically to the primary at the
/// LSN it has applied.
fn check_identical(
    primary: &Primary<VecStore>,
    replica: &Replica<VecStore>,
    queries: &[InequalityQuery],
) {
    let appended = primary.store().wal_health().appended_lsn;
    let read = replica
        .follower_read(ReadConsistency::AtLeast(appended))
        .expect("caught-up follower read");
    let psnap = primary.store().snapshot();
    for q in queries {
        assert_eq!(
            read.snapshot.query(q).expect("replica query").sorted_ids(),
            psnap.query(q).expect("primary query").sorted_ids(),
            "follower read diverged from primary at lsn {appended}"
        );
    }
}

/// The `replication` experiment (see module docs).
pub fn replication(cfg: &Config) {
    let n = cfg.scaled(SYNTHETIC_N / 10);
    let table = SyntheticConfig::paper(SyntheticKind::Independent, n + BACKLOG, DIM).generate();
    let rows: Vec<Vec<f64>> = (n..n + BACKLOG)
        .map(|i| table.row(i as u32).to_vec())
        .collect();
    let base = {
        let head: Vec<Vec<f64>> = (0..n).map(|i| table.row(i as u32).to_vec()).collect();
        planar_core::FeatureTable::from_rows(DIM, head).expect("base table")
    };
    let build = || {
        ShardedIndexSet::<VecStore>::build(
            base.clone(),
            eq18_domain(DIM, RQ),
            planar_core::IndexConfig::with_budget(BUDGET).seed(cfg.seed),
            ShardConfig::round_robin(SHARDS),
        )
        .expect("replication experiment build")
    };
    let mut generator =
        Eq18Generator::new(&base, RQ, cfg.seed ^ 0x5e11).with_inequality_parameter(0.2);
    let queries: Vec<InequalityQuery> = generator.queries(cfg.queries.max(16));

    let opts = WalOptions::default().fsync(FsyncPolicy::EveryN(64));
    let pdir = TempDir::new("bench-repl-primary").expect("temp dir");
    let rdir = TempDir::new("bench-repl-replica").expect("temp dir");
    let store = ConcurrentDurableShardedIndexSet::create(
        pdir.path().join("idx"),
        build(),
        opts,
        ConcurrencyConfig::default(),
    )
    .expect("create durable");
    let mut primary = Primary::new(store, FailoverConfig::default());

    // 1. Catch-up: a long backlog lands before the replica attaches.
    for row in &rows {
        primary.store().insert_point(row).expect("insert");
    }
    primary.store().sync().expect("sync");
    let down = ChannelTransport::new();
    let up = ChannelTransport::new();
    primary.add_replica(Box::new(down.clone()), Box::new(up.clone()));
    let mut replica: Replica<VecStore> = Replica::new(
        rdir.path().join("r0"),
        0,
        Box::new(down),
        Box::new(up),
        opts,
        FailoverConfig::default(),
    );
    let mut now = 0u64;
    // Seed phase: snapshot ship + validate + install (a fixed cost,
    // reported separately so the frame-apply rate is comparable to the
    // cold replay rate in BENCH_wal.json).
    let (seed_turns, seed_ms) = time_ms(|| {
        let mut turns = 0usize;
        while !replica.is_seeded() {
            now += 50;
            turns += 1;
            primary.pump(now).expect("pump");
            replica.poll(now).expect("poll");
            assert!(turns < 100_000, "snapshot seeding failed to converge");
        }
        turns
    });
    let applied_at_seed = replica.applied_lsn();
    let (frame_turns, frames_ms) = time_ms(|| drain(&mut primary, &mut replica, &mut now));
    let catch_up_ms = seed_ms + frames_ms;
    let frames_applied = replica.applied_lsn() - applied_at_seed;
    let catch_up_per_sec = frames_applied as f64 / (frames_ms.max(0.001) / 1e3);
    let turns = seed_turns + frame_turns;
    check_identical(&primary, &replica, &queries);
    let snapshots_installed = replica.stats().snapshots;

    let mut t = Table::new(
        &format!("Replica catch-up: {BACKLOG}-record backlog, n={n}, {SHARDS} shards"),
        &["phase", "value"],
    );
    t.row(vec!["snapshot install".into(), ms(seed_ms)]);
    t.row(vec![
        "frame catch-up".into(),
        format!("{} ({frames_applied} records)", ms(frames_ms)),
    ]);
    t.row(vec!["total catch-up time".into(), ms(catch_up_ms)]);
    t.row(vec![
        "frame apply rate".into(),
        format!("{catch_up_per_sec:.0} rec/s"),
    ]);
    t.row(vec!["replication turns".into(), turns.to_string()]);
    t.row(vec![
        "snapshots installed".into(),
        snapshots_installed.to_string(),
    ]);
    t.print();

    // 2. Steady-state lag under a paced writer.
    let mut lags = Vec::with_capacity(PACED_ROUNDS);
    let (_, paced_ms) = time_ms(|| {
        for round in 0..PACED_ROUNDS {
            for i in 0..PACED_BATCH {
                let row = table.row(((round * PACED_BATCH + i) % (n + BACKLOG)) as u32);
                primary.store().insert_point(row).expect("paced insert");
            }
            primary.store().sync().expect("sync");
            now += 50;
            primary.pump(now).expect("pump");
            replica.poll(now).expect("poll");
            let h = primary.health();
            lags.push(h.max_lag);
        }
    });
    let max_lag = lags.iter().copied().max().unwrap_or(0);
    let mean_lag = lags.iter().sum::<u64>() as f64 / lags.len().max(1) as f64;
    drain(&mut primary, &mut replica, &mut now);
    check_identical(&primary, &replica, &queries);
    let final_lag = primary.health().max_lag;
    assert_eq!(
        final_lag, 0,
        "lag must return to zero when the writer pauses"
    );
    assert!(
        (max_lag as usize) <= 2 * PACED_BATCH,
        "steady-state lag must stay bounded by the in-flight batch"
    );

    let mut t = Table::new(
        &format!(
            "Steady-state lag: {PACED_ROUNDS} rounds x {PACED_BATCH} inserts, one poll per round"
        ),
        &["metric", "records"],
    );
    t.row(vec!["mean lag".into(), format!("{mean_lag:.1}")]);
    t.row(vec!["max lag".into(), max_lag.to_string()]);
    t.row(vec![
        "final lag (writer paused)".into(),
        final_lag.to_string(),
    ]);
    t.row(vec!["paced phase time".into(), ms(paced_ms)]);
    t.print();

    // 3. Failover: elect + promote + first write on the new primary.
    let expected: Vec<Vec<u32>> = {
        let snap = primary.store().snapshot();
        queries
            .iter()
            .map(|q| snap.query(q).expect("primary query").sorted_ids())
            .collect()
    };
    drop(primary); // the primary dies
    let replicas = vec![replica];
    let (winner, elect_ms) = time_ms(|| elect(&replicas).expect("an electable replica"));
    let mut replicas = replicas;
    let winner = replicas.swap_remove(winner);
    let (promoted, promote_ms) = time_ms(|| {
        winner
            .promote(ConcurrencyConfig::default())
            .expect("promote")
    });
    let (new_id, first_write_ms) = time_ms(|| {
        promoted
            .store()
            .insert_point(table.row(0))
            .expect("first write on promoted primary")
    });
    let snap = promoted.store().snapshot();
    for (q, want) in queries.iter().zip(&expected) {
        // The promoted set answers exactly as the dead primary did
        // (modulo the one id the first write just added).
        let got = snap.query(q).expect("promoted query").sorted_ids();
        assert!(
            want.iter().all(|id| got.binary_search(id).is_ok()),
            "promoted replica lost acked data"
        );
        assert!(
            got.iter()
                .all(|id| *id == new_id || want.binary_search(id).is_ok()),
            "promoted replica invented data"
        );
    }

    let mut t = Table::new(
        "Failover: dead primary -> promoted follower",
        &["phase", "time"],
    );
    t.row(vec!["elect".into(), ms(elect_ms)]);
    t.row(vec![
        "promote (fsync + manifest + rewrap)".into(),
        ms(promote_ms),
    ]);
    t.row(vec!["first write accepted".into(), ms(first_write_ms)]);
    t.row(vec![
        "total unavailability".into(),
        ms(elect_ms + promote_ms + first_write_ms),
    ]);
    t.print();

    let json = render_json(
        cfg,
        n,
        seed_ms,
        frames_ms,
        frames_applied,
        catch_up_per_sec,
        turns,
        snapshots_installed,
        mean_lag,
        max_lag,
        final_lag,
        elect_ms,
        promote_ms,
        first_write_ms,
    );
    let path = "BENCH_replication.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("[harness] wrote {path}"),
        Err(e) => eprintln!("[harness] could not write {path}: {e}"),
    }
}

/// Hand-rolled JSON (the workspace has no serde).
#[allow(clippy::too_many_arguments)]
fn render_json(
    cfg: &Config,
    n: usize,
    seed_ms: f64,
    frames_ms: f64,
    frames_applied: u64,
    catch_up_per_sec: f64,
    turns: usize,
    snapshots_installed: u64,
    mean_lag: f64,
    max_lag: u64,
    final_lag: u64,
    elect_ms: f64,
    promote_ms: f64,
    first_write_ms: f64,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"replication\",\n");
    out.push_str(&format!("  \"n\": {n},\n"));
    out.push_str(&format!("  \"dim\": {DIM},\n"));
    out.push_str(&format!("  \"budget\": {BUDGET},\n"));
    out.push_str(&format!("  \"shards\": {SHARDS},\n"));
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str("  \"catch_up\": {\n");
    out.push_str(&format!("    \"backlog_records\": {BACKLOG},\n"));
    out.push_str(&format!("    \"snapshot_install_ms\": {seed_ms:.3},\n"));
    out.push_str(&format!("    \"frames_ms\": {frames_ms:.3},\n"));
    out.push_str(&format!("    \"frames_applied\": {frames_applied},\n"));
    out.push_str(&format!("    \"total_ms\": {:.3},\n", seed_ms + frames_ms));
    out.push_str(&format!(
        "    \"records_per_sec\": {catch_up_per_sec:.0},\n"
    ));
    out.push_str(&format!("    \"replication_turns\": {turns},\n"));
    out.push_str(&format!(
        "    \"snapshots_installed\": {snapshots_installed}\n"
    ));
    out.push_str("  },\n");
    out.push_str("  \"steady_state\": {\n");
    out.push_str(&format!("    \"rounds\": {PACED_ROUNDS},\n"));
    out.push_str(&format!("    \"batch\": {PACED_BATCH},\n"));
    out.push_str(&format!("    \"mean_lag_records\": {mean_lag:.1},\n"));
    out.push_str(&format!("    \"max_lag_records\": {max_lag},\n"));
    out.push_str(&format!("    \"final_lag_records\": {final_lag}\n"));
    out.push_str("  },\n");
    out.push_str("  \"failover\": {\n");
    out.push_str(&format!("    \"elect_ms\": {elect_ms:.3},\n"));
    out.push_str(&format!("    \"promote_ms\": {promote_ms:.3},\n"));
    out.push_str(&format!("    \"first_write_ms\": {first_write_ms:.3},\n"));
    out.push_str(&format!(
        "    \"total_unavailability_ms\": {:.3}\n",
        elect_ms + promote_ms + first_write_ms
    ));
    out.push_str("  },\n");
    out.push_str("  \"follower_reads_identical\": true\n");
    out.push_str("}\n");
    out
}
