//! Experiment registry: one entry per paper table/figure plus ablations.

pub mod ablation;
pub mod concurrent;
pub mod extensions;
pub mod fault;
pub mod movingobj;
pub mod netrepl;
pub mod parallel;
pub mod quant;
pub mod realworld;
pub mod replication;
pub mod serve;
pub mod shard;
pub mod simd;
pub mod synthetic;
pub mod topk;
pub mod wal;

use crate::Config;

/// An experiment: name, description, runner.
pub struct Experiment {
    /// Registry name (the harness CLI argument).
    pub name: &'static str,
    /// What it reproduces.
    pub description: &'static str,
    /// Runner.
    pub run: fn(&Config),
}

/// All registered experiments, in presentation order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            name: "table1",
            description: "empirical complexity check: query time vs n (paper Table 1 bounds)",
            run: synthetic::table1,
        },
        Experiment {
            name: "table2",
            description: "dataset characteristics (paper Table 2)",
            run: realworld::table2,
        },
        Experiment {
            name: "fig6a",
            description: "Consumption SQL function: query time vs #index (paper Fig. 6a)",
            run: realworld::fig6a,
        },
        Experiment {
            name: "fig6b",
            description: "CMoment: query time vs RQ and #index (paper Fig. 6b)",
            run: realworld::fig6b,
        },
        Experiment {
            name: "fig6c",
            description: "CTexture: query time vs RQ and #index (paper Fig. 6c)",
            run: realworld::fig6c,
        },
        Experiment {
            name: "fig6d",
            description: "real datasets: index build time vs #index (paper Fig. 6d)",
            run: realworld::fig6d,
        },
        Experiment {
            name: "fig7",
            description: "synthetic query time vs dim and RQ, #index=100 (paper Fig. 7 + Fig. 9)",
            run: synthetic::fig7_9,
        },
        Experiment {
            name: "fig8",
            description: "synthetic query time vs dim and #index, RQ=4 (paper Fig. 8 + Fig. 10)",
            run: synthetic::fig8_10,
        },
        Experiment {
            name: "fig9",
            description: "synthetic pruning %% vs dim and RQ (printed with fig7)",
            run: synthetic::fig7_9,
        },
        Experiment {
            name: "fig10",
            description: "synthetic pruning %% vs dim and #index (printed with fig8)",
            run: synthetic::fig8_10,
        },
        Experiment {
            name: "fig11",
            description: "selectivity & query time vs inequality parameter (paper Fig. 11)",
            run: synthetic::fig11,
        },
        Experiment {
            name: "fig12",
            description: "scalability: index & query time vs n (paper Fig. 12)",
            run: synthetic::fig12,
        },
        Experiment {
            name: "fig13a",
            description: "index build time vs dim and #index (paper Fig. 13a)",
            run: synthetic::fig13a,
        },
        Experiment {
            name: "fig13b",
            description: "index memory vs #index and dim (paper Fig. 13b)",
            run: synthetic::fig13b,
        },
        Experiment {
            name: "fig13c",
            description: "dynamic update time vs %% updated points (paper Fig. 13c)",
            run: synthetic::fig13c,
        },
        Experiment {
            name: "fig14a",
            description: "linear moving objects: Planar vs baseline vs MBR tree (paper Fig. 14a)",
            run: movingobj::fig14a,
        },
        Experiment {
            name: "fig14b",
            description: "circular moving objects: Planar vs baseline (paper Fig. 14b)",
            run: movingobj::fig14b,
        },
        Experiment {
            name: "fig14c",
            description: "accelerating objects: Planar vs baseline (paper Fig. 14c)",
            run: movingobj::fig14c,
        },
        Experiment {
            name: "table3",
            description: "top-k nearest neighbor: checked points & time (paper Table 3)",
            run: topk::table3,
        },
        Experiment {
            name: "active-learning",
            description: "pool-based active learning + approximate-hashing recall (paper §7.5.2)",
            run: topk::active_learning,
        },
        Experiment {
            name: "extension-adaptive",
            description: "adaptive index retuning under query drift (paper §8 future work)",
            run: extensions::adaptive,
        },
        Experiment {
            name: "extension-conjunction",
            description: "linear-constraint conjunction queries (paper §2 suggestion)",
            run: extensions::conjunction,
        },
        Experiment {
            name: "extension-router",
            description: "axis-reduction for zero-coefficient queries (paper §4.1 remark)",
            run: extensions::router,
        },
        Experiment {
            name: "parallel",
            description:
                "parallel engine: build & batch-query speedup vs threads (BENCH_parallel.json)",
            run: parallel::parallel_engine,
        },
        Experiment {
            name: "shard",
            description:
                "sharded engine: batch & top-k speedup vs shard count, answers verified (BENCH_shard.json)",
            run: shard::shard,
        },
        Experiment {
            name: "simd",
            description:
                "columnar SIMD verification vs row-major blocked scalar; intersection pruning on/off (BENCH_simd.json)",
            run: simd::simd,
        },
        Experiment {
            name: "quant",
            description:
                "quantized filter tier: i8/i16 filter-pass speedup, end-to-end identity, band vs slack, per-shard autotuner (BENCH_quant.json)",
            run: quant::quant,
        },
        Experiment {
            name: "fault",
            description:
                "fault tolerance: recovery vs cold rebuild, degraded vs healthy serving (BENCH_fault.json)",
            run: fault::fault,
        },
        Experiment {
            name: "wal",
            description:
                "durability: fsync-policy latency, WAL replay throughput, deadline partial rates (BENCH_wal.json)",
            run: wal::wal,
        },
        Experiment {
            name: "concurrent",
            description:
                "concurrency: group-commit fsync amortization, readers racing a writer, snapshot batches (BENCH_concurrent.json)",
            run: concurrent::concurrent,
        },
        Experiment {
            name: "replication",
            description:
                "WAL shipping: replica catch-up rate, steady-state lag, failover time (BENCH_replication.json)",
            run: replication::replication,
        },
        Experiment {
            name: "netrepl",
            description:
                "networked replication: TCP vs spool catch-up, quorum vs async ack latency, reconnect-storm recovery (BENCH_netrepl.json)",
            run: netrepl::netrepl,
        },
        Experiment {
            name: "serve",
            description:
                "network serving: coalesced vs per-request dispatch, latency vs load, typed overload degradation (BENCH_serve.json)",
            run: serve::serve,
        },
        Experiment {
            name: "ablation-selection",
            description: "best-index selection: stretch vs angle vs oracle count",
            run: ablation::selection,
        },
        Experiment {
            name: "ablation-dedup",
            description: "redundant-normal removal on vs off (paper §5.2)",
            run: ablation::dedup,
        },
        Experiment {
            name: "ablation-topk",
            description: "Claim-3 lower-bound pruning on vs off in Algorithm 2",
            run: ablation::topk_pruning,
        },
        Experiment {
            name: "ablation-search",
            description: "per-axis binary searches (paper-literal) vs reduced-threshold search",
            run: ablation::search,
        },
    ]
}

/// Run one experiment (or `all`); returns false for an unknown name.
pub fn run(name: &str, cfg: &Config) -> bool {
    if name == "all" {
        // fig9/fig10 alias fig7/fig8 output; skip the duplicates.
        for e in registry() {
            if e.name == "fig9" || e.name == "fig10" {
                continue;
            }
            eprintln!("[harness] running {} — {}", e.name, e.description);
            (e.run)(cfg);
        }
        return true;
    }
    match registry().into_iter().find(|e| e.name == name) {
        Some(e) => {
            (e.run)(cfg);
            true
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique() {
        let names: Vec<_> = registry().iter().map(|e| e.name).collect();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(names.len(), deduped.len());
    }

    #[test]
    fn unknown_experiment_is_reported() {
        assert!(!run("nope", &Config::default()));
    }
}
