//! Experiments for the extension features (the paper's §8 future-work
//! directions and §2 suggestions, implemented in this repository).

use crate::report::{ms, Table};
use crate::{time_ms, Config};
use planar_core::{
    AdaptiveConfig, AdaptivePlanarIndexSet, AxisReductionRouter, Cmp, ConjunctionQuery,
    IndexConfig, InequalityQuery, ParameterDomain, PlanarIndexSet, VecStore,
};
use planar_datagen::drift::DriftingWorkload;
use planar_datagen::queries::eq18_domain;
use planar_datagen::synthetic::{SyntheticConfig, SyntheticKind};
use planar_datagen::SYNTHETIC_N;

/// Adaptive retuning under query drift: static index set vs
/// `AdaptivePlanarIndexSet` on the same drifting stream.
pub fn adaptive(cfg: &Config) {
    let n = cfg.scaled(SYNTHETIC_N);
    let dim = 6;
    let table = SyntheticConfig::paper(SyntheticKind::Independent, n, dim).generate();
    let initial = ParameterDomain::uniform_continuous(dim, 1.0, 100.0).expect("domain");
    let phases = 6usize;
    let queries_per_phase = (cfg.queries * 4).max(32);

    let make_stream = |seed: u64| {
        DriftingWorkload::new(
            &table,
            vec![1.0; dim],
            (0..dim)
                .map(|i| if i % 2 == 0 { 100.0 } else { 1.0 })
                .collect(),
            phases * queries_per_phase,
            0.02,
            seed,
        )
    };

    let static_set: PlanarIndexSet<VecStore> = PlanarIndexSet::build(
        table.clone(),
        initial.clone(),
        IndexConfig::with_budget(20).seed(cfg.seed),
    )
    .expect("build");
    let mut adaptive_set: AdaptivePlanarIndexSet = AdaptivePlanarIndexSet::build(
        table.clone(),
        initial,
        AdaptiveConfig {
            pruning_threshold: 0.95,
            cooldown: queries_per_phase / 2,
            min_queries: 16,
            ..AdaptiveConfig::with_budget(20)
        },
    )
    .expect("build");

    let mut t = Table::new(
        &format!("Extension: adaptive retuning under drift, indp n={n}, dim={dim}, budget=20"),
        &[
            "phase",
            "static_pruning_%",
            "adaptive_pruning_%",
            "static_ms",
            "adaptive_ms",
            "rebuilds",
        ],
    );
    let mut static_stream = make_stream(cfg.seed ^ 0xD1);
    let mut adaptive_stream = make_stream(cfg.seed ^ 0xD1);
    for phase in 1..=phases {
        let mut sp = 0.0;
        let mut ap = 0.0;
        let mut sms = 0.0;
        let mut ams = 0.0;
        for _ in 0..queries_per_phase {
            let q = static_stream.next_query();
            let (out, tq) = time_ms(|| static_set.query(&q).expect("query"));
            sp += out.stats.pruning_percentage();
            sms += tq;
            let q = adaptive_stream.next_query();
            let (out, tq) = time_ms(|| adaptive_set.query(&q).expect("query"));
            ap += out.stats.pruning_percentage();
            ams += tq;
        }
        let m = queries_per_phase as f64;
        t.row(vec![
            phase.to_string(),
            format!("{:.1}", sp / m),
            format!("{:.1}", ap / m),
            ms(sms / m),
            ms(ams / m),
            adaptive_set.rebuilds().to_string(),
        ]);
    }
    t.print();
}

/// Conjunction (linear constraint) queries: interval-pruned evaluation vs
/// per-constraint scans.
pub fn conjunction(cfg: &Config) {
    let n = cfg.scaled(SYNTHETIC_N);
    let dim = 6;
    let table = SyntheticConfig::paper(SyntheticKind::Independent, n, dim).generate();
    let maxima = table.max_per_dim();
    let set: PlanarIndexSet<VecStore> = PlanarIndexSet::build(
        table,
        eq18_domain(dim, 4),
        IndexConfig::with_budget(50).seed(cfg.seed),
    )
    .expect("build");
    let mut t = Table::new(
        &format!("Extension: conjunction (band) queries, indp n={n}, dim={dim}, #index=50"),
        &[
            "band_width",
            "matches",
            "conjunction_ms",
            "scan_ms",
            "pruning_%",
        ],
    );
    for width in [0.05, 0.15, 0.3] {
        let a: Vec<f64> = vec![2.0; dim];
        let mid = 0.4 * a.iter().zip(&maxima).map(|(ai, mi)| ai * mi).sum::<f64>();
        let span = width * mid;
        let q = ConjunctionQuery::new(vec![
            InequalityQuery::new(a.clone(), Cmp::Geq, mid - span).expect("query"),
            InequalityQuery::new(a.clone(), Cmp::Leq, mid + span).expect("query"),
        ])
        .expect("conjunction");
        let (out, conj_ms) = time_ms(|| set.query_conjunction(&q).expect("query"));
        // Baseline: scan evaluating both constraints per point.
        let (scan_matches, scan_ms) = time_ms(|| {
            set.table()
                .iter()
                .filter(|(_, row)| q.satisfies(row))
                .count()
        });
        assert_eq!(out.matches.len(), scan_matches);
        t.row(vec![
            format!("{width:.2}"),
            out.matches.len().to_string(),
            ms(conj_ms),
            ms(scan_ms),
            format!("{:.1}", out.stats.pruning_percentage()),
        ]);
    }
    t.print();
}

/// The axis-reduction router: zero-coefficient queries with and without
/// reduced indexes.
pub fn router(cfg: &Config) {
    let n = cfg.scaled(SYNTHETIC_N);
    let dim = 8;
    let table = SyntheticConfig::paper(SyntheticKind::Independent, n, dim).generate();
    let maxima = table.max_per_dim();
    let base: PlanarIndexSet<VecStore> = PlanarIndexSet::build(
        table,
        eq18_domain(dim, 4),
        IndexConfig::with_budget(20).seed(cfg.seed),
    )
    .expect("build");
    let mut routed = AxisReductionRouter::new(base, IndexConfig::with_budget(20).seed(cfg.seed))
        .expect("router");
    let mut t = Table::new(
        &format!("Extension: axis-reduction router, indp n={n}, dim={dim}"),
        &[
            "zero_axes",
            "plain_ms(scan)",
            "routed_ms",
            "routed_pruning_%",
            "build_ms(once)",
        ],
    );
    for zeros in [1usize, 3, 5] {
        let mut a = vec![2.0; dim];
        for slot in a.iter_mut().take(zeros) {
            *slot = 0.0;
        }
        let b = 0.25 * a.iter().zip(&maxima).map(|(ai, mi)| ai * mi).sum::<f64>();
        let q = InequalityQuery::leq(a, b).expect("query");
        // Plain set: falls back to a scan.
        let (plain, plain_ms) = time_ms(|| routed.base().query(&q).expect("query"));
        assert!(!plain.stats.used_index());
        // First routed call builds the reduction; measure it separately.
        let (_, build_ms) = time_ms(|| routed.query(&q).expect("query"));
        let (out, routed_ms) = time_ms(|| routed.query(&q).expect("query"));
        assert_eq!(out.sorted_ids(), plain.sorted_ids());
        t.row(vec![
            zeros.to_string(),
            ms(plain_ms),
            ms(routed_ms),
            format!("{:.1}", out.stats.pruning_percentage()),
            ms(build_ms),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Config {
        Config {
            scale: 0.0005,
            queries: 2,
            seed: 19,
            threads: 1,
        }
    }

    #[test]
    fn adaptive_smoke() {
        adaptive(&tiny());
    }

    #[test]
    fn conjunction_smoke() {
        conjunction(&tiny());
    }

    #[test]
    fn router_smoke() {
        router(&tiny());
    }
}
