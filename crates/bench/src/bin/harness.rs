//! The experiment harness: regenerates every table and figure of the paper.
//!
//! ```text
//! harness [--scale F] [--queries N] [--seed S] <experiment>|all|list
//! ```

use planar_bench::{experiments, Config};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: harness [--scale F] [--queries N] [--seed S] [--threads T] <experiment>|all|list"
    );
    eprintln!("       --scale   dataset-size multiplier, 1.0 = paper scale (default 0.05)");
    eprintln!("       --queries queries per configuration (default 20)");
    eprintln!("       --seed    RNG seed (default 42)");
    eprintln!("       --threads worker threads for the parallel engine (default 4)");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut cfg = Config::default();
    let mut targets: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => cfg.scale = v,
                _ => return usage(),
            },
            "--queries" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) if v > 0 => cfg.queries = v,
                _ => return usage(),
            },
            "--seed" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => cfg.seed = v,
                _ => return usage(),
            },
            "--threads" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) if v > 0 => cfg.threads = v,
                _ => return usage(),
            },
            "-h" | "--help" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => return usage(),
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        return usage();
    }
    if targets.iter().any(|t| t == "list") {
        println!("available experiments (harness <name>):");
        for e in experiments::registry() {
            println!("  {:<20} {}", e.name, e.description);
        }
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "[harness] scale={} (paper=1.0), queries/config={}, seed={}, threads={}",
        cfg.scale, cfg.queries, cfg.seed, cfg.threads
    );
    for target in &targets {
        if !experiments::run(target, &cfg) {
            eprintln!("unknown experiment `{target}` — try `harness list`");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
