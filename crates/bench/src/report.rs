//! Plain-text table rendering for harness output.
//!
//! Every experiment prints the same rows/series the corresponding paper
//! table or figure reports, in an aligned text table that is also easy to
//! grep/awk into a plot.

/// An aligned text table built row by row.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{cell:>w$}  ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total.saturating_sub(2)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render and print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format milliseconds with sensible precision.
pub fn ms(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Format a percentage.
pub fn pct(v: f64) -> String {
    format!("{v:.1}")
}

/// Format a ratio as `N.Nx`.
pub fn speedup(baseline: f64, ours: f64) -> String {
    if ours <= 0.0 {
        return "inf".to_string();
    }
    format!("{:.1}x", baseline / ours)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["a", "long_header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "20000".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long_header"));
        let lines: Vec<&str> = s.lines().filter(|l| !l.is_empty()).collect();
        // header + separator + 2 rows + title
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(250.0), "250");
        assert_eq!(ms(2.5), "2.50");
        assert_eq!(ms(0.01), "0.0100");
        assert_eq!(pct(99.95), "100.0"); // rounds to one decimal
        assert_eq!(speedup(100.0, 10.0), "10.0x");
        assert_eq!(speedup(1.0, 0.0), "inf");
    }
}
