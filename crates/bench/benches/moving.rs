//! Criterion: moving-object intersection queries — Planar vs all-pairs
//! baseline vs the MBR R-tree specialist (Fig. 14 kernels).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use planar_core::VecStore;
use planar_moving::intersection::{CircularIntersectionIndex, LinearIntersectionIndex};
use planar_moving::rtree::mbr_intersection;
use planar_moving::{baseline, workload};
use std::hint::black_box;

const INSTANTS: [f64; 6] = [10.0, 11.0, 12.0, 13.0, 14.0, 15.0];
const N_OBJECTS: usize = 400; // 160K pairs

fn bench_linear(c: &mut Criterion) {
    let mut group = c.benchmark_group("moving_linear");
    group.sample_size(20);
    let a = workload::linear_objects(N_OBJECTS, 1000.0, 1);
    let b_set = workload::linear_objects(N_OBJECTS, 1000.0, 2);
    let idx: LinearIntersectionIndex<VecStore> =
        LinearIntersectionIndex::build(a.clone(), b_set.clone(), &INSTANTS).unwrap();
    for t in [12.0, 12.5] {
        group.bench_function(BenchmarkId::new("planar", t), |bch| {
            bch.iter(|| black_box(idx.query(t, 10.0).unwrap()))
        });
        group.bench_function(BenchmarkId::new("baseline", t), |bch| {
            bch.iter(|| black_box(baseline::linear_pairs_within(&a, &b_set, t, 10.0)))
        });
        group.bench_function(BenchmarkId::new("mbr", t), |bch| {
            bch.iter(|| black_box(mbr_intersection(&a, &b_set, t, 10.0)))
        });
    }
    group.finish();
}

fn bench_circular(c: &mut Criterion) {
    let mut group = c.benchmark_group("moving_circular");
    group.sample_size(10);
    let circles = workload::circular_objects(N_OBJECTS / 2, 3);
    let lines = workload::linear_objects(N_OBJECTS / 2, 100.0, 4);
    let idx: CircularIntersectionIndex<VecStore> =
        CircularIntersectionIndex::build(&circles, &lines, &INSTANTS).unwrap();
    for t in [12.0, 12.5] {
        group.bench_function(BenchmarkId::new("planar", t), |bch| {
            bch.iter(|| black_box(idx.query(t, 10.0).unwrap()))
        });
        group.bench_function(BenchmarkId::new("baseline", t), |bch| {
            bch.iter(|| black_box(baseline::circular_pairs_within(&circles, &lines, t, 10.0)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_linear, bench_circular);
criterion_main!(benches);
