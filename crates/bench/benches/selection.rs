//! Criterion: best-index selection strategies (paper §5.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use planar_core::{IndexConfig, PlanarIndexSet, SelectionStrategy, VecStore};
use planar_datagen::queries::{eq18_domain, Eq18Generator};
use planar_datagen::synthetic::{SyntheticConfig, SyntheticKind};
use std::hint::black_box;

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection");
    group.sample_size(30);
    let table = SyntheticConfig::paper(SyntheticKind::Independent, 50_000, 6).generate();
    let mut set: PlanarIndexSet<VecStore> =
        PlanarIndexSet::build(table, eq18_domain(6, 8), IndexConfig::with_budget(100)).unwrap();
    let queries = Eq18Generator::new(set.table(), 8, 3).queries(32);
    for strategy in [
        SelectionStrategy::MinStretch,
        SelectionStrategy::MinAngle,
        SelectionStrategy::OracleCount,
    ] {
        set.set_strategy(strategy);
        // Clone the set per strategy so the closure owns an immutable view.
        let view = set.clone();
        let mut i = 0;
        group.bench_function(BenchmarkId::from_parameter(format!("{strategy:?}")), |b| {
            b.iter(|| {
                i = (i + 1) % queries.len();
                black_box(view.query(&queries[i]).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
