//! Criterion: inequality-query kernels (Algorithm 1) vs the sequential
//! scan, across dimensionality and query randomness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use planar_core::{IndexConfig, PlanarIndexSet, SeqScan, VecStore};
use planar_datagen::queries::{eq18_domain, Eq18Generator};
use planar_datagen::synthetic::{SyntheticConfig, SyntheticKind};
use std::hint::black_box;

const N: usize = 100_000;

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_inequality");
    group.sample_size(20);
    for dim in [2usize, 6, 14] {
        for rq in [2usize, 8] {
            let table = SyntheticConfig::paper(SyntheticKind::Independent, N, dim).generate();
            let scan_table = table.clone();
            let set: PlanarIndexSet<VecStore> =
                PlanarIndexSet::build(table, eq18_domain(dim, rq), IndexConfig::with_budget(50))
                    .unwrap();
            let queries = Eq18Generator::new(set.table(), rq, 7).queries(32);
            let mut i = 0;
            group.bench_function(
                BenchmarkId::new(format!("planar_d{dim}"), format!("rq{rq}")),
                |b| {
                    b.iter(|| {
                        i = (i + 1) % queries.len();
                        black_box(set.query(&queries[i]).unwrap())
                    })
                },
            );
            let scan = SeqScan::new(&scan_table);
            let mut j = 0;
            group.bench_function(
                BenchmarkId::new(format!("scan_d{dim}"), format!("rq{rq}")),
                |b| {
                    b.iter(|| {
                        j = (j + 1) % queries.len();
                        black_box(scan.evaluate(&queries[j]).unwrap())
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
