//! Criterion: the k-way top-k merge at the heart of sharded top-k — merging
//! per-shard candidate lists ordered by (distance, id) into one global
//! top-k, across shard counts and k.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use planar_core::merge_top_k;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const SHARD_COUNTS: [usize; 4] = [2, 4, 8, 16];
const KS: [usize; 3] = [10, 100, 1000];

/// Per-shard candidate lists the way shards produce them: `k` pairs per
/// shard, sorted by (distance, global id), global ids disjoint by shard.
fn candidate_lists(shards: usize, k: usize, seed: u64) -> Vec<Vec<(u32, f64)>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..shards)
        .map(|s| {
            let mut list: Vec<(u32, f64)> = (0..k)
                .map(|i| {
                    let id = (s * k + i) as u32;
                    (id, rng.random_range(0.0..100.0_f64))
                })
                .collect();
            list.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            list
        })
        .collect()
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_merge");
    for shards in SHARD_COUNTS {
        for k in KS {
            let lists = candidate_lists(shards, k, 42);
            group.throughput(Throughput::Elements(k as u64));
            group.bench_function(BenchmarkId::new(format!("{shards}shards"), k), |b| {
                b.iter(|| black_box(merge_top_k(black_box(&lists), k)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
