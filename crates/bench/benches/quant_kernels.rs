//! Criterion: quantized classification kernels — the exact `f64` fused
//! compare vs the `i16` and `i8` quantized classifiers — at feature
//! dimensionalities d' ∈ {4, 16, 64}.
//!
//! The quantized kernels scan 4× (i16) / 8× (i8) less memory per lane
//! than the `f64` path, so this measures the filter tier's raw bandwidth
//! advantage. Portable and AVX2 variants classify bit-identically by
//! contract (`planar_geom::quant`); set `PLANAR_FORCE_PORTABLE=1` to
//! measure the portable fallback on AVX2 hardware.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use planar_core::{Cmp, FeatureTable, InequalityQuery, QuantTier, QuantizedColumns};
use planar_datagen::synthetic::{SyntheticConfig, SyntheticKind};
use planar_geom::{classify_block_i16, classify_block_i8, dot_cmp_block, quant_kernel_name};
use std::hint::black_box;

const N: usize = 65_536;
const DIMS: [usize; 3] = [4, 16, 64];

fn query_for(dim: usize) -> InequalityQuery {
    let a: Vec<f64> = (0..dim).map(|j| 0.5 + (j % 7) as f64 * 0.25).collect();
    InequalityQuery::new(a, Cmp::Leq, dim as f64 * 12.0).unwrap()
}

fn table_for(dim: usize) -> FeatureTable {
    SyntheticConfig::paper(SyntheticKind::Independent, N, dim).generate()
}

/// Exact fused compare over every block (what the filter tier fronts).
fn pass_f64(table: &FeatureTable, q: &InequalityQuery) -> usize {
    let cols = table.columns();
    let stride = cols.stride();
    let leq = q.cmp() == Cmp::Leq;
    let mut matched = 0;
    for seg in cols.segments(0, table.len() as u32) {
        matched +=
            dot_cmp_block(q.a(), seg.cols, stride, seg.lanes, q.b(), leq).count_ones() as usize;
    }
    matched
}

/// Quantized classification over every block: per-block query folding
/// (scale the coefficients into code space, fold the offsets into the
/// threshold) followed by one fused kernel call — the same work the
/// production `QuantFilter` does per block.
fn pass_quant(table: &FeatureTable, q: &InequalityQuery, mirror: &QuantizedColumns) -> usize {
    let cols = table.columns();
    let stride = cols.stride();
    let dim = q.a().len();
    let n = table.len();
    let mut w = vec![0.0f32; dim];
    let mut settled = 0usize;
    let blocks = n.div_ceil(stride);
    for b in 0..blocks {
        let lanes = (n - b * stride).min(stride);
        let scales = &mirror.scales()[b * dim..(b + 1) * dim];
        let offsets = &mirror.offsets()[b * dim..(b + 1) * dim];
        let mut bias = -q.b();
        for j in 0..dim {
            w[j] = (q.a()[j] * scales[j]) as f32;
            bias += q.a()[j] * offsets[j];
        }
        let t = (-bias) as f32;
        let (below, above) = match (mirror.codes_i8(), mirror.codes_i16()) {
            (Some(codes), _) => {
                classify_block_i8(&w, &codes[b * dim * stride..], stride, lanes, t, t)
            }
            (_, Some(codes)) => {
                classify_block_i16(&w, &codes[b * dim * stride..], stride, lanes, t, t)
            }
            _ => unreachable!("mirror always holds one code plane"),
        };
        settled += (below | above).count_ones() as usize;
    }
    settled
}

fn bench_quant_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group(format!(
        "quant_kernels/{}+{}",
        quant_kernel_name(false),
        quant_kernel_name(true)
    ));
    group.sample_size(20);
    group.throughput(Throughput::Elements(N as u64));
    for dim in DIMS {
        let table = table_for(dim);
        let q = query_for(dim);
        let i8_mirror = QuantizedColumns::encode(table.columns(), QuantTier::I8, 1.0);
        let i16_mirror = QuantizedColumns::encode(table.columns(), QuantTier::I16, 1.0);
        group.bench_function(BenchmarkId::new("f64_exact", dim), |b| {
            b.iter(|| black_box(pass_f64(&table, &q)))
        });
        group.bench_function(BenchmarkId::new("i16_classify", dim), |b| {
            b.iter(|| black_box(pass_quant(&table, &q, &i16_mirror)))
        });
        group.bench_function(BenchmarkId::new("i8_classify", dim), |b| {
            b.iter(|| black_box(pass_quant(&table, &q, &i8_mirror)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_quant_kernels);
criterion_main!(benches);
