//! Criterion: key-store kernels — packed array vs the order-statistics
//! B+-tree (rank queries, scans, point updates).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use planar_core::store::{BPlusTree, Entry, EytzingerStore, KeyStore, VecStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const N: usize = 200_000;

fn entries(n: usize) -> Vec<Entry> {
    let mut rng = StdRng::seed_from_u64(1);
    (0..n as u32)
        .map(|i| Entry::new(rng.random_range(0.0..1e6), i))
        .collect()
}

fn bench_rank(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_rank");
    let data = entries(N);
    let vec_store = VecStore::build(data.clone());
    let tree = BPlusTree::build(data);
    let mut rng = StdRng::seed_from_u64(2);
    let thresholds: Vec<f64> = (0..64).map(|_| rng.random_range(0.0..1e6)).collect();
    let mut i = 0;
    group.bench_function(BenchmarkId::new("rank_leq", "vec"), |b| {
        b.iter(|| {
            i = (i + 1) % thresholds.len();
            black_box(vec_store.rank_leq(thresholds[i]))
        })
    });
    let mut j = 0;
    group.bench_function(BenchmarkId::new("rank_leq", "bptree"), |b| {
        b.iter(|| {
            j = (j + 1) % thresholds.len();
            black_box(tree.rank_leq(thresholds[j]))
        })
    });
    let eytzinger = EytzingerStore::build(entries(N));
    let mut l = 0;
    group.bench_function(BenchmarkId::new("rank_leq", "eytzinger"), |b| {
        b.iter(|| {
            l = (l + 1) % thresholds.len();
            black_box(eytzinger.rank_leq(thresholds[l]))
        })
    });
    group.finish();
}

fn bench_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_scan");
    group.sample_size(20);
    let data = entries(N);
    let vec_store = VecStore::build(data.clone());
    let tree = BPlusTree::build(data);
    group.bench_function(BenchmarkId::new("iter_asc_full", "vec"), |b| {
        b.iter(|| black_box(vec_store.iter_asc(0, N).map(|e| e.id as u64).sum::<u64>()))
    });
    group.bench_function(BenchmarkId::new("iter_asc_full", "bptree"), |b| {
        b.iter(|| black_box(tree.iter_asc(0, N).map(|e| e.id as u64).sum::<u64>()))
    });
    group.finish();
}

fn bench_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_update");
    group.sample_size(10);
    let data = entries(N);
    let mut rng = StdRng::seed_from_u64(3);
    let ops: Vec<(Entry, f64)> = (0..256)
        .map(|_| {
            let e = data[rng.random_range(0..data.len())];
            (e, rng.random_range(0.0..1e6))
        })
        .collect();
    let mut vec_store = VecStore::build(data.clone());
    let mut i = 0;
    group.bench_function(BenchmarkId::new("move_entry", "vec"), |b| {
        b.iter(|| {
            let (e, new_key) = ops[i % ops.len()];
            i += 1;
            // move back and forth to keep the multiset stable
            vec_store.remove(e);
            vec_store.insert(Entry::new(new_key, e.id));
            vec_store.remove(Entry::new(new_key, e.id));
            vec_store.insert(e);
        })
    });
    let mut tree = BPlusTree::build(data);
    let mut j = 0;
    group.bench_function(BenchmarkId::new("move_entry", "bptree"), |b| {
        b.iter(|| {
            let (e, new_key) = ops[j % ops.len()];
            j += 1;
            tree.remove(e);
            tree.insert(Entry::new(new_key, e.id));
            tree.remove(Entry::new(new_key, e.id));
            tree.insert(e);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_rank, bench_scan, bench_update);
criterion_main!(benches);
