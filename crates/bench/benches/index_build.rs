//! Criterion: Planar index construction (paper §4.2: loglinear build).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use planar_core::{IndexConfig, PlanarIndexSet, VecStore};
use planar_datagen::queries::eq18_domain;
use planar_datagen::synthetic::{SyntheticConfig, SyntheticKind};
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    for n in [10_000usize, 50_000] {
        for dim in [2usize, 6, 14] {
            let table = SyntheticConfig::paper(SyntheticKind::Independent, n, dim).generate();
            group.bench_with_input(
                BenchmarkId::new(format!("n{n}"), format!("dim{dim}")),
                &table,
                |b, table| {
                    b.iter(|| {
                        PlanarIndexSet::<VecStore>::build(
                            black_box(table.clone()),
                            eq18_domain(dim, 4),
                            IndexConfig::with_budget(10),
                        )
                        .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
