//! Criterion: scalar-product kernels — naive vs blocked vs columnar SIMD —
//! and full-table verification through the row-major vs columnar layouts,
//! at feature dimensionalities d' ∈ {4, 16, 64}.
//!
//! All kernels are bit-identical by contract (`planar_geom::kernels`), so
//! these benchmarks measure pure layout/dispatch cost. Set
//! `PLANAR_FORCE_PORTABLE=1` to measure the portable fallback on AVX2
//! hardware.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use planar_core::{Cmp, FeatureTable, InequalityQuery};
use planar_datagen::synthetic::{SyntheticConfig, SyntheticKind};
use planar_geom::{dot_block, dot_block_cols, dot_cmp_block, dot_slices, BLOCK_ROWS};
use std::hint::black_box;

const N: usize = 65_536;
const DIMS: [usize; 3] = [4, 16, 64];

fn query_for(dim: usize) -> InequalityQuery {
    let a: Vec<f64> = (0..dim).map(|j| 0.5 + (j % 7) as f64 * 0.25).collect();
    InequalityQuery::new(a, Cmp::Leq, dim as f64 * 12.0).unwrap()
}

fn table_for(dim: usize) -> FeatureTable {
    SyntheticConfig::paper(SyntheticKind::Independent, N, dim).generate()
}

/// One dot product per row via `dot_slices` (the naive kernel).
fn sum_naive(table: &FeatureTable, a: &[f64]) -> f64 {
    table.iter().map(|(_, row)| dot_slices(a, row)).sum()
}

/// Blocked row-major kernel: 64 contiguous rows per `dot_block` call.
fn sum_blocked(table: &FeatureTable, a: &[f64]) -> f64 {
    let n = table.len() as u32;
    let mut dots = [0.0f64; BLOCK_ROWS];
    let mut sum = 0.0;
    let mut lo = 0u32;
    while lo < n {
        let hi = (lo + BLOCK_ROWS as u32).min(n);
        let lanes = (hi - lo) as usize;
        dot_block(a, table.rows_between(lo, hi), &mut dots[..lanes]);
        sum += dots[..lanes].iter().sum::<f64>();
        lo = hi;
    }
    sum
}

/// Columnar SIMD kernel: `dot_block_cols` over the interleaved-block
/// layout (AVX2 when dispatched, portable otherwise).
fn sum_columnar(table: &FeatureTable, a: &[f64]) -> f64 {
    let cols = table.columns();
    let stride = cols.stride();
    let mut dots = [0.0f64; BLOCK_ROWS];
    let mut sum = 0.0;
    for seg in cols.segments(0, table.len() as u32) {
        dot_block_cols(a, seg.cols, stride, &mut dots[..seg.lanes]);
        sum += dots[..seg.lanes].iter().sum::<f64>();
    }
    sum
}

/// Row-major verification: blocked dots, then compare each.
fn verify_rowmajor(table: &FeatureTable, q: &InequalityQuery) -> usize {
    let n = table.len() as u32;
    let mut dots = [0.0f64; BLOCK_ROWS];
    let mut matched = 0;
    let mut lo = 0u32;
    while lo < n {
        let hi = (lo + BLOCK_ROWS as u32).min(n);
        let lanes = (hi - lo) as usize;
        dot_block(q.a(), table.rows_between(lo, hi), &mut dots[..lanes]);
        matched += dots[..lanes]
            .iter()
            .filter(|&&d| q.satisfies_dot(d))
            .count();
        lo = hi;
    }
    matched
}

/// Columnar fused verification: `dot_cmp_block` produces the ≤ b bitmask
/// without materializing the products.
fn verify_columnar(table: &FeatureTable, q: &InequalityQuery) -> usize {
    let cols = table.columns();
    let stride = cols.stride();
    let leq = q.cmp() == Cmp::Leq;
    let mut matched = 0;
    for seg in cols.segments(0, table.len() as u32) {
        matched +=
            dot_cmp_block(q.a(), seg.cols, stride, seg.lanes, q.b(), leq).count_ones() as usize;
    }
    matched
}

fn bench_dot_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group(format!("dot_kernels/{}", planar_geom::kernel_name()));
    group.sample_size(20);
    group.throughput(Throughput::Elements(N as u64));
    for dim in DIMS {
        let table = table_for(dim);
        let q = query_for(dim);
        let expected = sum_naive(&table, q.a());
        assert_eq!(sum_blocked(&table, q.a()), expected, "blocked != naive");
        assert_eq!(sum_columnar(&table, q.a()), expected, "columnar != naive");
        group.bench_function(BenchmarkId::new("naive", dim), |b| {
            b.iter(|| black_box(sum_naive(&table, q.a())))
        });
        group.bench_function(BenchmarkId::new("blocked", dim), |b| {
            b.iter(|| black_box(sum_blocked(&table, q.a())))
        });
        group.bench_function(BenchmarkId::new("columnar", dim), |b| {
            b.iter(|| black_box(sum_columnar(&table, q.a())))
        });
    }
    group.finish();
}

fn bench_verification_layouts(c: &mut Criterion) {
    let mut group = c.benchmark_group(format!("verify_layout/{}", planar_geom::kernel_name()));
    group.sample_size(20);
    group.throughput(Throughput::Elements(N as u64));
    for dim in DIMS {
        let table = table_for(dim);
        let q = query_for(dim);
        assert_eq!(
            verify_rowmajor(&table, &q),
            verify_columnar(&table, &q),
            "layouts disagree at dim {dim}"
        );
        group.bench_function(BenchmarkId::new("rowmajor", dim), |b| {
            b.iter(|| black_box(verify_rowmajor(&table, &q)))
        });
        group.bench_function(BenchmarkId::new("columnar_fused", dim), |b| {
            b.iter(|| black_box(verify_columnar(&table, &q)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dot_kernels, bench_verification_layouts);
criterion_main!(benches);
