//! Criterion: top-k nearest-neighbor queries (Algorithm 2) vs brute force,
//! with and without the Claim-3 lower-bound pruning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use planar_core::{IndexConfig, PlanarIndexSet, SeqScan, TopKQuery, VecStore};
use planar_datagen::queries::{eq18_domain, Eq18Generator};
use planar_datagen::synthetic::{SyntheticConfig, SyntheticKind};
use std::hint::black_box;

const N: usize = 100_000;

fn bench_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk");
    group.sample_size(20);
    let table = SyntheticConfig::paper(SyntheticKind::Independent, N, 6).generate();
    let scan_table = table.clone();
    let set: PlanarIndexSet<VecStore> =
        PlanarIndexSet::build(table, eq18_domain(6, 4), IndexConfig::with_budget(100)).unwrap();
    let scan = SeqScan::new(&scan_table);
    let queries = Eq18Generator::new(set.table(), 4, 11).queries(16);
    for k in [5usize, 100, 1_000] {
        let tks: Vec<TopKQuery> = queries
            .iter()
            .map(|q| TopKQuery::new(q.clone(), k).unwrap())
            .collect();
        let mut i = 0;
        group.bench_function(BenchmarkId::new("planar", k), |b| {
            b.iter(|| {
                i = (i + 1) % tks.len();
                black_box(set.top_k(&tks[i]).unwrap())
            })
        });
        let mut j = 0;
        group.bench_function(BenchmarkId::new("planar_unpruned", k), |b| {
            b.iter(|| {
                j = (j + 1) % tks.len();
                black_box(set.top_k_unpruned(&tks[j]).unwrap())
            })
        });
        let mut l = 0;
        group.bench_function(BenchmarkId::new("scan", k), |b| {
            b.iter(|| {
                l = (l + 1) % tks.len();
                black_box(scan.top_k(&tks[l]).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_topk);
criterion_main!(benches);
