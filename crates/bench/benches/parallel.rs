//! Criterion: the parallel batched query engine — multi-index build and
//! batched inequality/top-k execution at 1, 2, 4 and 8 worker threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use planar_core::{ExecutionConfig, IndexConfig, PlanarIndexSet, TopKQuery, VecStore};
use planar_datagen::queries::{eq18_domain, Eq18Generator};
use planar_datagen::synthetic::{SyntheticConfig, SyntheticKind};
use std::hint::black_box;

const N: usize = 100_000;
const DIM: usize = 8;
const RQ: usize = 4;
const BUDGET: usize = 32;
const BATCH: usize = 64;
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn bench_parallel_build(c: &mut Criterion) {
    let table = SyntheticConfig::paper(SyntheticKind::Independent, N, DIM).generate();
    let mut group = c.benchmark_group("parallel_build");
    group.sample_size(10);
    for threads in THREADS {
        let exec = ExecutionConfig::with_threads(threads);
        group.bench_function(BenchmarkId::from_parameter(threads), |b| {
            b.iter(|| {
                let set: PlanarIndexSet<VecStore> = PlanarIndexSet::build_with(
                    table.clone(),
                    eq18_domain(DIM, RQ),
                    IndexConfig::with_budget(BUDGET),
                    &exec,
                )
                .unwrap();
                black_box(set)
            })
        });
    }
    group.finish();
}

fn bench_parallel_batches(c: &mut Criterion) {
    let table = SyntheticConfig::paper(SyntheticKind::Independent, N, DIM).generate();
    let set: PlanarIndexSet<VecStore> = PlanarIndexSet::build(
        table,
        eq18_domain(DIM, RQ),
        IndexConfig::with_budget(BUDGET),
    )
    .unwrap();
    let queries = Eq18Generator::new(set.table(), RQ, 7)
        .with_inequality_parameter(0.25)
        .queries(BATCH);
    let topk: Vec<TopKQuery> = queries
        .iter()
        .map(|q| TopKQuery::new(q.clone(), 10).unwrap())
        .collect();

    let mut group = c.benchmark_group("query_batch");
    group.sample_size(10);
    group.throughput(Throughput::Elements(BATCH as u64));
    for threads in THREADS {
        let exec = ExecutionConfig::with_threads(threads);
        group.bench_function(BenchmarkId::from_parameter(threads), |b| {
            b.iter(|| black_box(set.query_batch(&queries, &exec).unwrap()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("top_k_batch");
    group.sample_size(10);
    group.throughput(Throughput::Elements(BATCH as u64));
    for threads in THREADS {
        let exec = ExecutionConfig::with_threads(threads);
        group.bench_function(BenchmarkId::from_parameter(threads), |b| {
            b.iter(|| black_box(set.top_k_batch(&topk, &exec).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_build, bench_parallel_batches);
criterion_main!(benches);
