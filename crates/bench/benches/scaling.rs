//! Criterion: query-time scaling with n — the empirical check of the
//! paper's Table 1 bounds (`O(d' log n + t)` vs `O(n d')`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use planar_core::{IndexConfig, PlanarIndexSet, SeqScan, VecStore};
use planar_datagen::queries::{eq18_domain, Eq18Generator};
use planar_datagen::synthetic::{SyntheticConfig, SyntheticKind};
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(20);
    for n in [10_000usize, 40_000, 160_000] {
        group.throughput(Throughput::Elements(n as u64));
        let table = SyntheticConfig::paper(SyntheticKind::Independent, n, 6).generate();
        let scan_table = table.clone();
        let set: PlanarIndexSet<VecStore> =
            PlanarIndexSet::build(table, eq18_domain(6, 2), IndexConfig::with_budget(50)).unwrap();
        let queries = Eq18Generator::new(set.table(), 2, 5).queries(16);
        let mut i = 0;
        group.bench_function(BenchmarkId::new("planar", n), |b| {
            b.iter(|| {
                i = (i + 1) % queries.len();
                black_box(set.query(&queries[i]).unwrap())
            })
        });
        let scan = SeqScan::new(&scan_table);
        let mut j = 0;
        group.bench_function(BenchmarkId::new("scan", n), |b| {
            b.iter(|| {
                j = (j + 1) % queries.len();
                black_box(scan.evaluate(&queries[j]).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
