//! Drifting query workloads (paper §4.1/§8: domains learned from past
//! queries and updated over time).
//!
//! The generator emits a stream of inequality queries whose coefficient
//! distribution slides through the parameter space — the scenario in which
//! static index normals decay and the adaptive retuning of
//! `planar_core::AdaptivePlanarIndexSet` earns its keep.

use planar_core::{Cmp, FeatureTable, InequalityQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A query stream whose coefficient center drifts linearly from a start to
/// an end direction over `duration` queries, with multiplicative jitter.
#[derive(Debug, Clone)]
pub struct DriftingWorkload {
    start: Vec<f64>,
    end: Vec<f64>,
    duration: usize,
    emitted: usize,
    jitter: f64,
    selectivity: f64,
    maxima: Vec<f64>,
    rng: StdRng,
}

impl DriftingWorkload {
    /// Drift from coefficient center `start` to `end` over `duration`
    /// queries against `table` (its per-dimension maxima size the offsets,
    /// as in the paper's Eq. 18). `jitter` is the relative spread around
    /// the drifting center (e.g. 0.05 = ±5 %).
    ///
    /// # Panics
    ///
    /// Panics if `start`/`end` dimensionality differs from the table's.
    pub fn new(
        table: &FeatureTable,
        start: Vec<f64>,
        end: Vec<f64>,
        duration: usize,
        jitter: f64,
        seed: u64,
    ) -> Self {
        assert_eq!(start.len(), table.dim(), "start center dimensionality");
        assert_eq!(end.len(), table.dim(), "end center dimensionality");
        Self {
            start,
            end,
            duration: duration.max(1),
            emitted: 0,
            jitter: jitter.abs(),
            selectivity: 0.25,
            maxima: table.max_per_dim(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Override the Eq. 18 inequality parameter (default 0.25).
    #[must_use]
    pub fn with_selectivity(mut self, s: f64) -> Self {
        self.selectivity = s;
        self
    }

    /// Progress of the drift in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        (self.emitted as f64 / self.duration as f64).min(1.0)
    }

    /// The current (drifted) coefficient center.
    pub fn center(&self) -> Vec<f64> {
        let t = self.progress();
        self.start
            .iter()
            .zip(&self.end)
            .map(|(s, e)| s + t * (e - s))
            .collect()
    }

    /// Emit the next query.
    pub fn next_query(&mut self) -> InequalityQuery {
        let center = self.center();
        self.emitted += 1;
        let a: Vec<f64> = center
            .iter()
            .map(|c| {
                let f = 1.0 + self.jitter * (2.0 * self.rng.random::<f64>() - 1.0);
                (c * f).max(f64::MIN_POSITIVE)
            })
            .collect();
        let b = self.selectivity
            * a.iter()
                .zip(&self.maxima)
                .map(|(ai, mi)| ai * mi)
                .sum::<f64>();
        InequalityQuery::new(a, Cmp::Leq, b).expect("drift centers are positive finite")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{SyntheticConfig, SyntheticKind};

    fn table() -> FeatureTable {
        SyntheticConfig::paper(SyntheticKind::Independent, 500, 3).generate()
    }

    #[test]
    fn drift_moves_from_start_to_end() {
        let t = table();
        let mut w =
            DriftingWorkload::new(&t, vec![1.0, 1.0, 1.0], vec![10.0, 1.0, 1.0], 100, 0.0, 7);
        let first = w.next_query();
        assert!((first.a()[0] - 1.0).abs() < 0.1, "{:?}", first.a());
        for _ in 0..150 {
            w.next_query();
        }
        assert_eq!(w.progress(), 1.0);
        let last = w.next_query();
        assert!((last.a()[0] - 10.0).abs() < 0.1, "{:?}", last.a());
        // Non-drifting axes stay put.
        assert!((last.a()[1] - 1.0).abs() < 0.1);
    }

    #[test]
    fn jitter_spreads_but_respects_center() {
        let t = table();
        let mut w = DriftingWorkload::new(&t, vec![5.0, 5.0, 5.0], vec![5.0, 5.0, 5.0], 10, 0.1, 9);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..50 {
            let q = w.next_query();
            for &a in q.a() {
                assert!((4.4..=5.6).contains(&a), "coefficient {a}");
                distinct.insert(a.to_bits());
            }
        }
        assert!(distinct.len() > 10, "jitter must vary coefficients");
    }

    #[test]
    fn offsets_follow_eq18() {
        let t = table();
        let maxima = t.max_per_dim();
        let mut w = DriftingWorkload::new(&t, vec![2.0, 2.0, 2.0], vec![2.0, 2.0, 2.0], 10, 0.0, 3)
            .with_selectivity(0.5);
        let q = w.next_query();
        let expect = 0.5 * q.a().iter().zip(&maxima).map(|(a, m)| a * m).sum::<f64>();
        assert!((q.b() - expect).abs() < 1e-9);
    }
}
