//! The paper's generalized query workload (Eq. 18, §7.1):
//!
//! ```text
//! Σᵢ aᵢ·xᵢ  ≤  s · (Σᵢ aᵢ·max(i))
//! ```
//!
//! Each coefficient `aᵢ` is drawn uniformly from the discrete domain
//! `{1, …, RQ}` — `RQ` is the *randomness of the query*, giving `RQ^d`
//! possible query normals — and `s` is the *inequality parameter*
//! (0.25 by default, swept over 0.10–1.00 in Fig. 11 to control query
//! selectivity). `max(i)` is the per-dimension maximum of the dataset.

use planar_core::{Cmp, FeatureTable, InequalityQuery, ParameterDomain};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The index-side parameter domain matching Eq. 18 queries: every axis
/// draws from `{1, …, rq}`.
pub fn eq18_domain(dim: usize, rq: usize) -> ParameterDomain {
    ParameterDomain::uniform_randomness(dim, rq).expect("rq ≥ 1, dim ≥ 1")
}

/// Generator of Eq. 18 queries over a fixed dataset.
#[derive(Debug, Clone)]
pub struct Eq18Generator {
    maxima: Vec<f64>,
    rq: usize,
    /// The inequality parameter `s`.
    pub inequality_parameter: f64,
    rng: StdRng,
}

impl Eq18Generator {
    /// A generator for the given dataset with randomness `rq` and the
    /// paper's default inequality parameter 0.25.
    pub fn new(table: &FeatureTable, rq: usize, seed: u64) -> Self {
        Self {
            maxima: table.max_per_dim(),
            rq: rq.max(1),
            inequality_parameter: 0.25,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Override the inequality parameter `s` (Fig. 11 sweeps 0.10–1.00).
    pub fn with_inequality_parameter(mut self, s: f64) -> Self {
        self.inequality_parameter = s;
        self
    }

    /// The query randomness `RQ`.
    pub fn rq(&self) -> usize {
        self.rq
    }

    /// Draw the next query.
    pub fn next_query(&mut self) -> InequalityQuery {
        let a: Vec<f64> = (0..self.maxima.len())
            .map(|_| self.rng.random_range(1..=self.rq) as f64)
            .collect();
        let b = self.inequality_parameter
            * a.iter()
                .zip(&self.maxima)
                .map(|(ai, mi)| ai * mi)
                .sum::<f64>();
        InequalityQuery::new(a, Cmp::Leq, b).expect("coefficients ≥ 1 are valid")
    }

    /// Draw a batch of queries.
    pub fn queries(&mut self, count: usize) -> Vec<InequalityQuery> {
        (0..count).map(|_| self.next_query()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{SyntheticConfig, SyntheticKind};
    use planar_core::SeqScan;

    fn table() -> FeatureTable {
        SyntheticConfig::paper(SyntheticKind::Independent, 2000, 4).generate()
    }

    #[test]
    fn coefficients_come_from_rq_grid() {
        let t = table();
        let mut g = Eq18Generator::new(&t, 4, 7);
        for _ in 0..50 {
            let q = g.next_query();
            for &a in q.a() {
                assert!((1.0..=4.0).contains(&a));
                assert_eq!(a.fract(), 0.0, "coefficient {a} not on grid");
            }
            assert!(eq18_domain(4, 4).contains(q.a()));
        }
    }

    #[test]
    fn rq_one_gives_single_normal() {
        let t = table();
        let mut g = Eq18Generator::new(&t, 1, 7);
        let q1 = g.next_query();
        let q2 = g.next_query();
        assert_eq!(q1.a(), q2.a());
        assert!(q1.a().iter().all(|&a| a == 1.0));
    }

    #[test]
    fn offset_follows_eq18() {
        let t = table();
        let mut g = Eq18Generator::new(&t, 2, 3).with_inequality_parameter(0.5);
        let maxima = t.max_per_dim();
        let q = g.next_query();
        let expect = 0.5 * q.a().iter().zip(&maxima).map(|(a, m)| a * m).sum::<f64>();
        assert!((q.b() - expect).abs() < 1e-9);
    }

    #[test]
    fn selectivity_grows_with_inequality_parameter() {
        let t = table();
        let scan = SeqScan::new(&t);
        let mut counts = Vec::new();
        for s in [0.1, 0.25, 0.5, 0.75, 1.0] {
            let mut g = Eq18Generator::new(&t, 1, 11).with_inequality_parameter(s);
            let q = g.next_query();
            counts.push(scan.count(&q).unwrap());
        }
        // Monotone nondecreasing, ~0 at s=0.1 and everything at s=1.0.
        for w in counts.windows(2) {
            assert!(w[0] <= w[1], "{counts:?}");
        }
        assert_eq!(*counts.last().unwrap(), t.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let t = table();
        let a: Vec<_> = Eq18Generator::new(&t, 4, 42).queries(5);
        let b: Vec<_> = Eq18Generator::new(&t, 4, 42).queries(5);
        assert_eq!(a, b);
    }
}
