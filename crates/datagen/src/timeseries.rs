//! Time-series workloads (the paper's time-series-prediction application,
//! intro citation \[5\]).
//!
//! A forecast that is *linear in the recent window* — weighted moving
//! averages, exponential smoothing, AR predictors — is a scalar product
//! `⟨w, window⟩`, so "find all series whose forecast crosses a threshold"
//! is exactly a Problem-1 query with `φ(series) = (xₜ, xₜ₋₁, …)` known at
//! index time and the analyst's weights `w` known only at query time.

use crate::rng::{clamped_normal, standard_normal};
use planar_core::FeatureTable;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generate `m` mean-reverting, strictly-positive series of length `len`
/// (an Ornstein–Uhlenbeck-style level process — think sensor readings or
/// demand curves).
pub fn generate_series(m: usize, len: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7153);
    (0..m)
        .map(|_| {
            let level = clamped_normal(&mut rng, 50.0, 20.0, 5.0, 95.0);
            let vol = clamped_normal(&mut rng, 2.0, 1.0, 0.2, 5.0);
            let mut x = level;
            (0..len)
                .map(|_| {
                    x += 0.2 * (level - x) + vol * standard_normal(&mut rng);
                    x = x.clamp(0.1, 200.0);
                    x
                })
                .collect()
        })
        .collect()
}

/// Build the index table: one row per series holding its last `window`
/// values, most recent first — the `φ` of the forecasting query.
///
/// # Panics
///
/// Panics if any series is shorter than `window`.
pub fn window_table(series: &[Vec<f64>], window: usize) -> FeatureTable {
    let mut table = FeatureTable::with_capacity(window, series.len()).expect("window > 0");
    let mut row = vec![0.0; window];
    for s in series {
        assert!(s.len() >= window, "series shorter than window");
        for (k, slot) in row.iter_mut().enumerate() {
            *slot = s[s.len() - 1 - k];
        }
        table.push_row(&row).expect("series values are finite");
    }
    table
}

/// Exponential-smoothing forecast weights for decay `lambda ∈ (0, 1)`:
/// `wₖ ∝ λ(1−λ)ᵏ`, normalized to sum 1 over the window. All positive —
/// a one-parameter family of query normals in the first octant.
pub fn exponential_weights(lambda: f64, window: usize) -> Vec<f64> {
    let raw: Vec<f64> = (0..window)
        .map(|k| lambda * (1.0 - lambda).powi(k as i32))
        .collect();
    let sum: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / sum).collect()
}

/// Per-axis `[lo, hi]` envelope of [`exponential_weights`] over a λ grid —
/// the parameter domain the index is built for.
pub fn weight_envelope(lambdas: &[f64], window: usize) -> Vec<(f64, f64)> {
    let mut lo = vec![f64::INFINITY; window];
    let mut hi = vec![f64::NEG_INFINITY; window];
    for &l in lambdas {
        for (k, w) in exponential_weights(l, window).into_iter().enumerate() {
            lo[k] = lo[k].min(w);
            hi[k] = hi[k].max(w);
        }
    }
    lo.into_iter().zip(hi).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_are_positive_and_mean_reverting() {
        let series = generate_series(50, 200, 3);
        assert_eq!(series.len(), 50);
        for s in &series {
            assert_eq!(s.len(), 200);
            assert!(s.iter().all(|&v| v > 0.0));
            // Mean reversion keeps the long-run spread finite: the last
            // value stays within the clamped band.
            assert!(*s.last().unwrap() <= 200.0);
        }
    }

    #[test]
    fn window_table_takes_most_recent_first() {
        let series = vec![vec![1.0, 2.0, 3.0, 4.0, 5.0]];
        let t = window_table(&series, 3);
        assert_eq!(t.row(0), &[5.0, 4.0, 3.0]);
    }

    #[test]
    fn weights_are_normalized_and_decaying() {
        for lambda in [0.3, 0.5, 0.9] {
            let w = exponential_weights(lambda, 8);
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            for pair in w.windows(2) {
                assert!(pair[0] > pair[1], "λ={lambda}: {pair:?}");
            }
            assert!(w.iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn envelope_brackets_every_grid_member() {
        let lambdas = [0.3, 0.5, 0.7, 0.9];
        let env = weight_envelope(&lambdas, 6);
        for &l in &lambdas {
            for (k, w) in exponential_weights(l, 6).into_iter().enumerate() {
                // Tolerance: optimizers may fold the two computations of
                // the same weight differently (vectorized vs scalar sums).
                let eps = 1e-12;
                assert!(
                    env[k].0 - eps <= w && w <= env[k].1 + eps,
                    "k={k} w={w} env={:?}",
                    env[k]
                );
            }
        }
        assert!(env.iter().all(|&(lo, hi)| lo > 0.0 && hi >= lo));
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate_series(5, 50, 1), generate_series(5, 50, 1));
        assert_ne!(generate_series(5, 50, 1), generate_series(5, 50, 2));
    }
}
