//! The three synthetic dataset families of the paper's evaluation (§7.1),
//! following the skyline-operator generator of Börzsönyi et al. \[4\]:
//!
//! * **Independent** — every attribute uniform over the range, independent
//!   of the others.
//! * **Correlated** — points concentrate around the main diagonal: a point
//!   good in one dimension tends to be good in all.
//! * **Anti-correlated** — points concentrate around the hyperplane
//!   `Σ xᵢ ≈ const`: a point good in one dimension is bad in at least one
//!   other. This family produces the largest intermediate intervals
//!   (paper §7.2.2) because many points have near-identical index keys for
//!   diagonal-ish normals while straddling the per-axis thresholds.

use crate::rng::{clamped_normal, exponential};
use planar_core::FeatureTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which synthetic family to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyntheticKind {
    /// Independent uniform attributes (`Indp`).
    Independent,
    /// Diagonal-correlated attributes (`Corr`).
    Correlated,
    /// Anti-correlated attributes (`Anti`).
    AntiCorrelated,
}

impl SyntheticKind {
    /// All three families, in the paper's order.
    pub const ALL: [SyntheticKind; 3] = [
        SyntheticKind::Independent,
        SyntheticKind::Correlated,
        SyntheticKind::AntiCorrelated,
    ];

    /// The short name used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            SyntheticKind::Independent => "indp",
            SyntheticKind::Correlated => "corr",
            SyntheticKind::AntiCorrelated => "anti",
        }
    }
}

/// Configuration for a synthetic dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    /// Family.
    pub kind: SyntheticKind,
    /// Number of points (paper: 1M).
    pub n: usize,
    /// Dimensionality (paper: 2–14).
    pub dim: usize,
    /// Attribute range lower bound (paper: 1).
    pub lo: f64,
    /// Attribute range upper bound (paper: 100).
    pub hi: f64,
    /// RNG seed; generation is deterministic given the config.
    pub seed: u64,
}

impl SyntheticConfig {
    /// The paper's configuration: range (1, 100), seeded deterministically.
    pub fn paper(kind: SyntheticKind, n: usize, dim: usize) -> Self {
        Self {
            kind,
            n,
            dim,
            lo: 1.0,
            hi: 100.0,
            seed: 0xDA7A_5EED ^ (dim as u64) << 8 ^ kind as u64,
        }
    }

    /// Generate the dataset.
    pub fn generate(&self) -> FeatureTable {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut table =
            FeatureTable::with_capacity(self.dim, self.n).expect("dim validated by caller");
        let span = self.hi - self.lo;
        let mut row = vec![0.0; self.dim];
        for _ in 0..self.n {
            match self.kind {
                SyntheticKind::Independent => {
                    for v in &mut row {
                        *v = self.lo + span * rng.random::<f64>();
                    }
                }
                SyntheticKind::Correlated => {
                    // Shared latent level on the diagonal plus small
                    // independent jitter.
                    let level = clamped_normal(&mut rng, 0.5, 0.22, 0.0, 1.0);
                    for v in &mut row {
                        let x = clamped_normal(&mut rng, level, 0.06, 0.0, 1.0);
                        *v = self.lo + span * x;
                    }
                }
                SyntheticKind::AntiCorrelated => {
                    // A point on the simplex Σ wᵢ = 1 (Dirichlet(1,…,1) via
                    // normalized exponentials) scaled by a total budget
                    // concentrated near d/2: coordinates are pairwise
                    // negatively correlated.
                    let total = clamped_normal(&mut rng, 0.5, 0.05, 0.05, 0.95) * self.dim as f64;
                    let mut sum = 0.0;
                    for v in &mut row {
                        *v = exponential(&mut rng);
                        sum += *v;
                    }
                    for v in &mut row {
                        let x = (*v / sum * total).clamp(0.0, 1.0);
                        *v = self.lo + span * x;
                    }
                }
            }
            table.push_row(&row).expect("generated rows are finite");
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn correlation(table: &FeatureTable, i: usize, j: usize) -> f64 {
        let n = table.len() as f64;
        let (mut si, mut sj) = (0.0, 0.0);
        for (_, row) in table.iter() {
            si += row[i];
            sj += row[j];
        }
        let (mi, mj) = (si / n, sj / n);
        let (mut cov, mut vi, mut vj) = (0.0, 0.0, 0.0);
        for (_, row) in table.iter() {
            let (di, dj) = (row[i] - mi, row[j] - mj);
            cov += di * dj;
            vi += di * di;
            vj += dj * dj;
        }
        cov / (vi.sqrt() * vj.sqrt())
    }

    #[test]
    fn ranges_are_respected() {
        for kind in SyntheticKind::ALL {
            let t = SyntheticConfig::paper(kind, 2000, 6).generate();
            assert_eq!(t.len(), 2000);
            assert_eq!(t.dim(), 6);
            for (_, row) in t.iter() {
                for &v in row {
                    assert!((1.0..=100.0).contains(&v), "{kind:?}: {v}");
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticConfig::paper(SyntheticKind::Correlated, 500, 4).generate();
        let b = SyntheticConfig::paper(SyntheticKind::Correlated, 500, 4).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = SyntheticConfig::paper(SyntheticKind::Independent, 100, 3);
        let a = cfg.generate();
        cfg.seed ^= 1;
        let b = cfg.generate();
        assert_ne!(a, b);
    }

    #[test]
    fn independent_has_near_zero_correlation() {
        let t = SyntheticConfig::paper(SyntheticKind::Independent, 20_000, 4).generate();
        let c = correlation(&t, 0, 1);
        assert!(c.abs() < 0.05, "correlation {c}");
    }

    #[test]
    fn correlated_has_strong_positive_correlation() {
        let t = SyntheticConfig::paper(SyntheticKind::Correlated, 20_000, 4).generate();
        let c = correlation(&t, 0, 1);
        assert!(c > 0.7, "correlation {c}");
    }

    #[test]
    fn anticorrelated_has_negative_correlation() {
        let t = SyntheticConfig::paper(SyntheticKind::AntiCorrelated, 20_000, 4).generate();
        let c = correlation(&t, 0, 1);
        assert!(c < -0.1, "correlation {c}");
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(SyntheticKind::Independent.name(), "indp");
        assert_eq!(SyntheticKind::Correlated.name(), "corr");
        assert_eq!(SyntheticKind::AntiCorrelated.name(), "anti");
    }
}
