//! Distribution sampling helpers.
//!
//! The permitted dependency set includes `rand` but not `rand_distr`, so the
//! handful of non-uniform distributions the generators need are implemented
//! here (Box–Muller Gaussians, clamped/truncated variants, a two-parameter
//! beta-like skew sampler).

use rand::Rng;

/// One standard-normal sample via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 (log singularity).
    let u1: f64 = loop {
        let u: f64 = rng.random();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A `N(mean, sd²)` sample.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * standard_normal(rng)
}

/// A `N(mean, sd²)` sample clamped into `[lo, hi]`.
pub fn clamped_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64, lo: f64, hi: f64) -> f64 {
    normal(rng, mean, sd).clamp(lo, hi)
}

/// A lognormal-shaped sample `exp(N(mu, sigma²))`, clamped to `[lo, hi]` —
/// used for skewed, heavy-right-tail attributes (texture energies, household
/// currents).
pub fn clamped_lognormal<R: Rng + ?Sized>(
    rng: &mut R,
    mu: f64,
    sigma: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    normal(rng, mu, sigma).exp().clamp(lo, hi)
}

/// A cheap Beta(α, β)-shaped sample on (0, 1) via the ratio of gamma-like
/// sums (Jöhnk's method degenerates for large parameters; the generators
/// here only use small α, β where it is exact).
pub fn beta_like<R: Rng + ?Sized>(rng: &mut R, alpha: f64, beta: f64) -> f64 {
    // Jöhnk's algorithm: valid for alpha, beta ≤ 1 is the classic
    // constraint, but rejection keeps it correct for moderate parameters
    // too; the loop terminates fast for the small parameters we use.
    for _ in 0..256 {
        let u: f64 = rng.random::<f64>().powf(1.0 / alpha);
        let v: f64 = rng.random::<f64>().powf(1.0 / beta);
        if u + v <= 1.0 && u + v > 0.0 {
            return u / (u + v);
        }
    }
    // Fallback: mean of the distribution.
    alpha / (alpha + beta)
}

/// A standard-exponential sample (rate 1).
pub fn exponential<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u: f64 = loop {
        let u: f64 = rng.random();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    -u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn clamped_normal_respects_bounds() {
        let mut r = rng();
        for _ in 0..10_000 {
            let v = clamped_normal(&mut r, 0.0, 10.0, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn lognormal_is_positive_and_skewed() {
        let mut r = rng();
        let samples: Vec<f64> = (0..20_000)
            .map(|_| clamped_lognormal(&mut r, 0.0, 1.0, 0.0, 1e9))
            .collect();
        assert!(samples.iter().all(|&v| v >= 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        // Right skew: mean > median.
        assert!(mean > median, "mean {mean} median {median}");
    }

    #[test]
    fn beta_like_in_unit_interval_with_right_shape() {
        let mut r = rng();
        let hi_skew: Vec<f64> = (0..20_000).map(|_| beta_like(&mut r, 0.9, 0.3)).collect();
        assert!(hi_skew.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let mean = hi_skew.iter().sum::<f64>() / hi_skew.len() as f64;
        // Beta(0.9, 0.3) has mean 0.75.
        assert!((mean - 0.75).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn exponential_mean_is_one() {
        let mut r = rng();
        let n = 50_000;
        let mean = (0..n).map(|_| exponential(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.03, "mean {mean}");
    }
}
