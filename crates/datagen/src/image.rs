//! Simulated stand-ins for the two Corel image-feature datasets (§7.1).
//!
//! The paper uses color-moment (`CMoment`, 68,040 × 9, values in
//! (−4.15, 4.59)) and co-occurrence-texture (`CTexture`, 68,040 × 16,
//! values in (−5.25, 50.21)) features from the UCI repository. We cannot
//! ship those files, so these generators produce tables with the same
//! shape, ranges and the distributional properties that matter to the
//! index:
//!
//! * `CMoment` columns are roughly Gaussian around small means with both
//!   signs present — this exercises the octant-translation path (§4.5),
//!   since `φ(x)` coordinates are frequently negative.
//! * `CTexture` columns are non-negative-ish and strongly right-skewed
//!   (co-occurrence energies), with a shared per-image latent factor giving
//!   mild positive inter-column correlation, as real texture features have.

use crate::rng::{clamped_lognormal, clamped_normal, standard_normal};
use planar_core::FeatureTable;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Value range of the CMoment dataset (paper Table 2).
pub const CMOMENT_RANGE: (f64, f64) = (-4.15, 4.59);
/// Value range of the CTexture dataset (paper Table 2).
pub const CTEXTURE_RANGE: (f64, f64) = (-5.25, 50.21);
/// Dimensionality of CMoment.
pub const CMOMENT_DIM: usize = 9;
/// Dimensionality of CTexture.
pub const CTEXTURE_DIM: usize = 16;

/// Generate a simulated CMoment table with `n` rows.
pub fn cmoment(n: usize, seed: u64) -> FeatureTable {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0_10_12);
    let mut table = FeatureTable::with_capacity(CMOMENT_DIM, n).expect("nonzero dim");
    let (lo, hi) = CMOMENT_RANGE;
    // Per-column (mean, sd): the first three moments (means of L, u, v
    // channels) sit higher; the skewness columns straddle zero.
    let params: [(f64, f64); CMOMENT_DIM] = [
        (0.8, 0.9),
        (0.3, 0.7),
        (0.1, 0.8),
        (0.0, 0.9),
        (-0.2, 0.8),
        (0.2, 1.0),
        (-0.1, 1.1),
        (0.0, 1.2),
        (0.1, 1.0),
    ];
    let mut row = vec![0.0; CMOMENT_DIM];
    for _ in 0..n {
        // Shared latent "image brightness" factor for mild correlation.
        let latent = 0.35 * standard_normal(&mut rng);
        for (v, (mean, sd)) in row.iter_mut().zip(params) {
            *v = clamped_normal(&mut rng, mean + latent, sd, lo, hi);
        }
        table.push_row(&row).expect("finite");
    }
    table
}

/// Generate a simulated CTexture table with `n` rows.
pub fn ctexture(n: usize, seed: u64) -> FeatureTable {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7E_47_52);
    let mut table = FeatureTable::with_capacity(CTEXTURE_DIM, n).expect("nonzero dim");
    let (lo, hi) = CTEXTURE_RANGE;
    let mut row = vec![0.0; CTEXTURE_DIM];
    for _ in 0..n {
        let latent = 0.4 * standard_normal(&mut rng);
        for (i, v) in row.iter_mut().enumerate() {
            // Alternate column shapes: energy-like columns are lognormal
            // (heavy right tail up to ~50); contrast-like columns are small
            // Gaussians that may dip slightly negative, matching the
            // published range floor of −5.25.
            *v = if i % 4 == 0 {
                clamped_lognormal(&mut rng, 1.2 + latent, 0.8, 0.0, hi)
            } else {
                clamped_normal(&mut rng, 2.0 + latent, 2.2, lo, hi)
            };
        }
        table.push_row(&row).expect("finite");
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmoment_shape_and_range() {
        let t = cmoment(5000, 1);
        assert_eq!(t.dim(), CMOMENT_DIM);
        assert_eq!(t.len(), 5000);
        let (lo, hi) = CMOMENT_RANGE;
        for (_, row) in t.iter() {
            for &v in row {
                assert!((lo..=hi).contains(&v));
            }
        }
    }

    #[test]
    fn cmoment_has_negative_values() {
        // Essential: negative coordinates force the translation path.
        let t = cmoment(5000, 2);
        let has_negative = t.iter().any(|(_, row)| row.iter().any(|&v| v < 0.0));
        assert!(has_negative);
    }

    #[test]
    fn ctexture_shape_range_and_skew() {
        let t = ctexture(5000, 3);
        assert_eq!(t.dim(), CTEXTURE_DIM);
        let (lo, hi) = CTEXTURE_RANGE;
        let mut col0: Vec<f64> = Vec::new();
        for (_, row) in t.iter() {
            for &v in row {
                assert!((lo..=hi).contains(&v));
            }
            col0.push(row[0]);
        }
        // Column 0 is the lognormal (energy) column: right-skewed.
        let mean = col0.iter().sum::<f64>() / col0.len() as f64;
        col0.sort_by(f64::total_cmp);
        let median = col0[col0.len() / 2];
        assert!(mean > median, "mean {mean} ≤ median {median}");
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(cmoment(100, 9), cmoment(100, 9));
        assert_eq!(ctexture(100, 9), ctexture(100, 9));
        assert_ne!(cmoment(100, 9), cmoment(100, 10));
    }
}
