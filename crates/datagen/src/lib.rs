//! # planar-datagen
//!
//! Dataset and query-workload generators reproducing the experimental setup
//! of the Planar-index paper (§7.1, Table 2).
//!
//! ## Datasets
//!
//! | name | kind | n (paper) | dims | attribute range |
//! |---|---|---|---|---|
//! | `Indp` | synthetic, independent | 1,000,000 | 2–14 | (1, 100) |
//! | `Corr` | synthetic, correlated | 1,000,000 | 2–14 | (1, 100) |
//! | `Anti` | synthetic, anti-correlated | 1,000,000 | 2–14 | (1, 100) |
//! | `CMoment` | simulated Corel color moments | 68,040 | 9 | (−4.15, 4.59) |
//! | `CTexture` | simulated Corel co-occurrence texture | 68,040 | 16 | (−5.25, 50.21) |
//! | `Consumption` | simulated household electric power | 2,075,259 | 4 | see [`consumption`] |
//!
//! The three synthetic families follow the skyline-operator generator of
//! Börzsönyi et al. that the paper cites \[4\]. The "real" datasets are
//! *simulated*: we cannot ship the Corel/UCI files, so we generate tables
//! with the same cardinality, dimensionality, attribute ranges, and the
//! distributional features that drive index behaviour (sign structure,
//! skew, inter-attribute coupling). See `DESIGN.md` §4 for the substitution
//! rationale.
//!
//! ## Query workloads
//!
//! [`queries::Eq18Generator`] produces the paper's generalized scalar
//! product query (Eq. 18): `Σ aᵢxᵢ ≤ s·(Σ aᵢ·max(i))` with each `aᵢ` drawn
//! from the discrete domain `{1, …, RQ}` and `s` the *inequality parameter*
//! (0.25 by default; swept in Fig. 11).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod consumption;
pub mod drift;
pub mod image;
pub mod queries;
pub mod rng;
pub mod synthetic;
pub mod timeseries;

pub use consumption::ConsumptionGenerator;
pub use drift::DriftingWorkload;
pub use image::{cmoment, ctexture};
pub use queries::{eq18_domain, Eq18Generator};
pub use synthetic::{SyntheticConfig, SyntheticKind};

use planar_core::FeatureTable;

/// Paper-scale cardinality of the synthetic datasets.
pub const SYNTHETIC_N: usize = 1_000_000;
/// Paper-scale cardinality of the image datasets.
pub const IMAGE_N: usize = 68_040;
/// Paper-scale cardinality of the consumption dataset.
pub const CONSUMPTION_N: usize = 2_075_259;

/// Summary of a generated dataset — the rows of the paper's Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    /// Dataset name.
    pub name: String,
    /// Number of data points.
    pub n: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Smallest attribute value over all dimensions.
    pub min: f64,
    /// Largest attribute value over all dimensions.
    pub max: f64,
}

impl DatasetSummary {
    /// Summarize a feature table.
    pub fn of(name: &str, table: &FeatureTable) -> Self {
        let min = table
            .min_per_dim()
            .into_iter()
            .fold(f64::INFINITY, f64::min);
        let max = table
            .max_per_dim()
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max);
        Self {
            name: name.to_string(),
            n: table.len(),
            dim: table.dim(),
            min,
            max,
        }
    }
}
