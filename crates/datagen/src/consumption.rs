//! Simulated household electric-power-consumption dataset (paper Example 1
//! and §7.1).
//!
//! The paper uses the UCI "Individual household electric power consumption"
//! measurements: 2,075,259 rows with `active power`, `reactive power`,
//! `voltage` (223–254 V) and `current` (0–48 A). The experiment built on it
//! is the `Critical_Consume` SQL function — find households whose *power
//! factor* `active / (voltage·current)` is below a run-time threshold — so
//! the property this simulation must preserve is the physical coupling
//! `active = pf · voltage · current` with a realistic, high-skewed power
//! factor distribution in (0, 1). (We keep active power in watts so that
//! the ratio the paper queries is literally the power factor; the UCI file
//! reports kilowatts, a unit constant that does not affect selectivity.)
//!
//! The scalar product form of the query (paper Example 1):
//!
//! ```text
//! ⟨(1, −threshold), (active, voltage·current)⟩ ≤ 0
//! ```
//!
//! with `threshold` drawn from the 900-value grid 0.100, 0.101, …, 0.999.

use crate::rng::{beta_like, clamped_lognormal, clamped_normal};
use planar_core::{Cmp, Domain, FeatureTable, InequalityQuery, ParameterDomain};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Voltage range, volts (paper Table 2).
pub const VOLTAGE_RANGE: (f64, f64) = (223.0, 254.0);
/// Current range, amperes (paper Table 2).
pub const CURRENT_RANGE: (f64, f64) = (0.0, 48.0);

/// Generator for the simulated consumption dataset.
#[derive(Debug, Clone)]
pub struct ConsumptionGenerator {
    /// Number of households (paper: 2,075,259).
    pub n: usize,
    /// RNG seed.
    pub seed: u64,
}

/// One household measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Household {
    /// Active power, watts.
    pub active: f64,
    /// Reactive power, kVAr-scaled to (0, 1) like the UCI file.
    pub reactive: f64,
    /// Voltage, volts.
    pub voltage: f64,
    /// Current, amperes.
    pub current: f64,
}

impl Household {
    /// The power factor `active / (voltage·current)` the SQL function
    /// thresholds on.
    pub fn power_factor(&self) -> f64 {
        self.active / (self.voltage * self.current)
    }
}

impl ConsumptionGenerator {
    /// A generator with the default seed.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            seed: 0x50_57_52,
        }
    }

    /// Generate raw household rows.
    pub fn households(&self) -> Vec<Household> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.n)
            .map(|_| {
                let voltage =
                    clamped_normal(&mut rng, 240.0, 4.0, VOLTAGE_RANGE.0, VOLTAGE_RANGE.1);
                // Currents are strongly right-skewed: most households draw
                // little; a tail runs appliances.
                let current = clamped_lognormal(&mut rng, 0.6, 0.9, 0.05, CURRENT_RANGE.1);
                // Power factor skews high (Beta-like with mean ≈ 0.75).
                let pf = 0.05 + 0.95 * beta_like(&mut rng, 0.9, 0.3);
                let active = pf * voltage * current;
                let reactive = ((1.0 - pf * pf).sqrt() * rng.random::<f64>()).clamp(0.0, 1.0);
                Household {
                    active,
                    reactive,
                    voltage,
                    current,
                }
            })
            .collect()
    }

    /// The raw 4-attribute relation `(active, reactive, voltage, current)`.
    pub fn raw_table(&self) -> FeatureTable {
        let mut t = FeatureTable::with_capacity(4, self.n).expect("nonzero dim");
        for h in self.households() {
            t.push_row(&[h.active, h.reactive, h.voltage, h.current])
                .expect("finite");
        }
        t
    }

    /// The φ-mapped feature table the index is built over (paper Example 1):
    /// `φ(x) = (active, voltage·current)`.
    pub fn feature_table(&self) -> FeatureTable {
        let mut t = FeatureTable::with_capacity(2, self.n).expect("nonzero dim");
        for h in self.households() {
            t.push_row(&[h.active, h.voltage * h.current])
                .expect("finite");
        }
        t
    }
}

/// The query-parameter domain of the `Critical_Consume` function: the first
/// coefficient is the constant 1, the second is `−threshold` with threshold
/// on the paper's 900-value grid 0.100 … 0.999.
pub fn consumption_domain() -> ParameterDomain {
    let grid: Vec<f64> = (100..1000).map(|i| -(i as f64) / 1000.0).collect();
    ParameterDomain::new(vec![Domain::Discrete(vec![1.0]), Domain::Discrete(grid)])
        .expect("static domain is valid")
}

/// Build the `Critical_Consume(threshold)` query (paper Example 1):
/// `active − threshold·voltage·current ≤ 0`.
pub fn critical_consume_query(threshold: f64) -> InequalityQuery {
    InequalityQuery::new(vec![1.0, -threshold], Cmp::Leq, 0.0).expect("threshold is finite")
}

/// Sample a threshold from the paper's grid.
pub fn sample_threshold<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    rng.random_range(100..1000) as f64 / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use planar_core::{IndexConfig, PlanarIndexSet, SeqScan, VecStore};

    #[test]
    fn households_respect_physical_ranges() {
        let hs = ConsumptionGenerator::new(5000).households();
        assert_eq!(hs.len(), 5000);
        for h in &hs {
            assert!((VOLTAGE_RANGE.0..=VOLTAGE_RANGE.1).contains(&h.voltage));
            assert!((0.0..=CURRENT_RANGE.1).contains(&h.current));
            assert!((0.0..=1.0).contains(&h.reactive));
            let pf = h.power_factor();
            assert!((0.0..=1.0).contains(&pf), "pf {pf}");
        }
    }

    #[test]
    fn power_factor_distribution_is_spread() {
        // Thresholding must be meaningfully selective across the grid.
        let hs = ConsumptionGenerator::new(20_000).households();
        let below_half = hs.iter().filter(|h| h.power_factor() < 0.5).count();
        let frac = below_half as f64 / hs.len() as f64;
        assert!((0.05..=0.6).contains(&frac), "fraction below 0.5: {frac}");
    }

    #[test]
    fn query_selectivity_increases_with_threshold() {
        let t = ConsumptionGenerator::new(10_000).feature_table();
        let scan = SeqScan::new(&t);
        let lo = scan.count(&critical_consume_query(0.2)).unwrap();
        let hi = scan.count(&critical_consume_query(0.9)).unwrap();
        assert!(
            lo < hi,
            "selectivity must grow with threshold: {lo} vs {hi}"
        );
        assert!(hi > 0);
    }

    #[test]
    fn critical_consume_matches_power_factor_predicate() {
        let generator = ConsumptionGenerator::new(2000);
        let hs = generator.households();
        let t = generator.feature_table();
        let q = critical_consume_query(0.5);
        for (i, h) in hs.iter().enumerate() {
            let by_query = q.satisfies(t.row(i as u32));
            let by_pf = h.power_factor() <= 0.5;
            assert_eq!(by_query, by_pf, "household {i}");
        }
    }

    #[test]
    fn indexed_consumption_queries_are_exact() {
        let generator = ConsumptionGenerator::new(3000);
        let table = generator.feature_table();
        let scan_table = table.clone();
        let set: PlanarIndexSet<VecStore> =
            PlanarIndexSet::build(table, consumption_domain(), IndexConfig::with_budget(20))
                .unwrap();
        let scan = SeqScan::new(&scan_table);
        for threshold in [0.1, 0.35, 0.512, 0.75, 0.999] {
            let q = critical_consume_query(threshold);
            let out = set.query(&q).unwrap();
            assert!(out.stats.used_index(), "threshold {threshold}");
            assert_eq!(out.sorted_ids(), scan.evaluate(&q).unwrap());
        }
    }

    #[test]
    fn domain_contains_sampled_thresholds() {
        let d = consumption_domain();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let th = sample_threshold(&mut rng);
            assert!(d.signs_match(&[1.0, -th]));
            assert!(d.contains(&[1.0, -th]), "threshold {th}");
        }
    }
}
