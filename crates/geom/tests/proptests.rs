//! Property-based tests for the geometry substrate.
//!
//! These pin down the invariants the Planar index relies on: translation
//! places data in the target octant (Eq. 9–11), normalization preserves the
//! signed query margin exactly, and the raw-key decomposition used by
//! `planar-core` agrees with the normalized key.

use planar_geom::{approx_eq_eps, dot_slices, Hyperplane, Normalizer, Octant, Translation, Vector};
use proptest::prelude::*;

const DIM_RANGE: std::ops::RangeInclusive<usize> = 1..=8;

fn finite_coord() -> impl Strategy<Value = f64> {
    // Moderate magnitudes: the invariants are exact algebra; huge exponents
    // only test float cancellation, which approx_eq_eps already absorbs.
    -1e6..1e6_f64
}

fn nonzero_coord() -> impl Strategy<Value = f64> {
    prop_oneof![0.01..1e4_f64, -1e4..-0.01_f64]
}

prop_compose! {
    fn dim_and_rows()(d in DIM_RANGE)(
        d in Just(d),
        rows in prop::collection::vec(prop::collection::vec(finite_coord(), d), 1..40),
        a in prop::collection::vec(nonzero_coord(), d),
        b in 0.0..1e6_f64,
    ) -> (usize, Vec<Vec<f64>>, Vec<f64>, f64) {
        (d, rows, a, b)
    }
}

proptest! {
    #[test]
    fn translation_places_all_rows_in_octant((_d, rows, a, _b) in dim_and_rows()) {
        let octant = Octant::of_coefficients(&a).unwrap();
        let t = Translation::fit(&octant, rows.iter().map(|r| r.as_slice()));
        for r in &rows {
            let tr = t.apply(r);
            prop_assert!(octant.contains(&tr), "translated {tr:?} escapes octant");
        }
    }

    #[test]
    fn claim1_offset_keeps_intercepts_in_octant((_d, rows, a, b) in dim_and_rows()) {
        let octant = Octant::of_coefficients(&a).unwrap();
        let t = Translation::fit(&octant, rows.iter().map(|r| r.as_slice()));
        let b_prime = t.translate_offset(&a, b);
        prop_assert!(b_prime >= b - 1e-9 * b.abs().max(1.0));
        for (i, &ai) in a.iter().enumerate() {
            let intercept = b_prime / ai;
            prop_assert!(intercept * octant.sign_f64(i) >= -1e-9);
        }
    }

    #[test]
    fn normalization_preserves_margin((_d, rows, a, b) in dim_and_rows()) {
        let octant = Octant::of_coefficients(&a).unwrap();
        let n = Normalizer::fit(&octant, rows.iter().map(|r| r.as_slice()));
        let nq = n.normalize_query(&a, b).unwrap();
        prop_assert!(nq.a.iter().all(|&v| v > 0.0));
        for r in &rows {
            let raw = dot_slices(&a, r) - b;
            let p = n.normalize_point(r);
            prop_assert!(p.iter().all(|&v| v >= -1e-9), "normalized coord negative: {p:?}");
            let norm = dot_slices(&nq.a, &p) - nq.b;
            // Tolerance scaled by the magnitude of the terms involved.
            let scale = dot_slices(&a, r).abs().max(b.abs()).max(1.0);
            prop_assert!((raw - norm).abs() <= 1e-7 * scale, "margin {raw} vs {norm}");
        }
    }

    #[test]
    fn key_decomposition_always_holds((d, rows, a, _b) in dim_and_rows()) {
        let octant = Octant::of_coefficients(&a).unwrap();
        let n = Normalizer::fit(&octant, rows.iter().map(|r| r.as_slice()));
        let c: Vec<f64> = (0..d).map(|i| 0.5 + i as f64 * 0.25).collect();
        let c_raw = n.raw_normal(&c);
        let shift = n.key_shift(&c);
        for r in &rows {
            let lhs = dot_slices(&c, &n.normalize_point(r));
            let rhs = dot_slices(&c_raw, r) + shift;
            let scale = lhs.abs().max(rhs.abs()).max(1.0);
            prop_assert!((lhs - rhs).abs() <= 1e-7 * scale);
        }
    }

    #[test]
    fn reflect_is_isometric_involution((_d, rows, a, _b) in dim_and_rows()) {
        let octant = Octant::of_coefficients(&a).unwrap();
        for r in &rows {
            let refl = octant.reflect(r);
            // Involution
            let back = octant.reflect(&refl);
            for (x, y) in r.iter().zip(&back) {
                prop_assert_eq!(x, y);
            }
            // Isometry (norm preserved exactly: only sign flips)
            prop_assert_eq!(
                planar_geom::norm(r).to_bits(),
                planar_geom::norm(&refl).to_bits()
            );
        }
    }

    #[test]
    fn hyperplane_distance_is_nonnegative_and_zero_on_plane(
        (a, b, p) in (2..=6usize).prop_flat_map(|d| (
            prop::collection::vec(nonzero_coord(), d),
            -1e4..1e4_f64,
            prop::collection::vec(finite_coord(), d),
        )),
    ) {
        let h = Hyperplane::new(Vector::new(a.clone()).unwrap(), b).unwrap();
        let dist = h.distance_to(&p).unwrap();
        prop_assert!(dist >= 0.0);
        // Project p onto the plane and check the distance there is ~0.
        let n2 = dot_slices(&a, &a);
        let t = (dot_slices(&a, &p) - b) / n2;
        let proj: Vec<f64> = p.iter().zip(&a).map(|(pi, ai)| pi - t * ai).collect();
        let dp = h.distance_to(&proj).unwrap();
        let scale = p.iter().fold(1.0_f64, |m, v| m.max(v.abs()));
        prop_assert!(approx_eq_eps(dp, 0.0, 1e-6 * scale.max(1.0)), "dist {dp}");
    }

    #[test]
    fn angle_is_symmetric_and_bounded(
        a in prop::collection::vec(nonzero_coord(), 3),
        c in prop::collection::vec(nonzero_coord(), 3),
    ) {
        let ha = Hyperplane::new(Vector::new(a).unwrap(), 1.0).unwrap();
        let hc = Hyperplane::new(Vector::new(c).unwrap(), 2.0).unwrap();
        let t1 = ha.angle_to(&hc).unwrap();
        let t2 = hc.angle_to(&ha).unwrap();
        prop_assert!(approx_eq_eps(t1, t2, 1e-9));
        prop_assert!((0.0..=std::f64::consts::FRAC_PI_2 + 1e-12).contains(&t1));
        // Scaling a normal never changes the angle.
        let scaled = Hyperplane::new(ha.normal().scale(3.5), 1.0).unwrap();
        prop_assert!(approx_eq_eps(scaled.angle_to(&hc).unwrap(), t1, 1e-9));
    }
}
