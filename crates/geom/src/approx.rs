//! Floating-point comparison helpers used by the geometry layer and tests.

/// Default absolute/relative tolerance for floating-point comparisons.
pub const DEFAULT_EPS: f64 = 1e-9;

/// Compare two floats with a combined absolute + relative tolerance of
/// [`DEFAULT_EPS`].
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    approx_eq_eps(a, b, DEFAULT_EPS)
}

/// Compare two floats with a combined absolute + relative tolerance `eps`.
///
/// Returns `true` when `|a − b| ≤ eps · max(1, |a|, |b|)`. This behaves as an
/// absolute tolerance near zero and a relative one for large magnitudes,
/// which is the right shape for the scalar products in this workspace whose
/// magnitudes range from `1e-3` (power factors) to `1e8` (squared distances
/// between moving objects).
#[inline]
pub fn approx_eq_eps(a: f64, b: f64, eps: f64) -> bool {
    if a == b {
        return true; // fast path, also handles ±inf equal to itself
    }
    let scale = 1.0_f64.max(a.abs()).max(b.abs());
    (a - b).abs() <= eps * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_equality() {
        assert!(approx_eq(1.0, 1.0));
        assert!(approx_eq(0.0, 0.0));
        assert!(approx_eq(f64::INFINITY, f64::INFINITY));
    }

    #[test]
    fn absolute_near_zero() {
        assert!(approx_eq(1e-12, 0.0));
        assert!(!approx_eq(1e-6, 0.0));
    }

    #[test]
    fn relative_for_large_values() {
        assert!(approx_eq(1e12, 1e12 + 1.0));
        assert!(!approx_eq(1e12, 1.001e12));
    }

    #[test]
    fn nan_never_equal() {
        assert!(!approx_eq(f64::NAN, f64::NAN));
        assert!(!approx_eq(f64::NAN, 0.0));
    }

    #[test]
    fn custom_eps() {
        assert!(approx_eq_eps(1.0, 1.05, 0.1));
        assert!(!approx_eq_eps(1.0, 1.05, 0.01));
    }
}
