//! The translation operation of §4.5 (Eq. 9–12, Claim 1) and the full
//! normalization pipeline used by the index.
//!
//! Given a query octant `O` (fixed by the signs of the parameter domains)
//! and a set of data images `φ(x)`, the paper translates every `φ(x)` into
//! `O`; Claim 1 shows the query hyperplane still intersects the axes inside
//! `O` afterwards. We add one more step — reflecting `O` onto the first
//! octant — so that downstream code only ever sees non-negative data
//! coordinates and strictly positive query coefficients.
//!
//! A useful consequence exploited by `planar-core`: the index key of a point
//! in normalized space decomposes as
//!
//! ```text
//! ⟨c, φ''(x)⟩ = ⟨c_raw, φ(x)⟩ + shift,      c_rawᵢ = cᵢ·sign(O,i),
//!                                            shift  = Σᵢ cᵢ·δᵢ,
//! ```
//!
//! so raw-space keys order points identically and a *change of the
//! translation deltas only shifts every key by the same constant*. The core
//! index therefore stores raw keys and applies the shift to query
//! thresholds, making delta growth (new data further outside the octant) an
//! O(1) index update.

use crate::{GeomError, Octant, Result, Sign};

/// The translation `φ'ᵢ(x) = φᵢ(x) + sign(O, i)·δᵢ` of Eq. 11.
#[derive(Debug, Clone, PartialEq)]
pub struct Translation {
    octant: Octant,
    deltas: Vec<f64>,
}

impl Translation {
    /// Compute the translation parameters `δᵢ` (Eq. 9–10) for the given
    /// octant from an iterator of data rows in raw `φ` space:
    /// `δᵢ = max { |φᵢ(x)| : sign(φᵢ(x)) ≠ sign(O, i) }`, or 0 when no point
    /// lies on the wrong side of axis `i`.
    pub fn fit<'a>(octant: &Octant, rows: impl IntoIterator<Item = &'a [f64]>) -> Self {
        let d = octant.dim();
        let mut deltas = vec![0.0; d];
        for row in rows {
            debug_assert_eq!(row.len(), d, "row dimension mismatch");
            for (i, &v) in row.iter().enumerate() {
                let wrong_side = match octant.sign(i) {
                    Sign::Pos => v < 0.0,
                    Sign::Neg => v > 0.0,
                };
                if wrong_side && v.abs() > deltas[i] {
                    deltas[i] = v.abs();
                }
            }
        }
        Self {
            octant: octant.clone(),
            deltas,
        }
    }

    /// A translation with explicit deltas (used when deltas are maintained
    /// incrementally across updates).
    pub fn with_deltas(octant: Octant, deltas: Vec<f64>) -> Self {
        debug_assert_eq!(octant.dim(), deltas.len());
        Self { octant, deltas }
    }

    /// The identity translation (all `δᵢ = 0`).
    pub fn identity(octant: Octant) -> Self {
        let d = octant.dim();
        Self {
            octant,
            deltas: vec![0.0; d],
        }
    }

    /// The octant this translation targets.
    pub fn octant(&self) -> &Octant {
        &self.octant
    }

    /// The translation parameters `δᵢ`.
    pub fn deltas(&self) -> &[f64] {
        &self.deltas
    }

    /// Grow deltas to also cover `row`; returns `true` if any delta changed.
    ///
    /// Called on dynamic inserts/updates; per the module docs a delta change
    /// is an O(1) key-shift for the index, not a rebuild.
    pub fn absorb(&mut self, row: &[f64]) -> bool {
        debug_assert_eq!(row.len(), self.deltas.len());
        let mut changed = false;
        for (i, &v) in row.iter().enumerate() {
            let wrong_side = match self.octant.sign(i) {
                Sign::Pos => v < 0.0,
                Sign::Neg => v > 0.0,
            };
            if wrong_side && v.abs() > self.deltas[i] {
                self.deltas[i] = v.abs();
                changed = true;
            }
        }
        changed
    }

    /// Apply the translation: `φ'ᵢ = φᵢ + sign(O, i)·δᵢ`.
    pub fn apply(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .enumerate()
            .map(|(i, &v)| v + self.octant.sign_f64(i) * self.deltas[i])
            .collect()
    }

    /// The translated query offset of Eq. 12:
    /// `b' = b + Σᵢ sign(O, i)·aᵢ·δᵢ`.
    pub fn translate_offset(&self, a: &[f64], b: f64) -> f64 {
        debug_assert_eq!(a.len(), self.deltas.len());
        b + a
            .iter()
            .enumerate()
            .map(|(i, &ai)| self.octant.sign_f64(i) * ai * self.deltas[i])
            .sum::<f64>()
    }
}

/// A query mapped into normalized (first-octant) space: all coefficients
/// strictly positive and data coordinates non-negative.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizedQuery {
    /// Positive coefficient vector `a''ᵢ = sign(O, i)·aᵢ`.
    pub a: Vec<f64>,
    /// Normalized offset `b'' = b + Σᵢ a''ᵢ·δᵢ`.
    pub b: f64,
}

/// The full normalization pipeline: translation into octant `O` followed by
/// reflection of `O` onto the first octant.
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    translation: Translation,
}

impl Normalizer {
    /// Fit a normalizer for queries living in `octant` over the given data
    /// rows (raw `φ` space).
    pub fn fit<'a>(octant: &Octant, rows: impl IntoIterator<Item = &'a [f64]>) -> Self {
        Self {
            translation: Translation::fit(octant, rows),
        }
    }

    /// A normalizer that performs no translation (first octant, clean data).
    pub fn identity(dim: usize) -> Self {
        Self {
            translation: Translation::identity(Octant::first(dim)),
        }
    }

    /// Build from an existing translation.
    pub fn from_translation(translation: Translation) -> Self {
        Self { translation }
    }

    /// The underlying translation.
    pub fn translation(&self) -> &Translation {
        &self.translation
    }

    /// The target octant.
    pub fn octant(&self) -> &Octant {
        self.translation.octant()
    }

    /// Ambient dimensionality.
    pub fn dim(&self) -> usize {
        self.octant().dim()
    }

    /// Grow the translation to cover a new raw data row. Returns `true` when
    /// the deltas changed (the index must then refresh its key shifts).
    pub fn absorb(&mut self, row: &[f64]) -> bool {
        self.translation.absorb(row)
    }

    /// Map a raw data row to normalized space: translate into `O`, then
    /// reflect onto the first octant. All outputs are ≥ 0 for rows covered
    /// by the fitted deltas.
    pub fn normalize_point(&self, row: &[f64]) -> Vec<f64> {
        let translated = self.translation.apply(row);
        self.octant().reflect(&translated)
    }

    /// Map a raw query `⟨a, φ(x)⟩ {≤,≥} b` to normalized space.
    ///
    /// # Errors
    ///
    /// [`GeomError::ZeroCoordinate`] if some `aᵢ = 0`, or
    /// [`GeomError::DimensionMismatch`] if `a` has the wrong dimension.
    /// Returns [`GeomError::NotFinite`] if `sign(aᵢ)` disagrees with the
    /// octant the normalizer was fitted for — such a query belongs to a
    /// different octant and needs a different (or no) index.
    pub fn normalize_query(&self, a: &[f64], b: f64) -> Result<NormalizedQuery> {
        if a.len() != self.dim() {
            return Err(GeomError::DimensionMismatch {
                left: a.len(),
                right: self.dim(),
            });
        }
        let mut a_pos = Vec::with_capacity(a.len());
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0.0 {
                return Err(GeomError::ZeroCoordinate { axis: i });
            }
            let s = self.octant().sign_f64(i);
            let v = s * ai;
            if v <= 0.0 || !v.is_finite() {
                // Sign disagrees with the fitted octant (or NaN).
                return Err(GeomError::NotFinite);
            }
            a_pos.push(v);
        }
        // b'' = b + Σ a''ᵢ δᵢ — equal to Eq. 12's b' because
        // sign(O,i)·aᵢ = a''ᵢ; reflection leaves the offset unchanged.
        let b_norm = b + a_pos
            .iter()
            .zip(self.translation.deltas())
            .map(|(ap, d)| ap * d)
            .sum::<f64>();
        Ok(NormalizedQuery {
            a: a_pos,
            b: b_norm,
        })
    }

    /// The raw-space key normal `c_rawᵢ = cᵢ·sign(O, i)` for a normalized
    /// index normal `c` (all positive), such that
    /// `⟨c, normalize_point(x)⟩ = ⟨c_raw, x⟩ + key_shift(c)`.
    pub fn raw_normal(&self, c: &[f64]) -> Vec<f64> {
        debug_assert_eq!(c.len(), self.dim());
        c.iter()
            .enumerate()
            .map(|(i, &ci)| ci * self.octant().sign_f64(i))
            .collect()
    }

    /// The constant key shift `Σᵢ cᵢ·δᵢ` (see module docs).
    pub fn key_shift(&self, c: &[f64]) -> f64 {
        debug_assert_eq!(c.len(), self.dim());
        c.iter()
            .zip(self.translation.deltas())
            .map(|(ci, d)| ci * d)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{approx_eq, dot_slices};

    #[test]
    fn fit_deltas_eq9_eq10() {
        // Octant (+,−): points with negative φ1 or positive φ2 are on the
        // wrong side.
        let o = Octant::from_signs(vec![Sign::Pos, Sign::Neg]);
        let rows: Vec<Vec<f64>> = vec![
            vec![3.0, -1.0],  // fine
            vec![-2.0, -4.0], // φ1 wrong
            vec![-5.0, 2.5],  // both wrong
            vec![1.0, 7.0],   // φ2 wrong
        ];
        let t = Translation::fit(&o, rows.iter().map(|r| r.as_slice()));
        assert_eq!(t.deltas(), &[5.0, 7.0]);
        // Every translated point lies in O.
        for r in &rows {
            let tr = t.apply(r);
            assert!(o.contains(&tr), "{tr:?} not in octant");
        }
    }

    #[test]
    fn identity_translation_is_noop() {
        let t = Translation::identity(Octant::first(3));
        assert_eq!(t.apply(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
        assert_eq!(t.translate_offset(&[1.0, 1.0, 1.0], 5.0), 5.0);
    }

    #[test]
    fn absorb_grows_monotonically() {
        let o = Octant::first(2);
        let mut t = Translation::fit(&o, [[1.0, -2.0].as_slice()]);
        assert_eq!(t.deltas(), &[0.0, 2.0]);
        assert!(!t.absorb(&[5.0, -1.0])); // covered already
        assert!(t.absorb(&[-3.0, -4.0])); // grows both
        assert_eq!(t.deltas(), &[3.0, 4.0]);
    }

    #[test]
    fn claim1_query_stays_in_octant() {
        // Query with mixed signs; b ≥ 0. After translation the offset b'
        // must keep every intercept b'/aᵢ on the octant side sign(O, i).
        let a = [2.0, -3.0, 0.5];
        let b = 4.0;
        let o = Octant::of_coefficients(&a).unwrap();
        let rows: Vec<Vec<f64>> = vec![
            vec![-1.0, 2.0, 3.0],
            vec![4.0, -5.0, -6.0],
            vec![-7.0, 8.0, 0.0],
        ];
        let t = Translation::fit(&o, rows.iter().map(|r| r.as_slice()));
        let b_prime = t.translate_offset(&a, b);
        assert!(b_prime >= b); // Claim 1: b' adds only non-negative terms
        for (i, &ai) in a.iter().enumerate() {
            let intercept = b_prime / ai;
            assert!(
                intercept * o.sign_f64(i) >= 0.0,
                "intercept {intercept} leaves octant on axis {i}"
            );
        }
    }

    #[test]
    fn normalizer_points_nonnegative_and_queries_positive() {
        let a = [-1.5, 2.0];
        let o = Octant::of_coefficients(&a).unwrap();
        let rows: Vec<Vec<f64>> = vec![vec![3.0, -2.0], vec![-1.0, 4.0], vec![0.5, 0.0]];
        let n = Normalizer::fit(&o, rows.iter().map(|r| r.as_slice()));
        for r in &rows {
            let p = n.normalize_point(r);
            assert!(p.iter().all(|&v| v >= 0.0), "{p:?}");
        }
        let q = n.normalize_query(&a, 1.0).unwrap();
        assert!(q.a.iter().all(|&v| v > 0.0));
        assert_eq!(q.a, vec![1.5, 2.0]);
    }

    #[test]
    fn normalization_preserves_query_satisfaction() {
        // The fundamental invariant: ⟨a, φ(x)⟩ − b = ⟨a'', φ''(x)⟩ − b''.
        let a = [2.0, -1.0, 3.0];
        let b = 2.5;
        let o = Octant::of_coefficients(&a).unwrap();
        let rows: Vec<Vec<f64>> = vec![
            vec![1.0, 1.0, 1.0],
            vec![-2.0, 3.0, -4.0],
            vec![0.0, -0.5, 2.0],
        ];
        let n = Normalizer::fit(&o, rows.iter().map(|r| r.as_slice()));
        let nq = n.normalize_query(&a, b).unwrap();
        for r in &rows {
            let raw = dot_slices(&a, r) - b;
            let p = n.normalize_point(r);
            let norm = dot_slices(&nq.a, &p) - nq.b;
            assert!(approx_eq(raw, norm), "raw {raw} vs normalized {norm}");
        }
    }

    #[test]
    fn key_decomposition_matches_normalized_key() {
        // ⟨c, φ''(x)⟩ = ⟨c_raw, φ(x)⟩ + shift.
        let a = [1.0, -2.0];
        let o = Octant::of_coefficients(&a).unwrap();
        let rows: Vec<Vec<f64>> = vec![vec![-1.0, 3.0], vec![2.0, -1.0]];
        let n = Normalizer::fit(&o, rows.iter().map(|r| r.as_slice()));
        let c = [0.7, 1.3];
        let c_raw = n.raw_normal(&c);
        let shift = n.key_shift(&c);
        for r in &rows {
            let lhs = dot_slices(&c, &n.normalize_point(r));
            let rhs = dot_slices(&c_raw, r) + shift;
            assert!(approx_eq(lhs, rhs), "{lhs} vs {rhs}");
        }
    }

    #[test]
    fn normalize_query_rejects_bad_queries() {
        let n = Normalizer::identity(2);
        assert!(matches!(
            n.normalize_query(&[1.0, 0.0], 1.0),
            Err(GeomError::ZeroCoordinate { axis: 1 })
        ));
        assert!(n.normalize_query(&[1.0, -1.0], 1.0).is_err()); // wrong octant
        assert!(n.normalize_query(&[1.0], 1.0).is_err()); // wrong dim
        assert!(n.normalize_query(&[1.0, 2.0], 1.0).is_ok());
    }
}
