//! Hyperplanes `⟨normal, y⟩ = offset` in `R^{d'}`.
//!
//! Both the query hyperplane `H(q)` (Eq. 2 of the paper) and the per-point
//! index hyperplanes `H(x)` (Eq. 3) are instances of this type.

use crate::{dot, GeomError, Result, Vector};

/// A hyperplane `⟨normal, y⟩ = offset`.
#[derive(Debug, Clone, PartialEq)]
pub struct Hyperplane {
    normal: Vector,
    offset: f64,
}

impl Hyperplane {
    /// Create a hyperplane from its normal vector and offset.
    ///
    /// # Errors
    ///
    /// [`GeomError::NotFinite`] if `offset` is not finite, or
    /// [`GeomError::ZeroCoordinate`] if the normal has zero norm.
    pub fn new(normal: Vector, offset: f64) -> Result<Self> {
        if !offset.is_finite() {
            return Err(GeomError::NotFinite);
        }
        if normal.norm() == 0.0 {
            return Err(GeomError::ZeroCoordinate { axis: 0 });
        }
        Ok(Self { normal, offset })
    }

    /// The normal vector `a` (for a query, the coefficient vector).
    #[inline]
    pub fn normal(&self) -> &Vector {
        &self.normal
    }

    /// The offset `b`.
    #[inline]
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Dimensionality of the ambient space.
    #[inline]
    pub fn dim(&self) -> usize {
        self.normal.dim()
    }

    /// The intercept `I(·, i) = offset / normalᵢ` of this hyperplane with
    /// axis `Yᵢ` — `I(q, i) = b / aᵢ` in the paper's notation.
    ///
    /// Returns `None` when the hyperplane is parallel to the axis
    /// (`normalᵢ = 0`).
    #[inline]
    pub fn axis_intercept(&self, i: usize) -> Option<f64> {
        let ni = self.normal[i];
        if ni == 0.0 {
            None
        } else {
            Some(self.offset / ni)
        }
    }

    /// All `d'` axis intercepts; `None` entries mark axes the hyperplane is
    /// parallel to.
    pub fn axis_intercepts(&self) -> Vec<Option<f64>> {
        (0..self.dim()).map(|i| self.axis_intercept(i)).collect()
    }

    /// Signed evaluation `⟨normal, p⟩ − offset`; negative on the "≤" side.
    ///
    /// # Errors
    ///
    /// [`GeomError::DimensionMismatch`] if `p` has the wrong dimension.
    #[inline]
    pub fn eval(&self, p: &[f64]) -> Result<f64> {
        Ok(dot(self.normal.as_slice(), p)? - self.offset)
    }

    /// Euclidean distance from point `p` to the hyperplane,
    /// `|⟨a, p⟩ − b| / |a|` (used by the top-k nearest-neighbor query,
    /// Problem 2).
    ///
    /// # Errors
    ///
    /// [`GeomError::DimensionMismatch`] if `p` has the wrong dimension.
    #[inline]
    pub fn distance_to(&self, p: &[f64]) -> Result<f64> {
        Ok(self.eval(p)?.abs() / self.normal.norm())
    }

    /// The angle in radians between this hyperplane and `other`, defined as
    /// the principal angle between their normals:
    /// `acos(|⟨a, c⟩| / (|a||c|))` ∈ [0, π/2].
    ///
    /// This is the quantity minimized by the angle-minimization index
    /// selection heuristic (§5.1.2). Parallel hyperplanes have angle 0.
    ///
    /// # Errors
    ///
    /// [`GeomError::DimensionMismatch`] if dimensions differ.
    pub fn angle_to(&self, other: &Hyperplane) -> Result<f64> {
        let c = self.normal.cosine(&other.normal)?;
        // Clamp against tiny float excursions outside [-1, 1].
        Ok(c.abs().clamp(0.0, 1.0).acos())
    }

    /// True when the two hyperplanes are parallel within tolerance `eps` on
    /// the absolute cosine of their normals.
    pub fn is_parallel_to(&self, other: &Hyperplane, eps: f64) -> bool {
        self.normal.is_parallel_to(&other.normal, eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn hp(n: &[f64], b: f64) -> Hyperplane {
        Hyperplane::new(Vector::new(n.to_vec()).unwrap(), b).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Hyperplane::new(Vector::zeros(2), 1.0).is_err());
        assert!(Hyperplane::new(Vector::ones(2), f64::NAN).is_err());
        assert!(Hyperplane::new(Vector::ones(2), 0.0).is_ok());
    }

    #[test]
    fn intercepts_match_paper_example4() {
        // Example 4 of the paper: H(q): Y1 + 2 Y2 + 5 Y3 = 10 intersects the
        // axes at 10, 5 and 2.
        let q = hp(&[1.0, 2.0, 5.0], 10.0);
        assert_eq!(q.axis_intercept(0), Some(10.0));
        assert_eq!(q.axis_intercept(1), Some(5.0));
        assert_eq!(q.axis_intercept(2), Some(2.0));
    }

    #[test]
    fn intercept_none_for_parallel_axis() {
        let q = hp(&[0.0, 1.0], 3.0);
        assert_eq!(q.axis_intercept(0), None);
        assert_eq!(q.axis_intercept(1), Some(3.0));
        assert_eq!(q.axis_intercepts(), vec![None, Some(3.0)]);
    }

    #[test]
    fn eval_and_distance() {
        let q = hp(&[3.0, 4.0], 10.0);
        // point on the plane
        assert!(approx_eq(q.eval(&[2.0, 1.0]).unwrap(), 0.0));
        assert!(approx_eq(q.distance_to(&[2.0, 1.0]).unwrap(), 0.0));
        // |3·0 + 4·0 − 10| / 5 = 2
        assert!(approx_eq(q.distance_to(&[0.0, 0.0]).unwrap(), 2.0));
        assert!(q.eval(&[1.0]).is_err());
    }

    #[test]
    fn angle_between_hyperplanes() {
        let a = hp(&[1.0, 0.0], 1.0);
        let b = hp(&[0.0, 1.0], 1.0);
        let c = hp(&[2.0, 0.0], 5.0);
        let d = hp(&[-1.0, 0.0], 5.0);
        assert!(approx_eq(
            a.angle_to(&b).unwrap(),
            std::f64::consts::FRAC_PI_2
        ));
        assert!(approx_eq(a.angle_to(&c).unwrap(), 0.0));
        // Anti-parallel normals describe parallel hyperplanes: angle 0.
        assert!(approx_eq(a.angle_to(&d).unwrap(), 0.0));
        assert!(a.is_parallel_to(&c, 1e-12));
        assert!(a.is_parallel_to(&d, 1e-12));
        assert!(!a.is_parallel_to(&b, 1e-12));
    }

    #[test]
    fn angle_45_degrees() {
        let a = hp(&[1.0, 0.0], 1.0);
        let b = hp(&[1.0, 1.0], 1.0);
        assert!(approx_eq(
            a.angle_to(&b).unwrap(),
            std::f64::consts::FRAC_PI_4
        ));
    }
}
