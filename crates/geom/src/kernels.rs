//! Runtime-dispatched verification kernels over interleaved-block columnar
//! lanes.
//!
//! The Planar index's hot path is intermediate-interval verification:
//! computing `⟨a, φ(x)⟩` for a run of candidate rows and comparing against
//! the threshold `b`. These kernels operate on the *interleaved-block*
//! columnar layout (`planar_core::table::ColumnMajorRows`): rows are grouped
//! into blocks of [`BLOCK_ROWS`] lanes, and within a block coordinate `j` of
//! all lanes is stored contiguously at `block[j * stride + lane]`. That
//! turns one verification pass into `d'` unit-stride streams that SIMD
//! units consume at full width, instead of `d'`-strided row walks.
//!
//! Three kernels are provided:
//!
//! * [`dot_block_cols`] — scalar products of `a` against every lane of a
//!   block (the top-k distance pass needs the raw products);
//! * [`dot_cmp_block`] — the fused kernel: products *and* the
//!   `⟨a,φ(x)⟩ − b ≤ 0` (or `≥ 0`) predicate evaluated into a bitmask
//!   without materializing the products (inequality verification);
//! * [`axpy`] — `y ← α·x + y`, used for bulk feature adjustments.
//!
//! ## Dispatch
//!
//! The implementation is selected **once**, at first use, via
//! [`std::arch`] feature detection: AVX2 on `x86_64` when the CPU has it, a
//! portable chunked-scalar fallback otherwise (or when the
//! `PLANAR_FORCE_PORTABLE` environment variable is set — useful for A/B
//! testing and for exercising the fallback on AVX2 hosts). [`kernel_name`]
//! reports the active choice so benchmarks and stats snapshots can record
//! which code path produced their numbers.
//!
//! ## Bit-identity contract
//!
//! Every kernel reproduces, per lane, the exact accumulation order of
//! [`crate::dot_slices`]: four striped accumulators over `j % 4`, combined
//! as `(acc0 + acc1) + (acc2 + acc3)`, then a sequential tail. The AVX2
//! path uses separate multiply and add instructions — deliberately **not**
//! `vfmadd` — because fused multiply-add skips the intermediate rounding
//! step and would produce different (if slightly more accurate) sums than
//! the scalar path. IEEE-754 `mul`/`add` are exactly rounded, so with the
//! same operation order every path — scalar row-major, portable columnar,
//! AVX2 columnar — yields bit-identical doubles. The workspace's
//! index ≡ scan and parallel-determinism guarantees rest on this.

use std::sync::OnceLock;

/// Number of rows (lanes) per interleaved block. 64 `f64`s = 512 bytes per
/// coordinate run: eight cache lines, and a block's predicate mask fits one
/// `u64`.
pub const BLOCK_ROWS: usize = 64;

/// Which kernel implementation was selected at startup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// `std::arch` AVX2 intrinsics (no FMA contraction; see module docs).
    Avx2,
    /// Portable chunked-scalar fallback (auto-vectorizable, same FP order).
    Portable,
}

impl KernelKind {
    /// Stable lowercase name for logs / bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Avx2 => "avx2",
            KernelKind::Portable => "portable",
        }
    }
}

fn detect() -> KernelKind {
    if std::env::var_os("PLANAR_FORCE_PORTABLE").is_some() {
        return KernelKind::Portable;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return KernelKind::Avx2;
        }
    }
    KernelKind::Portable
}

/// The kernel implementation in use, selected once at first call.
pub fn kernel() -> KernelKind {
    static KERNEL: OnceLock<KernelKind> = OnceLock::new();
    *KERNEL.get_or_init(detect)
}

/// Name of the active kernel implementation (`"avx2"` or `"portable"`).
pub fn kernel_name() -> &'static str {
    kernel().name()
}

/// Whether the host additionally reports FMA (recorded for provenance; the
/// kernels do not use it — see the module docs on reproducibility).
pub fn host_has_fma() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[inline]
fn check_block(a: &[f64], block: &[f64], stride: usize, lanes: usize) {
    assert!(
        lanes <= stride,
        "lanes {lanes} exceed block stride {stride}"
    );
    // `block` may be a lane-shifted view into a larger block (a
    // `ColSegment`), so the requirement is reachability of the last element
    // read — `block[(dim − 1) · stride + lanes − 1]` — not an exact size.
    let needed = if a.is_empty() {
        0
    } else {
        (a.len() - 1) * stride + lanes
    };
    assert!(
        block.len() >= needed,
        "columnar block shape mismatch: need {needed} elements, have {}",
        block.len()
    );
}

/// Scalar products of `a` against `dots.len()` lanes of an interleaved
/// block: `dots[l] = ⟨a, lane l⟩` where lane `l`'s coordinate `j` lives at
/// `block[j * stride + l]`.
///
/// Bit-identical, per lane, to [`crate::dot_slices`] on the equivalent row.
///
/// # Panics
///
/// Panics if `dots.len() > stride`, `stride > BLOCK_ROWS`, or
/// `block.len() != a.len() * stride`.
#[inline]
pub fn dot_block_cols(a: &[f64], block: &[f64], stride: usize, dots: &mut [f64]) {
    check_block(a, block, stride, dots.len());
    assert!(stride <= BLOCK_ROWS, "stride {stride} exceeds BLOCK_ROWS");
    match kernel() {
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2 => simd::dot_block_cols_avx2(a, block, stride, dots),
        _ => portable::dot_block_cols(a, block, stride, dots),
    }
}

/// Fused dot + threshold compare over `lanes` lanes of an interleaved
/// block: bit `l` of the result is set iff lane `l` satisfies the
/// inequality `⟨a, lane l⟩ − b ≤ 0` (`leq = true`) or `≥ 0`
/// (`leq = false`), evaluated exactly as
/// `planar_core::InequalityQuery::satisfies_dot` evaluates it (subtract,
/// then compare). Products are never materialized to memory.
///
/// # Panics
///
/// Panics if `lanes > 64`, `lanes > stride`, or
/// `block.len() != a.len() * stride`.
#[inline]
pub fn dot_cmp_block(
    a: &[f64],
    block: &[f64],
    stride: usize,
    lanes: usize,
    b: f64,
    leq: bool,
) -> u64 {
    check_block(a, block, stride, lanes);
    assert!(lanes <= 64, "predicate mask holds at most 64 lanes");
    match kernel() {
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2 => simd::dot_cmp_block_avx2(a, block, stride, lanes, b, leq),
        _ => portable::dot_cmp_block(a, block, stride, lanes, b, leq),
    }
}

/// `y[i] += alpha * x[i]` for every `i`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy dimension mismatch");
    match kernel() {
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2 => simd::axpy_avx2(alpha, x, y),
        _ => portable::axpy(alpha, x, y),
    }
}

/// Portable chunked-scalar implementations. The inner loops run over whole
/// lane columns at unit stride with independent accumulators, a shape LLVM
/// auto-vectorizes on any target — without FP contraction, so the result is
/// bit-identical to the explicit AVX2 path.
pub(crate) mod portable {
    use super::BLOCK_ROWS;

    pub(crate) fn dot_block_cols(a: &[f64], block: &[f64], stride: usize, dots: &mut [f64]) {
        let dim = a.len();
        let lanes = dots.len();
        let chunks = dim / 4;
        // Four striped accumulator columns mirroring dot_slices' acc0..acc3.
        let mut acc = [[0.0f64; BLOCK_ROWS]; 4];
        for i in 0..chunks {
            let j = i * 4;
            for (s, acc_s) in acc.iter_mut().enumerate() {
                let aj = a[j + s];
                let col = &block[(j + s) * stride..(j + s) * stride + lanes];
                for (l, &v) in col.iter().enumerate() {
                    acc_s[l] += aj * v;
                }
            }
        }
        for (l, dot) in dots.iter_mut().enumerate() {
            *dot = (acc[0][l] + acc[1][l]) + (acc[2][l] + acc[3][l]);
        }
        for j in chunks * 4..dim {
            let aj = a[j];
            let col = &block[j * stride..j * stride + lanes];
            for (l, &v) in col.iter().enumerate() {
                dots[l] += aj * v;
            }
        }
    }

    pub(crate) fn dot_cmp_block(
        a: &[f64],
        block: &[f64],
        stride: usize,
        lanes: usize,
        b: f64,
        leq: bool,
    ) -> u64 {
        let mut dots = [0.0f64; BLOCK_ROWS];
        dot_block_cols(a, block, stride, &mut dots[..lanes]);
        let mut mask = 0u64;
        for (l, &dot) in dots[..lanes].iter().enumerate() {
            let margin = dot - b;
            let sat = if leq { margin <= 0.0 } else { margin >= 0.0 };
            mask |= (sat as u64) << l;
        }
        mask
    }

    pub(crate) fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }
}

/// Explicit AVX2 implementations. Kept in one `#[allow(unsafe_code)]`
/// module so the crate-wide `#![deny(unsafe_code)]` still covers everything
/// else; the only unsafety is `std::arch` intrinsics plus raw-pointer
/// loads/stores whose bounds are asserted by the safe dispatchers above.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
pub(crate) mod simd {
    use std::arch::x86_64::*;

    /// Safe dispatcher-facing wrapper; the caller (this module's parent)
    /// only routes here after `is_x86_feature_detected!("avx2")`.
    pub(crate) fn dot_block_cols_avx2(a: &[f64], block: &[f64], stride: usize, dots: &mut [f64]) {
        // SAFETY: AVX2 availability is established by runtime detection in
        // `super::kernel()` before this path is ever selected; slice bounds
        // are asserted by `super::check_block`.
        unsafe { dot_block_cols_impl(a, block, stride, dots) }
    }

    pub(crate) fn dot_cmp_block_avx2(
        a: &[f64],
        block: &[f64],
        stride: usize,
        lanes: usize,
        b: f64,
        leq: bool,
    ) -> u64 {
        // SAFETY: as above.
        unsafe { dot_cmp_block_impl(a, block, stride, lanes, b, leq) }
    }

    pub(crate) fn axpy_avx2(alpha: f64, x: &[f64], y: &mut [f64]) {
        // SAFETY: as above; lengths asserted equal by `super::axpy`.
        unsafe { axpy_impl(alpha, x, y) }
    }

    /// Vertical accumulators striped over `j % 4`, combined
    /// `(acc0 + acc1) + (acc2 + acc3)`, sequential tail — `vmulpd` +
    /// `vaddpd`, never `vfmadd`, so each lane reproduces `dot_slices`
    /// bit-for-bit (see module docs).
    ///
    /// The main loop covers 8 lanes per iteration (two vectors per stripe:
    /// 8 independent add chains, enough to cover the FP-add latency, with
    /// each `a[j]` broadcast amortized over all 8 lanes); a 4-lane loop and
    /// a scalar tail — in the same accumulation order — cover the rest.
    #[target_feature(enable = "avx2")]
    unsafe fn dot_block_cols_impl(a: &[f64], block: &[f64], stride: usize, dots: &mut [f64]) {
        let dim = a.len();
        let lanes = dots.len();
        let chunks = dim / 4;
        let bp = block.as_ptr();
        let mut lane = 0;
        while lane + 8 <= lanes {
            let mut a0 = _mm256_setzero_pd();
            let mut a1 = _mm256_setzero_pd();
            let mut a2 = _mm256_setzero_pd();
            let mut a3 = _mm256_setzero_pd();
            let mut b0 = _mm256_setzero_pd();
            let mut b1 = _mm256_setzero_pd();
            let mut b2 = _mm256_setzero_pd();
            let mut b3 = _mm256_setzero_pd();
            for i in 0..chunks {
                let j = i * 4;
                let c0 = _mm256_set1_pd(*a.get_unchecked(j));
                let c1 = _mm256_set1_pd(*a.get_unchecked(j + 1));
                let c2 = _mm256_set1_pd(*a.get_unchecked(j + 2));
                let c3 = _mm256_set1_pd(*a.get_unchecked(j + 3));
                let p0 = bp.add(j * stride + lane);
                let p1 = bp.add((j + 1) * stride + lane);
                let p2 = bp.add((j + 2) * stride + lane);
                let p3 = bp.add((j + 3) * stride + lane);
                a0 = _mm256_add_pd(a0, _mm256_mul_pd(c0, _mm256_loadu_pd(p0)));
                b0 = _mm256_add_pd(b0, _mm256_mul_pd(c0, _mm256_loadu_pd(p0.add(4))));
                a1 = _mm256_add_pd(a1, _mm256_mul_pd(c1, _mm256_loadu_pd(p1)));
                b1 = _mm256_add_pd(b1, _mm256_mul_pd(c1, _mm256_loadu_pd(p1.add(4))));
                a2 = _mm256_add_pd(a2, _mm256_mul_pd(c2, _mm256_loadu_pd(p2)));
                b2 = _mm256_add_pd(b2, _mm256_mul_pd(c2, _mm256_loadu_pd(p2.add(4))));
                a3 = _mm256_add_pd(a3, _mm256_mul_pd(c3, _mm256_loadu_pd(p3)));
                b3 = _mm256_add_pd(b3, _mm256_mul_pd(c3, _mm256_loadu_pd(p3.add(4))));
            }
            let mut lo = _mm256_add_pd(_mm256_add_pd(a0, a1), _mm256_add_pd(a2, a3));
            let mut hi = _mm256_add_pd(_mm256_add_pd(b0, b1), _mm256_add_pd(b2, b3));
            for j in chunks * 4..dim {
                let c = _mm256_set1_pd(*a.get_unchecked(j));
                let p = bp.add(j * stride + lane);
                lo = _mm256_add_pd(lo, _mm256_mul_pd(c, _mm256_loadu_pd(p)));
                hi = _mm256_add_pd(hi, _mm256_mul_pd(c, _mm256_loadu_pd(p.add(4))));
            }
            _mm256_storeu_pd(dots.as_mut_ptr().add(lane), lo);
            _mm256_storeu_pd(dots.as_mut_ptr().add(lane + 4), hi);
            lane += 8;
        }
        while lane + 4 <= lanes {
            let mut acc0 = _mm256_setzero_pd();
            let mut acc1 = _mm256_setzero_pd();
            let mut acc2 = _mm256_setzero_pd();
            let mut acc3 = _mm256_setzero_pd();
            for i in 0..chunks {
                let j = i * 4;
                let v0 = _mm256_loadu_pd(bp.add(j * stride + lane));
                let v1 = _mm256_loadu_pd(bp.add((j + 1) * stride + lane));
                let v2 = _mm256_loadu_pd(bp.add((j + 2) * stride + lane));
                let v3 = _mm256_loadu_pd(bp.add((j + 3) * stride + lane));
                acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(_mm256_set1_pd(*a.get_unchecked(j)), v0));
                acc1 = _mm256_add_pd(
                    acc1,
                    _mm256_mul_pd(_mm256_set1_pd(*a.get_unchecked(j + 1)), v1),
                );
                acc2 = _mm256_add_pd(
                    acc2,
                    _mm256_mul_pd(_mm256_set1_pd(*a.get_unchecked(j + 2)), v2),
                );
                acc3 = _mm256_add_pd(
                    acc3,
                    _mm256_mul_pd(_mm256_set1_pd(*a.get_unchecked(j + 3)), v3),
                );
            }
            let mut acc = _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3));
            for j in chunks * 4..dim {
                let v = _mm256_loadu_pd(bp.add(j * stride + lane));
                acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(*a.get_unchecked(j)), v));
            }
            _mm256_storeu_pd(dots.as_mut_ptr().add(lane), acc);
            lane += 4;
        }
        // Tail lanes (< 4): plain scalar, same accumulation order.
        for (off, dot) in dots[lane..].iter_mut().enumerate() {
            let l = lane + off;
            let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
            for i in 0..chunks {
                let j = i * 4;
                s0 += a[j] * block[j * stride + l];
                s1 += a[j + 1] * block[(j + 1) * stride + l];
                s2 += a[j + 2] * block[(j + 2) * stride + l];
                s3 += a[j + 3] * block[(j + 3) * stride + l];
            }
            let mut s = (s0 + s1) + (s2 + s3);
            for j in chunks * 4..dim {
                s += a[j] * block[j * stride + l];
            }
            *dot = s;
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn dot_cmp_block_impl(
        a: &[f64],
        block: &[f64],
        stride: usize,
        lanes: usize,
        b: f64,
        leq: bool,
    ) -> u64 {
        let dim = a.len();
        let chunks = dim / 4;
        let bp = block.as_ptr();
        let bv = _mm256_set1_pd(b);
        let zero = _mm256_setzero_pd();
        let mut mask = 0u64;
        let mut lane = 0;
        while lane + 8 <= lanes {
            let mut a0 = _mm256_setzero_pd();
            let mut a1 = _mm256_setzero_pd();
            let mut a2 = _mm256_setzero_pd();
            let mut a3 = _mm256_setzero_pd();
            let mut b0 = _mm256_setzero_pd();
            let mut b1 = _mm256_setzero_pd();
            let mut b2 = _mm256_setzero_pd();
            let mut b3 = _mm256_setzero_pd();
            for i in 0..chunks {
                let j = i * 4;
                let c0 = _mm256_set1_pd(*a.get_unchecked(j));
                let c1 = _mm256_set1_pd(*a.get_unchecked(j + 1));
                let c2 = _mm256_set1_pd(*a.get_unchecked(j + 2));
                let c3 = _mm256_set1_pd(*a.get_unchecked(j + 3));
                let p0 = bp.add(j * stride + lane);
                let p1 = bp.add((j + 1) * stride + lane);
                let p2 = bp.add((j + 2) * stride + lane);
                let p3 = bp.add((j + 3) * stride + lane);
                a0 = _mm256_add_pd(a0, _mm256_mul_pd(c0, _mm256_loadu_pd(p0)));
                b0 = _mm256_add_pd(b0, _mm256_mul_pd(c0, _mm256_loadu_pd(p0.add(4))));
                a1 = _mm256_add_pd(a1, _mm256_mul_pd(c1, _mm256_loadu_pd(p1)));
                b1 = _mm256_add_pd(b1, _mm256_mul_pd(c1, _mm256_loadu_pd(p1.add(4))));
                a2 = _mm256_add_pd(a2, _mm256_mul_pd(c2, _mm256_loadu_pd(p2)));
                b2 = _mm256_add_pd(b2, _mm256_mul_pd(c2, _mm256_loadu_pd(p2.add(4))));
                a3 = _mm256_add_pd(a3, _mm256_mul_pd(c3, _mm256_loadu_pd(p3)));
                b3 = _mm256_add_pd(b3, _mm256_mul_pd(c3, _mm256_loadu_pd(p3.add(4))));
            }
            let mut lo = _mm256_add_pd(_mm256_add_pd(a0, a1), _mm256_add_pd(a2, a3));
            let mut hi = _mm256_add_pd(_mm256_add_pd(b0, b1), _mm256_add_pd(b2, b3));
            for j in chunks * 4..dim {
                let c = _mm256_set1_pd(*a.get_unchecked(j));
                let p = bp.add(j * stride + lane);
                lo = _mm256_add_pd(lo, _mm256_mul_pd(c, _mm256_loadu_pd(p)));
                hi = _mm256_add_pd(hi, _mm256_mul_pd(c, _mm256_loadu_pd(p.add(4))));
            }
            let (mlo, mhi) = (_mm256_sub_pd(lo, bv), _mm256_sub_pd(hi, bv));
            let (clo, chi) = if leq {
                (
                    _mm256_cmp_pd::<_CMP_LE_OQ>(mlo, zero),
                    _mm256_cmp_pd::<_CMP_LE_OQ>(mhi, zero),
                )
            } else {
                (
                    _mm256_cmp_pd::<_CMP_GE_OQ>(mlo, zero),
                    _mm256_cmp_pd::<_CMP_GE_OQ>(mhi, zero),
                )
            };
            mask |= (_mm256_movemask_pd(clo) as u64) << lane;
            mask |= (_mm256_movemask_pd(chi) as u64) << (lane + 4);
            lane += 8;
        }
        while lane + 4 <= lanes {
            let mut acc0 = _mm256_setzero_pd();
            let mut acc1 = _mm256_setzero_pd();
            let mut acc2 = _mm256_setzero_pd();
            let mut acc3 = _mm256_setzero_pd();
            for i in 0..chunks {
                let j = i * 4;
                let v0 = _mm256_loadu_pd(bp.add(j * stride + lane));
                let v1 = _mm256_loadu_pd(bp.add((j + 1) * stride + lane));
                let v2 = _mm256_loadu_pd(bp.add((j + 2) * stride + lane));
                let v3 = _mm256_loadu_pd(bp.add((j + 3) * stride + lane));
                acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(_mm256_set1_pd(*a.get_unchecked(j)), v0));
                acc1 = _mm256_add_pd(
                    acc1,
                    _mm256_mul_pd(_mm256_set1_pd(*a.get_unchecked(j + 1)), v1),
                );
                acc2 = _mm256_add_pd(
                    acc2,
                    _mm256_mul_pd(_mm256_set1_pd(*a.get_unchecked(j + 2)), v2),
                );
                acc3 = _mm256_add_pd(
                    acc3,
                    _mm256_mul_pd(_mm256_set1_pd(*a.get_unchecked(j + 3)), v3),
                );
            }
            let mut acc = _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3));
            for j in chunks * 4..dim {
                let v = _mm256_loadu_pd(bp.add(j * stride + lane));
                acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(*a.get_unchecked(j)), v));
            }
            // margin = dot − b, then ordered-quiet compare against zero:
            // exactly `satisfies_dot` (NaN margins compare false).
            let margin = _mm256_sub_pd(acc, bv);
            let zero = _mm256_setzero_pd();
            let cmp = if leq {
                _mm256_cmp_pd::<_CMP_LE_OQ>(margin, zero)
            } else {
                _mm256_cmp_pd::<_CMP_GE_OQ>(margin, zero)
            };
            mask |= (_mm256_movemask_pd(cmp) as u64) << lane;
            lane += 4;
        }
        for l in lane..lanes {
            let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
            for i in 0..chunks {
                let j = i * 4;
                s0 += a[j] * block[j * stride + l];
                s1 += a[j + 1] * block[(j + 1) * stride + l];
                s2 += a[j + 2] * block[(j + 2) * stride + l];
                s3 += a[j + 3] * block[(j + 3) * stride + l];
            }
            let mut s = (s0 + s1) + (s2 + s3);
            for j in chunks * 4..dim {
                s += a[j] * block[j * stride + l];
            }
            let margin = s - b;
            let sat = if leq { margin <= 0.0 } else { margin >= 0.0 };
            mask |= (sat as u64) << l;
        }
        mask
    }

    #[target_feature(enable = "avx2")]
    unsafe fn axpy_impl(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len();
        let av = _mm256_set1_pd(alpha);
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        let mut i = 0;
        while i + 4 <= n {
            let xv = _mm256_loadu_pd(xp.add(i));
            let yv = _mm256_loadu_pd(yp.add(i));
            _mm256_storeu_pd(yp.add(i), _mm256_add_pd(yv, _mm256_mul_pd(av, xv)));
            i += 4;
        }
        for j in i..n {
            *y.get_unchecked_mut(j) += alpha * *x.get_unchecked(j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dot_slices;

    /// Transpose `rows` (row-major, `dim` wide) into one interleaved block
    /// of `stride` lanes, zero-padded past `rows.len()`.
    fn to_block(rows: &[Vec<f64>], dim: usize, stride: usize) -> Vec<f64> {
        let mut block = vec![0.0; dim * stride];
        for (l, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                block[j * stride + l] = v;
            }
        }
        block
    }

    fn sample_rows(n: usize, dim: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|r| {
                (0..dim)
                    .map(|j| ((r * dim + j) as f64).sin() * 100.0 + j as f64)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn portable_matches_dot_slices_bitwise() {
        for dim in [0usize, 1, 3, 4, 5, 8, 13, 16] {
            for lanes in [0usize, 1, 3, 4, 7, 32, BLOCK_ROWS] {
                let a: Vec<f64> = (0..dim).map(|j| 0.3 * j as f64 - 1.0).collect();
                let rows = sample_rows(lanes, dim);
                let block = to_block(&rows, dim, BLOCK_ROWS);
                let mut dots = vec![f64::NAN; lanes];
                portable::dot_block_cols(&a, &block, BLOCK_ROWS, &mut dots);
                for (row, dot) in rows.iter().zip(&dots) {
                    assert_eq!(dot.to_bits(), dot_slices(&a, row).to_bits());
                }
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_matches_portable_bitwise() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        for dim in [0usize, 1, 4, 5, 8, 11, 16] {
            for lanes in [1usize, 2, 3, 4, 5, 8, 31, 63, BLOCK_ROWS] {
                let a: Vec<f64> = (0..dim).map(|j| (j as f64 * 1.7).cos()).collect();
                let rows = sample_rows(lanes, dim);
                let block = to_block(&rows, dim, BLOCK_ROWS);
                let mut want = vec![f64::NAN; lanes];
                let mut got = vec![f64::NAN; lanes];
                portable::dot_block_cols(&a, &block, BLOCK_ROWS, &mut want);
                simd::dot_block_cols_avx2(&a, &block, BLOCK_ROWS, &mut got);
                for (w, g) in want.iter().zip(&got) {
                    assert_eq!(w.to_bits(), g.to_bits(), "dim {dim} lanes {lanes}");
                }
                for leq in [true, false] {
                    let b = want.first().copied().unwrap_or(0.0);
                    let pm = portable::dot_cmp_block(&a, &block, BLOCK_ROWS, lanes, b, leq);
                    let sm = simd::dot_cmp_block_avx2(&a, &block, BLOCK_ROWS, lanes, b, leq);
                    assert_eq!(pm, sm, "mask dim {dim} lanes {lanes} leq {leq}");
                }
            }
        }
    }

    #[test]
    fn cmp_mask_matches_subtract_then_compare() {
        let dim = 6;
        let lanes = 10;
        let a: Vec<f64> = (0..dim).map(|j| j as f64 - 2.5).collect();
        let rows = sample_rows(lanes, dim);
        let block = to_block(&rows, dim, BLOCK_ROWS);
        let mut dots = vec![0.0; lanes];
        dot_block_cols(&a, &block, BLOCK_ROWS, &mut dots);
        // Pick b equal to one of the dots so the boundary case is exercised.
        let b = dots[3];
        for leq in [true, false] {
            let mask = dot_cmp_block(&a, &block, BLOCK_ROWS, lanes, b, leq);
            for (l, &dot) in dots.iter().enumerate() {
                let margin = dot - b;
                let want = if leq { margin <= 0.0 } else { margin >= 0.0 };
                assert_eq!(mask >> l & 1 == 1, want, "lane {l} leq {leq}");
            }
        }
    }

    #[test]
    fn cmp_mask_nan_is_unsatisfied_both_ways() {
        let block = to_block(&[vec![f64::NAN], vec![1.0]], 1, BLOCK_ROWS);
        for leq in [true, false] {
            let mask = dot_cmp_block(&[1.0], &block, BLOCK_ROWS, 2, 1.0, leq);
            assert_eq!(mask & 1, 0, "NaN lane must not satisfy (leq {leq})");
        }
    }

    #[test]
    fn axpy_matches_scalar() {
        let x: Vec<f64> = (0..13).map(|i| (i as f64).sin()).collect();
        let mut y: Vec<f64> = (0..13).map(|i| i as f64 * 0.5).collect();
        let mut want = y.clone();
        for (w, &xi) in want.iter_mut().zip(&x) {
            *w += -1.75 * xi;
        }
        axpy(-1.75, &x, &mut y);
        for (w, g) in want.iter().zip(&y) {
            assert_eq!(w.to_bits(), g.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn short_block_panics() {
        let mut dots = [0.0; 2];
        dot_block_cols(&[1.0, 2.0], &[0.0; 64], BLOCK_ROWS, &mut dots);
    }

    #[test]
    fn kernel_name_is_stable() {
        assert!(matches!(kernel_name(), "avx2" | "portable"));
        assert_eq!(kernel(), kernel());
    }
}
