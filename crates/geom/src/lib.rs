//! # planar-geom
//!
//! Dense vector and hyperplane geometry substrate for the Planar index
//! ("Towards Indexing Functions: Answering Scalar Product Queries",
//! SIGMOD 2014).
//!
//! Everything the index needs from coordinate geometry lives here:
//!
//! * [`Vector`] — a thin, dimension-checked wrapper over `Vec<f64>` with the
//!   scalar-product, norm and angle operations used throughout the paper.
//! * [`Hyperplane`] — `⟨normal, y⟩ = offset` with axis intercepts
//!   (`I(q, i) = b / aᵢ` in the paper's notation), point distance and the
//!   angle between two hyperplanes (§5.1.2, angle-minimization heuristic).
//! * [`Octant`] / [`SignVector`] — hyper-octant bookkeeping for queries whose
//!   coefficients are not all positive (§4.5).
//! * [`Translation`] — the translation operation of Claim 1 (Eq. 9–12) that
//!   moves data into the query's hyper-octant, plus the sign *reflection*
//!   that maps that octant onto the first one so the core index can always
//!   work with non-negative coordinates.
//!
//! The crate is `no_std`-agnostic in spirit (no allocation beyond `Vec`) and
//! has no dependencies; it is shared by every other crate in the workspace.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod approx;
mod hyperplane;
pub mod kernels;
mod octant;
pub mod quant;
mod translation;
mod vector;

pub use approx::{approx_eq, approx_eq_eps, DEFAULT_EPS};
pub use hyperplane::Hyperplane;
pub use kernels::{
    axpy, dot_block_cols, dot_cmp_block, host_has_fma, kernel, kernel_name, KernelKind, BLOCK_ROWS,
};
pub use octant::{Octant, Sign, SignVector};
pub use quant::{
    classify_block_i16, classify_block_i8, dot_block_cols_i16, dot_block_cols_i8,
    quant_kernel_name, QMAX_I16, QMAX_I8,
};
pub use translation::{NormalizedQuery, Normalizer, Translation};
pub use vector::{dot, dot_block, dot_slices, norm, Vector};

/// Errors produced by geometric constructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeomError {
    /// Two operands had different dimensionality.
    DimensionMismatch {
        /// Dimensionality of the left operand.
        left: usize,
        /// Dimensionality of the right operand.
        right: usize,
    },
    /// A coordinate that must be non-zero was zero.
    ZeroCoordinate {
        /// Index of the offending axis.
        axis: usize,
    },
    /// A value that must be finite was NaN or infinite.
    NotFinite,
    /// An empty vector was supplied where dimension ≥ 1 is required.
    Empty,
}

impl core::fmt::Display for GeomError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GeomError::DimensionMismatch { left, right } => {
                write!(f, "dimension mismatch: {left} vs {right}")
            }
            GeomError::ZeroCoordinate { axis } => {
                write!(f, "coordinate on axis {axis} must be non-zero")
            }
            GeomError::NotFinite => write!(f, "value must be finite"),
            GeomError::Empty => write!(f, "vector must have dimension >= 1"),
        }
    }
}

impl std::error::Error for GeomError {}

/// Convenience alias for geometry results.
pub type Result<T> = core::result::Result<T, GeomError>;
