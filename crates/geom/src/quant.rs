//! Runtime-dispatched kernels over **quantized** interleaved-block columnar
//! lanes (the compressed filter tier).
//!
//! The quantized tier stores each 64-lane block of
//! `planar_core::table::ColumnMajorRows` as fixed-point codes — `i8` or
//! `i16` per element — plus a per-`(block, dim)` affine decode
//! `x ≈ offset + scale · code`. Shrinking bytes-per-row 4–8x multiplies the
//! cache-residency win the columnar layout already buys, and the narrower
//! lanes let one AVX2 register cover 8 lanes of `f32` arithmetic.
//!
//! Kernels here compute, per lane `l`,
//!
//! ```text
//! D[l] = Σ_j w[j] · code[j·stride + l]      (f32 accumulation)
//! ```
//!
//! where the caller has folded the per-dimension scales into the query as
//! `w[j] = f32(a[j] · scale[j])`. The decode offsets and the threshold `b`
//! are folded into the *classification thresholds* `t_lo`/`t_hi` (computed
//! in `f64` by the caller, with conservative outward rounding), so the
//! fused [`classify_block_i8`]/[`classify_block_i16`] kernels answer, per
//! lane, one of three verdicts without ever touching the `f64` rows:
//!
//! * `below`: `D[l] ≤ t_lo` — provably satisfies / fails the predicate
//!   (which one depends on the comparison direction; the caller assigns
//!   meaning);
//! * `above`: `D[l] ≥ t_hi` — provably the other side;
//! * neither — the lane is inside the uncertainty band and must be
//!   re-verified against the full-precision rows.
//!
//! A `NaN` product (impossible for in-contract inputs, but the contract is
//! enforced by the caller) lands in *neither* mask — ordered-quiet
//! compares — so corruption degrades to exact re-verification, never to a
//! wrong answer.
//!
//! ## Dispatch and bit-stability
//!
//! Dispatch reuses [`crate::kernel`] (AVX2 vs portable, honoring
//! `PLANAR_FORCE_PORTABLE`). Both implementations accumulate in `f32` with
//! the **same operation order** — four accumulators striped over chunks of
//! four dimensions, combined `(acc0 + acc1) + (acc2 + acc3)`, sequential
//! tail, separate multiply and add (no FMA) — so `D[l]` is bit-identical
//! between the AVX2 and portable paths. That keeps classification verdicts
//! (and therefore every counter and every answer) independent of the host's
//! SIMD level, exactly like the `f64` kernels in [`crate::kernels`].
//!
//! The *answers* of the index never depend on `D` at all: the caller only
//! acts on verdicts that are sound under its error bound, and re-verifies
//! the band with the exact `f64` kernels.

use crate::kernels::{kernel, BLOCK_ROWS};

/// Largest code magnitude of the `i8` tier (`[-127, 127]`; −128 is unused
/// so the range is symmetric and negation stays in range).
pub const QMAX_I8: i32 = 127;

/// Largest code magnitude of the `i16` tier (`[-32767, 32767]`).
pub const QMAX_I16: i32 = 32767;

/// Name of the active quantized-kernel implementation for provenance
/// stamping: `"avx2-i8"`, `"portable-i16"`, …
pub fn quant_kernel_name(wide: bool) -> &'static str {
    match (kernel(), wide) {
        (crate::KernelKind::Avx2, false) => "avx2-i8",
        (crate::KernelKind::Avx2, true) => "avx2-i16",
        (_, false) => "portable-i8",
        (_, true) => "portable-i16",
    }
}

#[inline]
fn check_qblock(dim: usize, codes_len: usize, stride: usize, lanes: usize) {
    assert!(
        lanes <= stride,
        "lanes {lanes} exceed block stride {stride}"
    );
    assert!(lanes <= 64, "classification mask holds at most 64 lanes");
    // Like the f64 kernels, `codes` may be a lane-shifted view into a
    // larger block, so the requirement is reachability of the last element
    // read, not an exact size.
    let needed = if dim == 0 {
        0
    } else {
        (dim - 1) * stride + lanes
    };
    assert!(
        codes_len >= needed,
        "quantized block shape mismatch: need {needed} elements, have {codes_len}"
    );
}

/// `f32` scalar products of `w` against `dots.len()` lanes of an `i8` code
/// block: `dots[l] = Σ_j w[j] · codes[j·stride + l]`.
///
/// # Panics
///
/// Panics if `dots.len() > stride` or the code block cannot cover
/// `w.len()` dimensions at the given stride.
#[inline]
pub fn dot_block_cols_i8(w: &[f32], codes: &[i8], stride: usize, dots: &mut [f32]) {
    check_qblock(w.len(), codes.len(), stride, dots.len());
    match kernel() {
        #[cfg(target_arch = "x86_64")]
        crate::KernelKind::Avx2 => simd::dot_block_cols_i8_avx2(w, codes, stride, dots),
        _ => portable::dot_block_cols_i8(w, codes, stride, dots),
    }
}

/// `f32` scalar products of `w` against `dots.len()` lanes of an `i16`
/// code block. See [`dot_block_cols_i8`].
///
/// # Panics
///
/// Same contract as [`dot_block_cols_i8`].
#[inline]
pub fn dot_block_cols_i16(w: &[f32], codes: &[i16], stride: usize, dots: &mut [f32]) {
    check_qblock(w.len(), codes.len(), stride, dots.len());
    match kernel() {
        #[cfg(target_arch = "x86_64")]
        crate::KernelKind::Avx2 => simd::dot_block_cols_i16_avx2(w, codes, stride, dots),
        _ => portable::dot_block_cols_i16(w, codes, stride, dots),
    }
}

/// Fused quantized classification over `lanes` lanes of an `i8` code
/// block. Returns `(below, above)` bitmasks: bit `l` of `below` is set iff
/// `D[l] ≤ t_lo`, bit `l` of `above` iff `D[l] ≥ t_hi`. With
/// `t_lo < t_hi` the masks are disjoint; lanes in neither mask are in the
/// caller's uncertainty band.
///
/// # Panics
///
/// Panics if `lanes > 64`, `lanes > stride`, or the code block cannot
/// cover `w.len()` dimensions at the given stride.
#[inline]
pub fn classify_block_i8(
    w: &[f32],
    codes: &[i8],
    stride: usize,
    lanes: usize,
    t_lo: f32,
    t_hi: f32,
) -> (u64, u64) {
    check_qblock(w.len(), codes.len(), stride, lanes);
    match kernel() {
        #[cfg(target_arch = "x86_64")]
        crate::KernelKind::Avx2 => {
            simd::classify_block_i8_avx2(w, codes, stride, lanes, t_lo, t_hi)
        }
        _ => portable::classify_block_i8(w, codes, stride, lanes, t_lo, t_hi),
    }
}

/// Fused quantized classification over `lanes` lanes of an `i16` code
/// block. See [`classify_block_i8`].
///
/// # Panics
///
/// Same contract as [`classify_block_i8`].
#[inline]
pub fn classify_block_i16(
    w: &[f32],
    codes: &[i16],
    stride: usize,
    lanes: usize,
    t_lo: f32,
    t_hi: f32,
) -> (u64, u64) {
    check_qblock(w.len(), codes.len(), stride, lanes);
    match kernel() {
        #[cfg(target_arch = "x86_64")]
        crate::KernelKind::Avx2 => {
            simd::classify_block_i16_avx2(w, codes, stride, lanes, t_lo, t_hi)
        }
        _ => portable::classify_block_i16(w, codes, stride, lanes, t_lo, t_hi),
    }
}

/// Portable scalar twins. Accumulation order matches the AVX2 path exactly
/// (chunks of four striped `f32` accumulators, `(s0 + s1) + (s2 + s3)`,
/// sequential tail, no contraction), so `D[l]` — and every verdict — is
/// bit-identical across dispatch.
pub(crate) mod portable {
    use super::BLOCK_ROWS;

    macro_rules! impl_portable {
        ($dot:ident, $classify:ident, $ty:ty) => {
            pub(crate) fn $dot(w: &[f32], codes: &[$ty], stride: usize, dots: &mut [f32]) {
                let dim = w.len();
                let lanes = dots.len();
                let chunks = dim / 4;
                let mut acc = [[0.0f32; BLOCK_ROWS]; 4];
                for i in 0..chunks {
                    let j = i * 4;
                    for (s, acc_s) in acc.iter_mut().enumerate() {
                        let wj = w[j + s];
                        let col = &codes[(j + s) * stride..(j + s) * stride + lanes];
                        for (l, &c) in col.iter().enumerate() {
                            acc_s[l] += wj * c as f32;
                        }
                    }
                }
                for (l, dot) in dots.iter_mut().enumerate() {
                    *dot = (acc[0][l] + acc[1][l]) + (acc[2][l] + acc[3][l]);
                }
                for j in chunks * 4..dim {
                    let wj = w[j];
                    let col = &codes[j * stride..j * stride + lanes];
                    for (l, &c) in col.iter().enumerate() {
                        dots[l] += wj * c as f32;
                    }
                }
            }

            pub(crate) fn $classify(
                w: &[f32],
                codes: &[$ty],
                stride: usize,
                lanes: usize,
                t_lo: f32,
                t_hi: f32,
            ) -> (u64, u64) {
                let mut dots = [0.0f32; BLOCK_ROWS];
                $dot(w, codes, stride, &mut dots[..lanes]);
                let (mut below, mut above) = (0u64, 0u64);
                for (l, &d) in dots[..lanes].iter().enumerate() {
                    // Ordered compares: NaN joins neither mask.
                    below |= ((d <= t_lo) as u64) << l;
                    above |= ((d >= t_hi) as u64) << l;
                }
                (below, above)
            }
        };
    }

    impl_portable!(dot_block_cols_i8, classify_block_i8, i8);
    impl_portable!(dot_block_cols_i16, classify_block_i16, i16);
}

/// Explicit AVX2 implementations: the crate's second (and only other)
/// `#[allow(unsafe_code)]` island, same rules as `kernels::simd` — all
/// unsafety is `std::arch` intrinsics plus raw-pointer loads whose bounds
/// the safe dispatchers assert first.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
pub(crate) mod simd {
    use std::arch::x86_64::*;

    pub(crate) fn dot_block_cols_i8_avx2(w: &[f32], codes: &[i8], stride: usize, dots: &mut [f32]) {
        // SAFETY: AVX2 availability is established by runtime detection in
        // `crate::kernel()` before this path is selected; slice bounds are
        // asserted by `super::check_qblock`.
        unsafe { dot_i8_impl(w, codes, stride, dots) }
    }

    pub(crate) fn dot_block_cols_i16_avx2(
        w: &[f32],
        codes: &[i16],
        stride: usize,
        dots: &mut [f32],
    ) {
        // SAFETY: as above.
        unsafe { dot_i16_impl(w, codes, stride, dots) }
    }

    pub(crate) fn classify_block_i8_avx2(
        w: &[f32],
        codes: &[i8],
        stride: usize,
        lanes: usize,
        t_lo: f32,
        t_hi: f32,
    ) -> (u64, u64) {
        // SAFETY: as above.
        unsafe { classify_i8_impl(w, codes, stride, lanes, t_lo, t_hi) }
    }

    pub(crate) fn classify_block_i16_avx2(
        w: &[f32],
        codes: &[i16],
        stride: usize,
        lanes: usize,
        t_lo: f32,
        t_hi: f32,
    ) -> (u64, u64) {
        // SAFETY: as above.
        unsafe { classify_i16_impl(w, codes, stride, lanes, t_lo, t_hi) }
    }

    /// Widen 8 `i8` codes at `p` to an 8-lane `f32` vector.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load8_i8(p: *const i8) -> __m256 {
        _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(_mm_loadl_epi64(p as *const __m128i)))
    }

    /// Widen 8 `i16` codes at `p` to an 8-lane `f32` vector.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load8_i16(p: *const i16) -> __m256 {
        _mm256_cvtepi32_ps(_mm256_cvtepi16_epi32(_mm_loadu_si128(p as *const __m128i)))
    }

    macro_rules! impl_avx2 {
        ($dot:ident, $classify:ident, $dots8:ident, $eight:ident, $ty:ty) => {
            /// Vertical `f32` accumulators striped over chunks of four
            /// dimensions, combined `(a0 + a1) + (a2 + a3)`, sequential
            /// tail — `vmulps` + `vaddps`, never `vfmadd` — so each lane
            /// reproduces the portable twin bit-for-bit.
            #[target_feature(enable = "avx2")]
            unsafe fn $dots8(w: &[f32], codes: &[$ty], stride: usize, lane: usize) -> __m256 {
                let dim = w.len();
                let chunks = dim / 4;
                let cp = codes.as_ptr();
                let mut a0 = _mm256_setzero_ps();
                let mut a1 = _mm256_setzero_ps();
                let mut a2 = _mm256_setzero_ps();
                let mut a3 = _mm256_setzero_ps();
                for i in 0..chunks {
                    let j = i * 4;
                    let c0 = _mm256_set1_ps(*w.get_unchecked(j));
                    let c1 = _mm256_set1_ps(*w.get_unchecked(j + 1));
                    let c2 = _mm256_set1_ps(*w.get_unchecked(j + 2));
                    let c3 = _mm256_set1_ps(*w.get_unchecked(j + 3));
                    a0 = _mm256_add_ps(a0, _mm256_mul_ps(c0, $eight(cp.add(j * stride + lane))));
                    a1 = _mm256_add_ps(
                        a1,
                        _mm256_mul_ps(c1, $eight(cp.add((j + 1) * stride + lane))),
                    );
                    a2 = _mm256_add_ps(
                        a2,
                        _mm256_mul_ps(c2, $eight(cp.add((j + 2) * stride + lane))),
                    );
                    a3 = _mm256_add_ps(
                        a3,
                        _mm256_mul_ps(c3, $eight(cp.add((j + 3) * stride + lane))),
                    );
                }
                let mut acc = _mm256_add_ps(_mm256_add_ps(a0, a1), _mm256_add_ps(a2, a3));
                for j in chunks * 4..dim {
                    let c = _mm256_set1_ps(*w.get_unchecked(j));
                    acc = _mm256_add_ps(acc, _mm256_mul_ps(c, $eight(cp.add(j * stride + lane))));
                }
                acc
            }

            #[target_feature(enable = "avx2")]
            unsafe fn $dot(w: &[f32], codes: &[$ty], stride: usize, dots: &mut [f32]) {
                let lanes = dots.len();
                let mut lane = 0;
                while lane + 8 <= lanes {
                    let d = $dots8(w, codes, stride, lane);
                    _mm256_storeu_ps(dots.as_mut_ptr().add(lane), d);
                    lane += 8;
                }
                if lane < lanes {
                    // Scalar tail in the portable twin's (identical) order.
                    let mut tail = [0.0f32; 8];
                    let dim = w.len();
                    let chunks = dim / 4;
                    for (off, t) in tail[..lanes - lane].iter_mut().enumerate() {
                        let l = lane + off;
                        let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0, 0.0, 0.0);
                        for i in 0..chunks {
                            let j = i * 4;
                            s0 += w[j] * codes[j * stride + l] as f32;
                            s1 += w[j + 1] * codes[(j + 1) * stride + l] as f32;
                            s2 += w[j + 2] * codes[(j + 2) * stride + l] as f32;
                            s3 += w[j + 3] * codes[(j + 3) * stride + l] as f32;
                        }
                        let mut s = (s0 + s1) + (s2 + s3);
                        for j in chunks * 4..dim {
                            s += w[j] * codes[j * stride + l] as f32;
                        }
                        *t = s;
                    }
                    dots[lane..].copy_from_slice(&tail[..lanes - lane]);
                }
            }

            #[target_feature(enable = "avx2")]
            unsafe fn $classify(
                w: &[f32],
                codes: &[$ty],
                stride: usize,
                lanes: usize,
                t_lo: f32,
                t_hi: f32,
            ) -> (u64, u64) {
                let tl = _mm256_set1_ps(t_lo);
                let th = _mm256_set1_ps(t_hi);
                let (mut below, mut above) = (0u64, 0u64);
                let mut lane = 0;
                while lane + 8 <= lanes {
                    let d = $dots8(w, codes, stride, lane);
                    let mb = _mm256_movemask_ps(_mm256_cmp_ps::<_CMP_LE_OQ>(d, tl)) as u32;
                    let ma = _mm256_movemask_ps(_mm256_cmp_ps::<_CMP_GE_OQ>(d, th)) as u32;
                    below |= (mb as u64) << lane;
                    above |= (ma as u64) << lane;
                    lane += 8;
                }
                if lane < lanes {
                    let mut dots = [0.0f32; 8];
                    $dot(w, &codes[lane..], stride, &mut dots[..lanes - lane]);
                    for (off, &d) in dots[..lanes - lane].iter().enumerate() {
                        below |= ((d <= t_lo) as u64) << (lane + off);
                        above |= ((d >= t_hi) as u64) << (lane + off);
                    }
                }
                (below, above)
            }
        };
    }

    impl_avx2!(dot_i8_impl, classify_i8_impl, dots8_i8, load8_i8, i8);
    impl_avx2!(dot_i16_impl, classify_i16_impl, dots8_i16, load8_i16, i16);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes_i8(n: usize, seed: u64) -> Vec<i8> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as i64 % 128) as i8
            })
            .collect()
    }

    fn codes_i16(n: usize, seed: u64) -> Vec<i16> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as i64 % 32768) as i16
            })
            .collect()
    }

    fn weights(dim: usize, seed: u64) -> Vec<f32> {
        let mut state = seed | 1;
        (0..dim)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 40) as i32 as f32) * 1e-5
            })
            .collect()
    }

    #[test]
    fn portable_i8_matches_reference_order() {
        for dim in [1, 3, 4, 5, 8, 13, 64] {
            let w = weights(dim, dim as u64);
            let codes = codes_i8(dim * BLOCK_ROWS, 7);
            let mut dots = vec![0.0f32; BLOCK_ROWS];
            portable::dot_block_cols_i8(&w, &codes, BLOCK_ROWS, &mut dots);
            for (l, &got) in dots.iter().enumerate() {
                // Reference: same striped order, scalar.
                let chunks = dim / 4;
                let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0, 0.0, 0.0);
                for i in 0..chunks {
                    let j = i * 4;
                    s0 += w[j] * codes[j * BLOCK_ROWS + l] as f32;
                    s1 += w[j + 1] * codes[(j + 1) * BLOCK_ROWS + l] as f32;
                    s2 += w[j + 2] * codes[(j + 2) * BLOCK_ROWS + l] as f32;
                    s3 += w[j + 3] * codes[(j + 3) * BLOCK_ROWS + l] as f32;
                }
                let mut want = (s0 + s1) + (s2 + s3);
                for j in chunks * 4..dim {
                    want += w[j] * codes[j * BLOCK_ROWS + l] as f32;
                }
                assert_eq!(got.to_bits(), want.to_bits(), "dim {dim} lane {l}");
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_matches_portable_bitwise() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        for dim in [1, 2, 4, 7, 8, 16, 33, 64] {
            for lanes in [1, 7, 8, 9, 31, 63, 64] {
                let w = weights(dim, dim as u64 ^ 0xABCD);
                let c8 = codes_i8(dim * BLOCK_ROWS, lanes as u64);
                let c16 = codes_i16(dim * BLOCK_ROWS, lanes as u64 ^ 5);
                let mut p = vec![0.0f32; lanes];
                let mut v = vec![0.0f32; lanes];
                portable::dot_block_cols_i8(&w, &c8, BLOCK_ROWS, &mut p);
                simd::dot_block_cols_i8_avx2(&w, &c8, BLOCK_ROWS, &mut v);
                for l in 0..lanes {
                    assert_eq!(
                        p[l].to_bits(),
                        v[l].to_bits(),
                        "i8 d{dim} lanes{lanes} l{l}"
                    );
                }
                portable::dot_block_cols_i16(&w, &c16, BLOCK_ROWS, &mut p);
                simd::dot_block_cols_i16_avx2(&w, &c16, BLOCK_ROWS, &mut v);
                for l in 0..lanes {
                    assert_eq!(
                        p[l].to_bits(),
                        v[l].to_bits(),
                        "i16 d{dim} lanes{lanes} l{l}"
                    );
                }
                // Classification verdicts agree for thresholds straddling
                // the observed dot range.
                let lo = p.iter().cloned().fold(f32::INFINITY, f32::min);
                let hi = p.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let mid = (lo + hi) / 2.0;
                for (tl, th) in [(mid, mid), (lo, hi), (hi, lo.max(hi))] {
                    let a = portable::classify_block_i16(&w, &c16, BLOCK_ROWS, lanes, tl, th);
                    let b = simd::classify_block_i16_avx2(&w, &c16, BLOCK_ROWS, lanes, tl, th);
                    assert_eq!(a, b, "classify i16 d{dim} lanes{lanes}");
                    let a = portable::classify_block_i8(&w, &c8, BLOCK_ROWS, lanes, tl, th);
                    let b = simd::classify_block_i8_avx2(&w, &c8, BLOCK_ROWS, lanes, tl, th);
                    assert_eq!(a, b, "classify i8 d{dim} lanes{lanes}");
                }
            }
        }
    }

    #[test]
    fn classify_masks_are_consistent_with_dots() {
        let dim = 6;
        let lanes = 64;
        let w = weights(dim, 99);
        let codes = codes_i16(dim * BLOCK_ROWS, 3);
        let mut dots = vec![0.0f32; lanes];
        dot_block_cols_i16(&w, &codes, BLOCK_ROWS, &mut dots);
        let sorted = {
            let mut d = dots.clone();
            d.sort_by(f32::total_cmp);
            d
        };
        let (t_lo, t_hi) = (sorted[15], sorted[47]);
        let (below, above) = classify_block_i16(&w, &codes, BLOCK_ROWS, lanes, t_lo, t_hi);
        for (l, &d) in dots.iter().enumerate() {
            assert_eq!(below >> l & 1 == 1, d <= t_lo, "below lane {l}");
            assert_eq!(above >> l & 1 == 1, d >= t_hi, "above lane {l}");
        }
    }

    #[test]
    fn lane_shifted_views_work() {
        // A mid-block segment: codes offset by 16 lanes, 32 lanes long.
        let dim = 5;
        let w = weights(dim, 4);
        let codes = codes_i8(dim * BLOCK_ROWS, 11);
        let mut full = vec![0.0f32; BLOCK_ROWS];
        dot_block_cols_i8(&w, &codes, BLOCK_ROWS, &mut full);
        let mut part = vec![0.0f32; 32];
        dot_block_cols_i8(&w, &codes[16..], BLOCK_ROWS, &mut part);
        for l in 0..32 {
            assert_eq!(part[l].to_bits(), full[16 + l].to_bits(), "lane {l}");
        }
    }

    #[test]
    fn quant_kernel_names_are_stable() {
        let n8 = quant_kernel_name(false);
        let n16 = quant_kernel_name(true);
        assert!(n8.ends_with("-i8"));
        assert!(n16.ends_with("-i16"));
    }
}
