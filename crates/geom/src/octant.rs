//! Hyper-octant bookkeeping (§4.5 of the paper).
//!
//! A hyper-octant of `R^{d'}` is identified by the sign of each axis,
//! `sign(O, i) ∈ {+1, −1}`. Queries whose coefficient signs are fixed by
//! their parameter domains intersect the axes in one known octant `O`; the
//! index translates all data into `O` (see [`crate::Translation`]) and then
//! *reflects* `O` onto the first octant so the core query machinery only
//! ever deals with non-negative coordinates.

use crate::{GeomError, Result};

/// The sign of one axis of a hyper-octant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Positive half of the axis (`sign(O, i) = +1`).
    Pos,
    /// Negative half of the axis (`sign(O, i) = −1`).
    Neg,
}

impl Sign {
    /// The sign as `+1.0` or `−1.0`.
    #[inline]
    pub fn as_f64(self) -> f64 {
        match self {
            Sign::Pos => 1.0,
            Sign::Neg => -1.0,
        }
    }

    /// The sign of a non-zero float.
    ///
    /// # Errors
    ///
    /// [`GeomError::ZeroCoordinate`] for `0.0` (a zero has no octant side)
    /// and [`GeomError::NotFinite`] for NaN.
    pub fn of(v: f64) -> Result<Self> {
        if v.is_nan() {
            Err(GeomError::NotFinite)
        } else if v > 0.0 {
            Ok(Sign::Pos)
        } else if v < 0.0 {
            Ok(Sign::Neg)
        } else {
            Err(GeomError::ZeroCoordinate { axis: 0 })
        }
    }

    /// The sign of a float, treating zero as positive. Used for data
    /// coordinates, where `0` sits on the octant boundary and either side
    /// works.
    #[inline]
    pub fn of_lenient(v: f64) -> Self {
        if v < 0.0 {
            Sign::Neg
        } else {
            Sign::Pos
        }
    }
}

/// A vector of per-axis signs; the identity of a hyper-octant.
pub type SignVector = Vec<Sign>;

/// A hyper-octant of `R^{d'}`, identified by its per-axis signs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Octant {
    signs: SignVector,
}

impl Octant {
    /// The first hyper-octant (all axes positive) in dimension `d`.
    pub fn first(d: usize) -> Self {
        Self {
            signs: vec![Sign::Pos; d],
        }
    }

    /// Build an octant from explicit per-axis signs.
    pub fn from_signs(signs: SignVector) -> Self {
        Self { signs }
    }

    /// The octant in which a query hyperplane with coefficient vector `a`
    /// (and offset `b ≥ 0`) intersects the coordinate axes: the intercept on
    /// axis `i` is `b / aᵢ`, whose sign is the sign of `aᵢ`.
    ///
    /// # Errors
    ///
    /// [`GeomError::ZeroCoordinate`] if some `aᵢ = 0` (the hyperplane never
    /// meets that axis) or [`GeomError::NotFinite`] on NaN coefficients.
    pub fn of_coefficients(a: &[f64]) -> Result<Self> {
        let signs = a
            .iter()
            .enumerate()
            .map(|(axis, &ai)| {
                Sign::of(ai).map_err(|e| match e {
                    GeomError::ZeroCoordinate { .. } => GeomError::ZeroCoordinate { axis },
                    other => other,
                })
            })
            .collect::<Result<SignVector>>()?;
        Ok(Self { signs })
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.signs.len()
    }

    /// `sign(O, i)` as an enum.
    #[inline]
    pub fn sign(&self, i: usize) -> Sign {
        self.signs[i]
    }

    /// `sign(O, i)` as `±1.0`.
    #[inline]
    pub fn sign_f64(&self, i: usize) -> f64 {
        self.signs[i].as_f64()
    }

    /// The per-axis signs.
    #[inline]
    pub fn signs(&self) -> &[Sign] {
        &self.signs
    }

    /// True if this is the first octant.
    pub fn is_first(&self) -> bool {
        self.signs.iter().all(|&s| s == Sign::Pos)
    }

    /// Reflect a point of this octant onto the first octant:
    /// `y'ᵢ = sign(O, i) · yᵢ`. The map is an isometry and an involution, so
    /// it also maps first-octant points back into `O`.
    pub fn reflect(&self, p: &[f64]) -> Vec<f64> {
        debug_assert_eq!(p.len(), self.dim());
        p.iter()
            .zip(&self.signs)
            .map(|(&v, s)| s.as_f64() * v)
            .collect()
    }

    /// Reflect in place (hot path during index construction over large
    /// feature tables).
    pub fn reflect_in_place(&self, p: &mut [f64]) {
        debug_assert_eq!(p.len(), self.dim());
        for (v, s) in p.iter_mut().zip(&self.signs) {
            *v *= s.as_f64();
        }
    }

    /// True when point `p` lies (weakly) inside this octant.
    pub fn contains(&self, p: &[f64]) -> bool {
        p.iter()
            .zip(&self.signs)
            .all(|(&v, s)| s.as_f64() * v >= 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_of() {
        assert_eq!(Sign::of(3.5), Ok(Sign::Pos));
        assert_eq!(Sign::of(-0.1), Ok(Sign::Neg));
        assert!(Sign::of(0.0).is_err());
        assert!(Sign::of(f64::NAN).is_err());
        assert_eq!(Sign::of_lenient(0.0), Sign::Pos);
        assert_eq!(Sign::of_lenient(-1.0), Sign::Neg);
    }

    #[test]
    fn octant_of_coefficients() {
        let o = Octant::of_coefficients(&[1.0, -2.0, 3.0]).unwrap();
        assert_eq!(o.signs(), &[Sign::Pos, Sign::Neg, Sign::Pos]);
        assert!(!o.is_first());
        assert!(Octant::first(3).is_first());

        let err = Octant::of_coefficients(&[1.0, 0.0]).unwrap_err();
        assert_eq!(err, GeomError::ZeroCoordinate { axis: 1 });
    }

    #[test]
    fn reflect_is_involution() {
        let o = Octant::from_signs(vec![Sign::Neg, Sign::Pos, Sign::Neg]);
        let p = vec![-1.0, 2.0, -3.0];
        let r = o.reflect(&p);
        assert_eq!(r, vec![1.0, 2.0, 3.0]);
        assert_eq!(o.reflect(&r), p);
        let mut q = p.clone();
        o.reflect_in_place(&mut q);
        assert_eq!(q, r);
    }

    #[test]
    fn contains_checks_signs() {
        let o = Octant::from_signs(vec![Sign::Neg, Sign::Pos]);
        assert!(o.contains(&[-1.0, 2.0]));
        assert!(o.contains(&[0.0, 0.0])); // boundary is weakly inside
        assert!(!o.contains(&[1.0, 2.0]));
        assert!(!o.contains(&[-1.0, -2.0]));
    }

    #[test]
    fn reflected_points_land_in_first_octant() {
        let o = Octant::of_coefficients(&[-2.0, 5.0, -1.0]).unwrap();
        // A point inside O...
        let p = vec![-3.0, 4.0, -0.5];
        assert!(o.contains(&p));
        // ...reflects into the first octant.
        let r = o.reflect(&p);
        assert!(Octant::first(3).contains(&r));
    }
}
