//! Dense `f64` vectors with the small set of operations the Planar index
//! needs: scalar products, norms, scaling and component-wise arithmetic.

use crate::{GeomError, Result};

/// Scalar product of two slices.
///
/// This is the single hottest operation in the workspace (every query
/// verification is one `dot`), so it is kept as a free function over slices
/// that the optimizer can unroll/vectorize, and [`Vector`] delegates to it.
///
/// # Panics
///
/// Panics (in every build profile) if the slices have different lengths.
/// Release builds used to silently truncate to the shorter length, which
/// turned dimension bugs into wrong answers; all callers now go through
/// this checked entry point and the fallible [`dot`] remains available
/// where a recoverable error is wanted.
#[inline]
pub fn dot_slices(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product dimension mismatch");
    dot_unchecked(a, b)
}

/// Accumulation core shared by every kernel in this crate: 4-way striped
/// accumulators combined as `(acc0 + acc1) + (acc2 + acc3)`, then a
/// sequential tail. The SIMD kernels in [`crate::kernels`] replicate this
/// exact order per lane, which is what makes scalar, blocked and vector
/// paths bit-identical.
#[inline]
pub(crate) fn dot_unchecked(a: &[f64], b: &[f64]) -> f64 {
    // Manual 4-way unroll: rustc reliably vectorizes this shape, and the
    // index's verification loop spends essentially all its time here.
    let n = a.len().min(b.len());
    let chunks = n / 4;
    let mut acc0 = 0.0;
    let mut acc1 = 0.0;
    let mut acc2 = 0.0;
    let mut acc3 = 0.0;
    for i in 0..chunks {
        let j = i * 4;
        acc0 += a[j] * b[j];
        acc1 += a[j + 1] * b[j + 1];
        acc2 += a[j + 2] * b[j + 2];
        acc3 += a[j + 3] * b[j + 3];
    }
    let mut acc = (acc0 + acc1) + (acc2 + acc3);
    for j in chunks * 4..n {
        acc += a[j] * b[j];
    }
    acc
}

/// Blocked verification kernel: scalar products of `a` against a contiguous
/// run of row-major rows.
///
/// `rows` holds `dots.len()` consecutive rows of `a.len()` coordinates each
/// (a slice of a flat `FeatureTable`-style buffer); `dots[i]` receives
/// `⟨a, rows[i]⟩`. One forward pass over `rows` gives the verification loop
/// sequential memory access instead of one random row lookup per candidate.
///
/// Each row uses the exact accumulation order of [`dot_slices`], so a
/// blocked verification pass is bit-identical to per-row `dot_slices` calls
/// — the property the parallel query engine's determinism guarantee rests
/// on.
///
/// # Panics
///
/// Panics (in every build profile) if `rows.len() != a.len() * dots.len()`.
/// The shape check happens once per block, so per-row cost is identical to
/// the previous unchecked version.
#[inline]
pub fn dot_block(a: &[f64], rows: &[f64], dots: &mut [f64]) {
    assert_eq!(rows.len(), a.len() * dots.len(), "dot_block shape mismatch");
    let dim = a.len();
    if dim == 0 {
        dots.fill(0.0);
        return;
    }
    for (dot, row) in dots.iter_mut().zip(rows.chunks_exact(dim)) {
        *dot = dot_unchecked(a, row);
    }
}

/// Checked scalar product: errors on dimension mismatch instead of panicking.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(GeomError::DimensionMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    Ok(dot_slices(a, b))
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot_slices(a, a).sqrt()
}

/// A dense vector in `R^d` backed by a `Vec<f64>`.
///
/// `Vector` is deliberately minimal: the Planar index stores features in flat
/// row-major tables and only materializes `Vector`s at API boundaries
/// (queries, normals, examples).
#[derive(Debug, Clone, PartialEq)]
pub struct Vector {
    coords: Vec<f64>,
}

impl Vector {
    /// Create a vector from raw coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::Empty`] for zero-dimensional input and
    /// [`GeomError::NotFinite`] if any coordinate is NaN or infinite.
    pub fn new(coords: Vec<f64>) -> Result<Self> {
        if coords.is_empty() {
            return Err(GeomError::Empty);
        }
        if coords.iter().any(|c| !c.is_finite()) {
            return Err(GeomError::NotFinite);
        }
        Ok(Self { coords })
    }

    /// Create a vector of `dim` zeros.
    pub fn zeros(dim: usize) -> Self {
        Self {
            coords: vec![0.0; dim],
        }
    }

    /// Create a vector of `dim` ones.
    pub fn ones(dim: usize) -> Self {
        Self {
            coords: vec![1.0; dim],
        }
    }

    /// Dimensionality of the vector.
    #[inline]
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// Coordinates as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.coords
    }

    /// Consume the vector and return its coordinates.
    pub fn into_vec(self) -> Vec<f64> {
        self.coords
    }

    /// Scalar product with another vector.
    ///
    /// # Errors
    ///
    /// [`GeomError::DimensionMismatch`] if dimensions differ.
    #[inline]
    pub fn dot(&self, other: &Vector) -> Result<f64> {
        dot(&self.coords, &other.coords)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(&self) -> f64 {
        norm(&self.coords)
    }

    /// Return a unit-norm copy of this vector.
    ///
    /// # Errors
    ///
    /// [`GeomError::ZeroCoordinate`] if the vector has zero norm.
    pub fn normalized(&self) -> Result<Vector> {
        let n = self.norm();
        if n == 0.0 {
            return Err(GeomError::ZeroCoordinate { axis: 0 });
        }
        Ok(Vector {
            coords: self.coords.iter().map(|c| c / n).collect(),
        })
    }

    /// Component-wise sum.
    ///
    /// # Errors
    ///
    /// [`GeomError::DimensionMismatch`] if dimensions differ.
    pub fn add(&self, other: &Vector) -> Result<Vector> {
        self.zip_with(other, |x, y| x + y)
    }

    /// Component-wise difference `self − other`.
    ///
    /// # Errors
    ///
    /// [`GeomError::DimensionMismatch`] if dimensions differ.
    pub fn sub(&self, other: &Vector) -> Result<Vector> {
        self.zip_with(other, |x, y| x - y)
    }

    /// Multiply every coordinate by `s`.
    pub fn scale(&self, s: f64) -> Vector {
        Vector {
            coords: self.coords.iter().map(|c| c * s).collect(),
        }
    }

    /// The cosine of the angle between this vector and `other`.
    ///
    /// # Errors
    ///
    /// [`GeomError::DimensionMismatch`] if dimensions differ, or
    /// [`GeomError::ZeroCoordinate`] if either vector has zero norm.
    pub fn cosine(&self, other: &Vector) -> Result<f64> {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            return Err(GeomError::ZeroCoordinate { axis: 0 });
        }
        Ok(self.dot(other)? / denom)
    }

    /// True when `other` is (anti-)parallel to this vector within tolerance
    /// `eps` on the absolute cosine.
    ///
    /// Used by the multi-index builder to drop *redundant* indices (§5.2 of
    /// the paper: an index is redundant if another index has a parallel
    /// normal).
    pub fn is_parallel_to(&self, other: &Vector, eps: f64) -> bool {
        match self.cosine(other) {
            Ok(c) => (c.abs() - 1.0).abs() <= eps,
            Err(_) => false,
        }
    }

    fn zip_with(&self, other: &Vector, f: impl Fn(f64, f64) -> f64) -> Result<Vector> {
        if self.dim() != other.dim() {
            return Err(GeomError::DimensionMismatch {
                left: self.dim(),
                right: other.dim(),
            });
        }
        Ok(Vector {
            coords: self
                .coords
                .iter()
                .zip(&other.coords)
                .map(|(&x, &y)| f(x, y))
                .collect(),
        })
    }
}

impl core::ops::Index<usize> for Vector {
    type Output = f64;

    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.coords[i]
    }
}

impl TryFrom<Vec<f64>> for Vector {
    type Error = GeomError;

    fn try_from(coords: Vec<f64>) -> Result<Self> {
        Vector::new(coords)
    }
}

impl AsRef<[f64]> for Vector {
    fn as_ref(&self) -> &[f64] {
        &self.coords
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn dot_basic() {
        assert_eq!(dot_slices(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot_slices(&[], &[]), 0.0);
    }

    #[test]
    fn dot_unrolled_matches_naive() {
        // Exercise lengths around the 4-way unroll boundary.
        for len in 0..=17 {
            let a: Vec<f64> = (0..len).map(|i| i as f64 * 0.5 + 1.0).collect();
            let b: Vec<f64> = (0..len).map(|i| (len - i) as f64 * 0.25).collect();
            let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!(approx_eq(dot_slices(&a, &b), naive), "len {len}");
        }
    }

    /// Mismatched lengths used to silently truncate in release builds
    /// (`Iterator::zip` semantics), turning dimension bugs into wrong
    /// answers. The contract is now a panic in every build profile.
    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_mismatched_lengths_panic() {
        dot_slices(&[1.0; 9], &[1.0; 5]);
    }

    #[test]
    #[should_panic(expected = "dot_block shape mismatch")]
    fn dot_block_shape_mismatch_panics() {
        let mut dots = [0.0; 3];
        dot_block(&[1.0, 2.0], &[1.0; 5], &mut dots);
    }

    #[test]
    fn dot_block_matches_per_row_dots_bitwise() {
        for dim in 1..=7usize {
            for nrows in 0..=5usize {
                let a: Vec<f64> = (0..dim).map(|i| 0.3 * i as f64 - 1.0).collect();
                let rows: Vec<f64> = (0..dim * nrows).map(|i| (i as f64).sin() * 10.0).collect();
                let mut dots = vec![f64::NAN; nrows];
                dot_block(&a, &rows, &mut dots);
                for (r, d) in rows.chunks_exact(dim).zip(&dots) {
                    assert_eq!(d.to_bits(), dot_slices(&a, r).to_bits());
                }
            }
        }
    }

    #[test]
    fn dot_checked_rejects_mismatch() {
        assert_eq!(
            dot(&[1.0], &[1.0, 2.0]),
            Err(GeomError::DimensionMismatch { left: 1, right: 2 })
        );
    }

    #[test]
    fn vector_construction_validates() {
        assert_eq!(Vector::new(vec![]), Err(GeomError::Empty));
        assert_eq!(Vector::new(vec![f64::NAN]), Err(GeomError::NotFinite));
        assert_eq!(Vector::new(vec![f64::INFINITY]), Err(GeomError::NotFinite));
        assert!(Vector::new(vec![1.0, -2.0]).is_ok());
    }

    #[test]
    fn norm_and_normalized() {
        let v = Vector::new(vec![3.0, 4.0]).unwrap();
        assert!(approx_eq(v.norm(), 5.0));
        let u = v.normalized().unwrap();
        assert!(approx_eq(u.norm(), 1.0));
        assert!(approx_eq(u[0], 0.6));
        assert!(Vector::zeros(3).normalized().is_err());
    }

    #[test]
    fn add_sub_scale() {
        let a = Vector::new(vec![1.0, 2.0]).unwrap();
        let b = Vector::new(vec![10.0, 20.0]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[11.0, 22.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[9.0, 18.0]);
        assert_eq!(a.scale(-2.0).as_slice(), &[-2.0, -4.0]);
        assert!(a.add(&Vector::ones(3)).is_err());
    }

    #[test]
    fn cosine_and_parallel() {
        let a = Vector::new(vec![1.0, 0.0]).unwrap();
        let b = Vector::new(vec![0.0, 1.0]).unwrap();
        assert!(approx_eq(a.cosine(&b).unwrap(), 0.0));
        assert!(approx_eq(a.cosine(&a).unwrap(), 1.0));

        let c = Vector::new(vec![2.0, 4.0]).unwrap();
        let d = Vector::new(vec![1.0, 2.0]).unwrap();
        let e = Vector::new(vec![-1.0, -2.0]).unwrap();
        assert!(c.is_parallel_to(&d, 1e-12));
        assert!(c.is_parallel_to(&e, 1e-12)); // anti-parallel counts
        assert!(!a.is_parallel_to(&b, 1e-12));
        assert!(!c.is_parallel_to(&Vector::zeros(2), 1e-12));
    }
}
