//! Socket-level chaos sweep over networked replication: a
//! [`ChaosProxy`] sits between a replica's `TcpTransport` and the serve
//! listener hosting the primary, injecting partitions, latency,
//! mid-chunk truncation, connection resets, duplicated bytes, and
//! silent byte loss at every early chunk index. Every schedule must end
//! with the replica bit-identical to the primary — the transport layer
//! detects desync, resets, redials, and the Hello/resume handshake
//! heals the gap — or fail loudly typed; a replica is never allowed to
//! silently diverge.
//!
//! The second sweep kills the primary outright (proxy torn down,
//! listener shut down) after every quorum-acked mutation index, elects
//! and promotes a follower over the network, and asserts the
//! quorum-ack contract end to end: every write confirmed under
//! `AckPolicy::Quorum(1)` is present on the new primary, and the
//! surviving follower re-wires to it and heals bit-identical. There is
//! no third state.

use planar_core::fault::{ChaosFault, ChaosProxy};
use planar_core::{
    elect, AckPolicy, Cmp, ConcurrencyConfig, ConcurrentDurableShardedIndexSet, FailoverConfig,
    FeatureTable, FsyncPolicy, IndexConfig, InequalityQuery, ParameterDomain, Primary,
    ReadConsistency, Replica, ShardConfig, ShardedIndexSet, TcpLinkOptions, TcpTransport, TempDir,
    VecStore, WalOptions,
};
use planar_serve::{ServeConfig, Server, ServerHandle};
use std::sync::Arc;
use std::time::Duration;

fn build_sharded(n: usize) -> ShardedIndexSet<VecStore> {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| vec![1.0 + (i % 11) as f64, 1.0 + (i % 6) as f64])
        .collect();
    let table = FeatureTable::from_rows(2, rows).unwrap();
    let domain = ParameterDomain::uniform_continuous(2, 0.5, 2.0).unwrap();
    ShardedIndexSet::build(
        table,
        domain,
        IndexConfig::with_budget(3),
        ShardConfig::round_robin(3),
    )
    .unwrap()
}

fn probes() -> Vec<InequalityQuery> {
    [10.0, 14.0, 18.0]
        .iter()
        .map(|&b| InequalityQuery::new(vec![1.0, 1.5], Cmp::Leq, b).unwrap())
        .collect()
}

/// A query that matches every row the tests ever insert.
fn catch_all() -> InequalityQuery {
    InequalityQuery::new(vec![1.0, 1.5], Cmp::Leq, 1e6).unwrap()
}

/// Fast reconnects so a 20-scenario sweep stays in CI budget.
fn link_opts() -> TcpLinkOptions {
    TcpLinkOptions {
        backoff_base_ms: 5,
        backoff_cap_ms: 100,
        ..TcpLinkOptions::default()
    }
}

fn durable_store(
    dir: &std::path::Path,
    n: usize,
) -> Arc<ConcurrentDurableShardedIndexSet<VecStore>> {
    Arc::new(
        ConcurrentDurableShardedIndexSet::create(
            dir,
            build_sharded(n),
            WalOptions::default().fsync(FsyncPolicy::EveryN(4)),
            ConcurrencyConfig::default(),
        )
        .unwrap(),
    )
}

/// Attach any ship connections the listener has sniffed since the last
/// call. Chaos kills connections mid-stream; the replica's transport
/// redials through the proxy and each fresh connection surfaces here as
/// a new endpoint to hand the primary (the dead link is reaped by
/// `pump`).
fn adopt_new_links(server: &ServerHandle, primary: &mut Primary<VecStore>) {
    while let Some(ep) = server.accept_replica(Duration::from_millis(1)) {
        primary.add_replica_pending(Box::new(ep.clone()), Box::new(ep));
    }
}

/// One primary (behind a serve listener) and one TCP replica dialing it
/// through a chaos proxy with `inject` applied before traffic starts.
/// Four write bursts flow while the fault fires; then the scenario
/// settles and the replica must be bit-identical to the primary.
fn run_chaos_scenario(label: &str, inject: impl FnOnce(&planar_core::fault::ChaosCtl)) {
    let pdir = TempDir::new("chaos_p").unwrap();
    let rdir = TempDir::new("chaos_r").unwrap();
    let store = durable_store(pdir.path(), 40);
    let server = Server::start(Arc::clone(&store), ServeConfig::default()).unwrap();
    let proxy = ChaosProxy::start(server.addr()).unwrap();
    let ctl = proxy.ctl();
    inject(&ctl);

    let mut primary = Primary::from_shared(Arc::clone(&store), FailoverConfig::default());
    let link = TcpTransport::new(proxy.addr(), link_opts());
    let mut replica = Replica::<VecStore>::new(
        rdir.path().join("r0"),
        0,
        Box::new(link.clone()),
        Box::new(link),
        WalOptions::default().fsync(FsyncPolicy::EveryN(4)),
        FailoverConfig::default(),
    );

    let mut now = 0u64;
    for burst in 0..4u64 {
        for i in 0..6 {
            store
                .insert_point(&[2.0 + (i % 5) as f64, 2.0 + burst as f64])
                .unwrap();
        }
        if burst == 2 {
            store.update_point(3, &[4.0, 4.0]).unwrap();
            store.delete_point(5).unwrap();
        }
        store.sync().unwrap();
        for _ in 0..20 {
            now += 10;
            adopt_new_links(&server, &mut primary);
            primary.pump(now).unwrap();
            let _ = replica.poll(now);
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    // Chaos over: heal partitions/latency and let the link settle. The
    // one-shot byte faults have either fired by now or never will.
    ctl.reset_all();
    ctl.set_partitioned(false);
    ctl.set_delay_ms(0);
    let target = store.wal_health().appended_lsn;
    for _ in 0..5000 {
        now += 10;
        adopt_new_links(&server, &mut primary);
        primary.pump(now).unwrap();
        let _ = replica.poll(now);
        if replica.is_seeded() && replica.applied_lsn() >= target {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }

    // The contract: heal bit-identical or fail loudly typed. A replica
    // that diverged says so with provenance; one that silently served
    // wrong answers would fail the probe comparison below.
    assert_eq!(
        replica.divergence(),
        None,
        "{label}: chaos must heal, not diverge"
    );
    assert!(
        replica.is_seeded() && replica.applied_lsn() >= target,
        "{label}: replica failed to heal (applied {} of {target})",
        replica.applied_lsn(),
    );
    let read = replica
        .follower_read(ReadConsistency::AtLeast(target))
        .unwrap();
    let psnap = store.snapshot();
    for q in probes() {
        assert_eq!(
            read.snapshot.query(&q).unwrap().sorted_ids(),
            psnap.query(&q).unwrap().sorted_ids(),
            "{label}: follower served a wrong answer"
        );
    }
    server.shutdown();
}

/// Sweep one fault kind across the first few downstream chunk indices
/// (the snapshot seed, early frames, heartbeats).
fn sweep(name: &str, fault: ChaosFault) {
    for at_chunk in 0..4u64 {
        run_chaos_scenario(&format!("{name}@chunk{at_chunk}"), |ctl| {
            ctl.arm(at_chunk, fault);
        });
    }
}

#[test]
fn truncated_chunks_heal_by_reconnect() {
    // Tear inside the length prefix / magic, and deeper in the payload.
    sweep("truncate3", ChaosFault::Truncate { keep: 3 });
}

#[test]
fn truncated_payloads_heal_by_reconnect() {
    sweep("truncate20", ChaosFault::Truncate { keep: 20 });
}

#[test]
fn connection_resets_heal_by_reconnect() {
    sweep("reset", ChaosFault::Reset);
}

#[test]
fn duplicated_bytes_are_detected_or_deduplicated() {
    sweep("duplicate", ChaosFault::Duplicate);
}

#[test]
fn silent_byte_loss_desyncs_loudly_and_heals() {
    sweep("drop", ChaosFault::Drop);
}

#[test]
fn partition_stalls_then_heals_without_reseed_storm() {
    run_chaos_scenario("partition", |ctl| ctl.set_partitioned(true));
}

#[test]
fn injected_latency_slows_but_never_diverges() {
    run_chaos_scenario("delay", |ctl| ctl.set_delay_ms(5));
}

// ---------------------------------------------------------------------------
// Kill-the-primary sweep: quorum acks survive failover over the network.
// ---------------------------------------------------------------------------

/// Writes per scenario; the sweep kills the primary after each index.
const KILL_WRITES: usize = 6;

/// One replication turn: adopt fresh ship connections, pump the
/// primary, poll every replica, breathe so the relay threads run.
fn turn(
    server: &ServerHandle,
    primary: &mut Primary<VecStore>,
    replicas: &mut [Replica<VecStore>],
    now: &mut u64,
) {
    *now += 10;
    adopt_new_links(server, primary);
    primary.pump(*now).unwrap();
    for r in replicas.iter_mut() {
        let _ = r.poll(*now);
    }
    std::thread::sleep(Duration::from_millis(1));
}

/// Run quorum-acked traffic over TCP, kill the primary after write
/// `kill_after` confirms, promote the best follower, and verify the
/// quorum contract: confirmed writes all present, surviving follower
/// heals bit-identical against the new primary. An unconfirmed
/// in-flight write may land or be lost — but both nodes must agree.
fn run_kill_scenario(kill_after: usize) {
    let pdir = TempDir::new("kill_p").unwrap();
    let rdir = TempDir::new("kill_r").unwrap();
    let opts = WalOptions::default().fsync(FsyncPolicy::EveryN(4));
    let store = durable_store(pdir.path(), 40);
    let server = Server::start(Arc::clone(&store), ServeConfig::default()).unwrap();
    let proxy = ChaosProxy::start(server.addr()).unwrap();
    let mut primary = Primary::from_shared(Arc::clone(&store), FailoverConfig::default());
    primary.set_ack_policy(AckPolicy::Quorum(1));

    let mut replicas: Vec<Replica<VecStore>> = (0..2)
        .map(|i| {
            let link = TcpTransport::new(proxy.addr(), link_opts());
            Replica::new(
                rdir.path().join(format!("r{i}")),
                i,
                Box::new(link.clone()),
                Box::new(link),
                opts,
                FailoverConfig::default(),
            )
        })
        .collect();

    let mut now = 0u64;

    // Seed both replicas before traffic starts.
    for _ in 0..5000 {
        turn(&server, &mut primary, &mut replicas, &mut now);
        if replicas.iter().all(Replica::is_seeded) {
            break;
        }
    }
    assert!(
        replicas.iter().all(Replica::is_seeded),
        "kill@{kill_after}: replicas failed to seed over TCP"
    );

    // Quorum-acked writes, killing the primary after index `kill_after`.
    let mut confirmed_ids = Vec::new();
    for j in 0..KILL_WRITES {
        let id = store.insert_point(&[3.0 + j as f64, 3.0]).unwrap();
        store.sync().unwrap();
        let lsn = store.wal_health().appended_lsn;
        let mut ok = false;
        for _ in 0..5000 {
            turn(&server, &mut primary, &mut replicas, &mut now);
            if primary.quorum_confirmed(lsn) {
                ok = true;
                break;
            }
        }
        assert!(ok, "kill@{kill_after}: write {j} never quorum-confirmed");
        confirmed_ids.push(id);
        if j == kill_after {
            break;
        }
    }
    // One more write left in flight — applied locally, never confirmed.
    store.insert_point(&[20.0, 20.0]).unwrap();
    store.sync().unwrap();

    // Chaos-kill: the proxy dies, the listener shuts down, the primary
    // object is dropped. The replicas' transports keep redialing a dead
    // address under backoff.
    drop(primary);
    drop(proxy);
    server.shutdown();

    // Elect and promote the best follower; serve it on a fresh listener.
    let winner = elect(&replicas).expect("a seeded, non-diverged follower to elect");
    let promoted = replicas
        .swap_remove(winner)
        .promote(ConcurrencyConfig::default())
        .unwrap();
    let new_store = promoted.shared_store();
    let new_server = Server::start(Arc::clone(&new_store), ServeConfig::default()).unwrap();
    let mut new_primary = promoted;
    let mut follower = replicas.pop().unwrap();
    let link = TcpTransport::new(new_server.addr(), link_opts());
    follower.rewire(Box::new(link.clone()), Box::new(link));

    // Every quorum-confirmed write survived the failover.
    let all = catch_all();
    let ids = new_store.snapshot().query(&all).unwrap().sorted_ids();
    for id in &confirmed_ids {
        assert!(
            ids.binary_search(id).is_ok(),
            "kill@{kill_after}: quorum-acked id {id} lost in failover"
        );
    }

    // The surviving follower re-wires over TCP and heals bit-identical.
    let mut follower_vec = vec![follower];
    for _ in 0..5000 {
        turn(&new_server, &mut new_primary, &mut follower_vec, &mut now);
        let target = new_store.wal_health().appended_lsn;
        let f = &follower_vec[0];
        if f.is_seeded() && f.applied_lsn() >= target {
            break;
        }
    }
    let follower = &follower_vec[0];
    assert_eq!(
        follower.divergence(),
        None,
        "kill@{kill_after}: follower diverged after failover"
    );
    let target = new_store.wal_health().appended_lsn;
    assert!(
        follower.is_seeded() && follower.applied_lsn() >= target,
        "kill@{kill_after}: follower failed to heal against the new primary"
    );
    let read = follower
        .follower_read(ReadConsistency::AtLeast(target))
        .unwrap();
    let psnap = new_store.snapshot();
    for q in probes().into_iter().chain([all]) {
        assert_eq!(
            read.snapshot.query(&q).unwrap().sorted_ids(),
            psnap.query(&q).unwrap().sorted_ids(),
            "kill@{kill_after}: follower and new primary disagree"
        );
    }
    new_server.shutdown();
}

#[test]
fn quorum_acked_writes_survive_primary_kill_at_every_index() {
    for kill_after in 0..KILL_WRITES {
        run_kill_scenario(kill_after);
    }
}
