//! End-to-end serving tests over real loopback sockets: bit-identity
//! with direct engine calls, deadline → partial propagation, typed
//! admission rejections, both wire surfaces, and durable-engine metrics.

use planar_core::{
    Cmp, ConcurrencyConfig, ConcurrentDurableShardedIndexSet, ConcurrentShardedIndexSet,
    ExecutionConfig, FeatureTable, FsyncPolicy, IndexConfig, InequalityQuery, ParameterDomain,
    ShardConfig, ShardedIndexSet, TempDir, TopKQuery, VecStore, WalOptions,
};
use planar_serve::json::Json;
use planar_serve::{
    error_code, AdmissionConfig, BatchPolicy, Client, Request, Response, ServeConfig, Server,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// A deterministic sharded engine: `n` rows in 2-d, 3 shards.
fn build_sharded(n: usize) -> ShardedIndexSet<VecStore> {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| vec![1.0 + (i % 17) as f64 * 0.5, 1.0 + (i % 23) as f64 * 0.25])
        .collect();
    let table = FeatureTable::from_rows(2, rows).unwrap();
    let domain = ParameterDomain::uniform_continuous(2, 0.25, 4.0).unwrap();
    ShardedIndexSet::build(
        table,
        domain,
        IndexConfig::with_budget(4),
        ShardConfig::round_robin(3),
    )
    .unwrap()
}

fn engine(n: usize) -> Arc<ConcurrentShardedIndexSet<VecStore>> {
    Arc::new(ConcurrentShardedIndexSet::new(
        build_sharded(n),
        ConcurrencyConfig::default(),
    ))
}

fn query(b: f64) -> InequalityQuery {
    InequalityQuery::new(vec![1.0, 1.5], Cmp::Leq, b).unwrap()
}

#[test]
fn binary_loopback_is_bit_identical_to_direct_calls() {
    let eng = engine(500);
    let server = Server::start(Arc::clone(&eng), ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let thresholds = [4.0, 7.5, 11.0, 20.0];
    let direct: Vec<Vec<u32>> = {
        let qs: Vec<InequalityQuery> = thresholds.iter().map(|&b| query(b)).collect();
        eng.snapshot()
            .query_batch_isolated(&qs, &ExecutionConfig::default())
            .into_iter()
            .map(|r| r.unwrap().matches)
            .collect()
    };
    for (&b, want) in thresholds.iter().zip(&direct) {
        match client.query(&[1.0, 1.5], Cmp::Leq, b).unwrap() {
            Response::Matches { ids, provenance } => {
                assert_eq!(&ids, want, "served answer must match direct call at b={b}");
                assert!(!provenance.partial);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    // Top-k: distances must be bit-exact, not just approximately equal.
    let tq = TopKQuery::new(query(9.0), 5).unwrap();
    let direct_nn = eng
        .snapshot()
        .top_k_batch_isolated(std::slice::from_ref(&tq), &ExecutionConfig::default())
        .remove(0)
        .unwrap()
        .neighbors;
    match client.top_k(&[1.0, 1.5], Cmp::Leq, 9.0, 5).unwrap() {
        Response::Neighbors { neighbors, .. } => {
            assert_eq!(neighbors.len(), direct_nn.len());
            for ((id, d), (wid, wd)) in neighbors.iter().zip(&direct_nn) {
                assert_eq!(id, wid);
                assert_eq!(d.to_bits(), wd.to_bits(), "distance must be bit-exact");
            }
        }
        other => panic!("unexpected response {other:?}"),
    }
    server.shutdown();
}

#[test]
fn concurrent_clients_coalesce_and_stay_correct() {
    let eng = engine(400);
    let clients = 8;
    let per_client = 6;
    let cfg = ServeConfig {
        batch: BatchPolicy {
            max_batch: clients,
            max_wait: Duration::from_millis(200),
        },
        ..ServeConfig::default()
    };
    let server = Server::start(Arc::clone(&eng), cfg).unwrap();
    let addr = server.addr();

    // Ground truth per threshold, computed directly.
    let direct: Vec<Vec<u32>> = (0..per_client)
        .map(|r| {
            let q = query(4.0 + r as f64);
            eng.snapshot()
                .query_batch_isolated(std::slice::from_ref(&q), &ExecutionConfig::default())
                .remove(0)
                .unwrap()
                .matches
        })
        .collect();

    let barrier = Arc::new(Barrier::new(clients));
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let direct = direct.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                barrier.wait();
                for (r, want) in direct.iter().enumerate() {
                    match client.query(&[1.0, 1.5], Cmp::Leq, 4.0 + r as f64).unwrap() {
                        Response::Matches { ids, .. } => assert_eq!(&ids, want),
                        other => panic!("unexpected response {other:?}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let metrics = server.metrics();
    let accepted = metrics.accepted.load(std::sync::atomic::Ordering::Relaxed);
    let batches = metrics.batches.load(std::sync::atomic::Ordering::Relaxed);
    let max_batch = metrics.max_batch.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(accepted, (clients * per_client) as u64);
    assert!(batches > 0);
    assert!(
        max_batch >= 2,
        "concurrent clients should coalesce (max batch {max_batch})"
    );
    server.shutdown();
}

#[test]
fn deadlines_propagate_to_partial_end_to_end() {
    let eng = engine(2000);
    let clients = 4;
    let cfg = ServeConfig {
        batch: BatchPolicy {
            max_batch: clients,
            max_wait: Duration::from_millis(500),
        },
        ..ServeConfig::default()
    };
    let server = Server::start(Arc::clone(&eng), cfg).unwrap();
    let addr = server.addr();

    // Fire a coalesced batch whose every member carries a ~zero deadline:
    // the batch budget expires before the engine can start most slots.
    let barrier = Arc::new(Barrier::new(clients));
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                barrier.wait();
                match client
                    .query_as(
                        0,
                        Some(Duration::from_micros(1)),
                        &[1.0, 1.5],
                        Cmp::Leq,
                        20.0,
                    )
                    .unwrap()
                {
                    Response::Matches { ids, provenance } => (ids, provenance),
                    other => panic!("unexpected response {other:?}"),
                }
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let served_partials = results.iter().filter(|(_, p)| p.partial).count();
    assert!(
        served_partials >= 1,
        "a ~zero deadline through the server must yield partial answers"
    );
    for (ids, p) in &results {
        if p.partial {
            assert!(ids.is_empty(), "a deadline placeholder carries no matches");
        }
    }

    // The same contract holds on a direct batch call with the same
    // budget — the server adds transport, not semantics.
    let qs: Vec<InequalityQuery> = (0..clients).map(|_| query(20.0)).collect();
    let direct = eng.snapshot().query_batch_isolated(
        &qs,
        &ExecutionConfig::default().with_deadline(Duration::from_micros(1)),
    );
    let direct_partials = direct
        .iter()
        .filter(|r| {
            r.as_ref().is_ok_and(|o| {
                o.served_by
                    .iter()
                    .any(|sb| matches!(sb, planar_core::ServedBy::Partial { .. }))
            })
        })
        .count();
    assert!(
        direct_partials >= 1,
        "direct calls under the same budget also go partial"
    );

    // Without deadlines the same queries come back complete and
    // identical to the direct answers.
    let mut client = Client::connect(addr).unwrap();
    let want = eng
        .snapshot()
        .query_batch_isolated(&qs[..1], &ExecutionConfig::default())
        .remove(0)
        .unwrap()
        .matches;
    match client.query(&[1.0, 1.5], Cmp::Leq, 20.0).unwrap() {
        Response::Matches { ids, provenance } => {
            assert!(!provenance.partial);
            assert_eq!(ids, want);
        }
        other => panic!("unexpected response {other:?}"),
    }

    let partial_metric = server
        .metrics()
        .partials
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(partial_metric >= served_partials as u64);
    server.shutdown();
}

#[test]
fn tenant_quota_yields_typed_retry() {
    let eng = engine(100);
    let cfg = ServeConfig {
        admission: AdmissionConfig {
            tenant_rate: 0.001, // effectively no refill during the test
            tenant_burst: 2.0,
            ..AdmissionConfig::default()
        },
        ..ServeConfig::default()
    };
    let server = Server::start(eng, cfg).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    for _ in 0..2 {
        match client
            .query_as(5, None, &[1.0, 1.5], Cmp::Leq, 6.0)
            .unwrap()
        {
            Response::Matches { .. } => {}
            other => panic!("burst should be admitted, got {other:?}"),
        }
    }
    match client
        .query_as(5, None, &[1.0, 1.5], Cmp::Leq, 6.0)
        .unwrap()
    {
        Response::Retry { retry_after_us } => assert!(retry_after_us >= 1),
        other => panic!("expected a typed Retry, got {other:?}"),
    }
    // Another tenant is unaffected, on the same connection.
    match client
        .query_as(6, None, &[1.0, 1.5], Cmp::Leq, 6.0)
        .unwrap()
    {
        Response::Matches { .. } => {}
        other => panic!("tenant 6 has its own bucket, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn full_queue_yields_typed_overload_and_connection_survives() {
    let eng = engine(100);
    let cfg = ServeConfig {
        admission: AdmissionConfig {
            max_queue: 0, // every enqueue rejected: deterministic overload
            ..AdmissionConfig::default()
        },
        ..ServeConfig::default()
    };
    let server = Server::start(eng, cfg).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    match client.query(&[1.0, 1.5], Cmp::Leq, 6.0).unwrap() {
        Response::Overload { .. } => {}
        other => panic!("expected a typed Overload, got {other:?}"),
    }
    // The connection is still usable — overload is a response, not a hang
    // or a dropped socket.
    let json = client.metrics().unwrap();
    let doc = Json::parse(&json).unwrap();
    let rejected = doc
        .get("server")
        .and_then(|s| s.get("rejected_overload"))
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(rejected, 1);
    server.shutdown();
}

#[test]
fn invalid_query_yields_typed_error() {
    let eng = engine(100);
    let server = Server::start(eng, ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    // NaN coefficients fail the engine's typed validation.
    match client.query(&[f64::NAN, 1.0], Cmp::Leq, 1.0).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, error_code::INVALID_QUERY),
        other => panic!("expected a typed error, got {other:?}"),
    }
    // Unknown frame kinds get a MALFORMED error and the connection
    // stays framed (CRC was valid, so framing is intact).
    match client.call(&Request::Metrics) {
        Ok(Response::Metrics { .. }) => {}
        other => panic!("connection should survive, got {other:?}"),
    }
    server.shutdown();
}

/// One blocking HTTP exchange over a fresh connection.
fn http_roundtrip(addr: std::net::SocketAddr, request: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8(raw).unwrap();
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .unwrap();
    let body = text
        .split("\r\n\r\n")
        .nth(1)
        .unwrap_or_default()
        .to_string();
    (status, body)
}

#[test]
fn http_surface_matches_binary_answers() {
    let eng = engine(300);
    let server = Server::start(Arc::clone(&eng), ServeConfig::default()).unwrap();
    let addr = server.addr();

    let want = eng
        .snapshot()
        .query_batch_isolated(
            std::slice::from_ref(&query(8.0)),
            &ExecutionConfig::default(),
        )
        .remove(0)
        .unwrap()
        .matches;

    let body = r#"{"a": [1.0, 1.5], "cmp": "leq", "b": 8.0}"#;
    let req = format!(
        "POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let (status, resp_body) = http_roundtrip(addr, &req);
    assert_eq!(status, 200, "body: {resp_body}");
    let doc = Json::parse(&resp_body).unwrap();
    let ids: Vec<u32> = doc
        .get("ids")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|v| v.as_u64().unwrap() as u32)
        .collect();
    assert_eq!(ids, want, "HTTP answers must match direct calls");
    assert_eq!(doc.get("partial"), Some(&Json::Bool(false)));

    // Top-k over HTTP.
    let body = r#"{"a": [1.0, 1.5], "cmp": "leq", "b": 8.0, "k": 3}"#;
    let req = format!(
        "POST /topk HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let (status, resp_body) = http_roundtrip(addr, &req);
    assert_eq!(status, 200, "body: {resp_body}");
    let doc = Json::parse(&resp_body).unwrap();
    assert_eq!(
        doc.get("neighbors").and_then(Json::as_arr).unwrap().len(),
        3
    );

    // Metrics scrape: a JSON document with both server and engine blocks.
    let (status, resp_body) = http_roundtrip(
        addr,
        "GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    let doc = Json::parse(&resp_body).unwrap();
    assert!(doc.get("server").and_then(|s| s.get("accepted")).is_some());
    assert!(doc.get("engine").and_then(|e| e.get("count")).is_some());

    // Malformed body → 400 with a typed code; unknown route → 404.
    let req = "POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\nConnection: close\r\n\r\n{]";
    let (status, resp_body) = http_roundtrip(addr, req);
    assert_eq!(status, 400, "body: {resp_body}");
    let (status, _) = http_roundtrip(
        addr,
        "GET /nope HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 404);
    server.shutdown();
}

#[test]
fn http_quota_maps_to_429_with_retry_after() {
    let eng = engine(100);
    let cfg = ServeConfig {
        admission: AdmissionConfig {
            tenant_rate: 0.001,
            tenant_burst: 1.0,
            ..AdmissionConfig::default()
        },
        ..ServeConfig::default()
    };
    let server = Server::start(eng, cfg).unwrap();
    let body = r#"{"a": [1.0, 1.5], "cmp": "leq", "b": 6.0, "tenant": 3}"#;
    let req = format!(
        "POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let (status, _) = http_roundtrip(server.addr(), &req);
    assert_eq!(status, 200);
    let (status, resp_body) = http_roundtrip(server.addr(), &req);
    assert_eq!(status, 429, "body: {resp_body}");
    let doc = Json::parse(&resp_body).unwrap();
    assert!(doc.get("retry_after_us").and_then(Json::as_u64).unwrap() >= 1);
    server.shutdown();
}

#[test]
fn durable_engine_serves_and_reports_lifecycle_metrics() {
    let dir = TempDir::new("serve_durable").unwrap();
    let store = ConcurrentDurableShardedIndexSet::create(
        dir.path(),
        build_sharded(200),
        WalOptions::default().fsync(FsyncPolicy::EveryN(4)),
        ConcurrencyConfig::default(),
    )
    .unwrap();
    let eng = Arc::new(store);
    let server = Server::start(Arc::clone(&eng), ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let want = eng
        .snapshot()
        .query_batch_isolated(
            std::slice::from_ref(&query(7.0)),
            &ExecutionConfig::default(),
        )
        .remove(0)
        .unwrap()
        .matches;
    match client.query(&[1.0, 1.5], Cmp::Leq, 7.0).unwrap() {
        Response::Matches { ids, .. } => assert_eq!(ids, want),
        other => panic!("unexpected response {other:?}"),
    }

    // The durable engine's lifecycle hook stamps WAL/epoch state into the
    // scrape: the engine block is the full 40-field snapshot.
    let json = client.metrics().unwrap();
    let doc = Json::parse(&json).unwrap();
    let engine_block = doc.get("engine").expect("engine block present");
    assert!(engine_block.get("count").is_some());
    assert!(engine_block.get("wal_appended_lsn").is_some());
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Replication over the serve listener (PLNRSHP1 sniffing)
// ---------------------------------------------------------------------------

/// Read one HTTP response (status + raw head) off a keep-alive
/// connection, consuming exactly its Content-Length body.
fn read_one_response(stream: &mut TcpStream) -> (u16, String) {
    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "EOF before a full response head");
        raw.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(raw[..head_end].to_vec()).unwrap();
    let status: u16 = head.split_whitespace().nth(1).unwrap().parse().unwrap();
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.trim()
                .eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().unwrap())
        })
        .unwrap_or(0);
    let mut have = raw.len() - head_end - 4;
    while have < content_length {
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "EOF inside a response body");
        have += n;
    }
    (status, head)
}

#[test]
fn replication_queries_and_metrics_share_one_port() {
    use planar_core::{
        FailoverConfig, Primary, ReadConsistency, Replica, TcpLinkOptions, TcpTransport,
    };

    let pdir = TempDir::new("serve_ship_p").unwrap();
    let rdir = TempDir::new("serve_ship_r").unwrap();
    let opts = WalOptions::default().fsync(FsyncPolicy::EveryN(4));
    let store = Arc::new(
        ConcurrentDurableShardedIndexSet::create(
            pdir.path(),
            build_sharded(200),
            opts,
            ConcurrencyConfig::default(),
        )
        .unwrap(),
    );
    let server = Server::start(Arc::clone(&store), ServeConfig::default()).unwrap();
    let mut primary = Primary::from_shared(Arc::clone(&store), FailoverConfig::default());

    // The replica dials the same port every query client uses; the
    // PLNRSHP1 banner routes it to replication.
    let link = TcpTransport::new(server.addr(), TcpLinkOptions::default());
    let mut replica = Replica::<VecStore>::new(
        rdir.path().join("r0"),
        0,
        Box::new(link.clone()),
        Box::new(link),
        opts,
        FailoverConfig::default(),
    );
    let _ = replica.poll(0); // dials and sends the banner
    let ep = server
        .accept_replica(Duration::from_secs(5))
        .expect("ship connection routed to the embedder");
    primary.add_replica_pending(Box::new(ep.clone()), Box::new(ep));

    for _ in 0..40 {
        store.insert_point(&[2.0, 2.0]).unwrap();
    }
    store.sync().unwrap();
    let target = store.wal_health().appended_lsn;
    let mut now = 0u64;
    for _ in 0..5000 {
        now += 10;
        let _ = primary.pump(now);
        let _ = replica.poll(now);
        if replica.is_seeded() && replica.applied_lsn() >= target {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(
        replica.is_seeded() && replica.applied_lsn() >= target,
        "replica must catch up over TCP (applied {} of {})",
        replica.applied_lsn(),
        target
    );

    // Follower answers are bit-identical to the primary's.
    let follower = replica.follower_read(ReadConsistency::Any).unwrap();
    let q = query(8.0);
    assert_eq!(
        follower.snapshot.query(&q).unwrap().sorted_ids(),
        store.snapshot().query(&q).unwrap().sorted_ids(),
        "follower must serve the primary's answers"
    );

    // Query clients still work on the same port, both surfaces.
    let mut client = Client::connect(server.addr()).unwrap();
    match client.query(&[1.0, 1.5], Cmp::Leq, 8.0).unwrap() {
        Response::Matches { .. } => {}
        other => panic!("unexpected response {other:?}"),
    }
    let (status, body) = http_roundtrip(
        server.addr(),
        "GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    let doc = Json::parse(&body).unwrap();
    let ships = doc
        .get("server")
        .and_then(|s| s.get("ship_connections"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(ships >= 1, "metrics must report the replication connection");
    server.shutdown();
}

#[test]
fn shutdown_drains_attached_ship_connection_promptly() {
    let eng = engine(50);
    let server = Server::start(eng, ServeConfig::default()).unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(planar_core::SHIP_MAGIC).unwrap();
    stream.flush().unwrap();
    let ep = server
        .accept_replica(Duration::from_secs(5))
        .expect("ship connection routed");
    drop(ep);

    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let started = std::time::Instant::now();
    server.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "shutdown must not hang on a live replication link"
    );
    // The relay observed shutdown, drained, and closed the socket: the
    // peer sees EOF, not a hang.
    let mut buf = [0u8; 16];
    let n = stream.read(&mut buf).unwrap();
    assert_eq!(n, 0, "server should close the drained ship connection");
}

#[test]
fn http_keepalive_is_bounded_by_request_cap_and_idle_timeout() {
    use std::sync::atomic::Ordering;

    let eng = engine(50);
    let cfg = ServeConfig {
        http_max_requests: 2,
        http_idle_timeout: Duration::from_millis(150),
        ..ServeConfig::default()
    };
    let server = Server::start(eng, cfg).unwrap();
    let metrics = server.metrics();
    let req = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";

    // Request cap: the final allowed response announces the close.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(req.as_bytes()).unwrap();
    let (status, head) = read_one_response(&mut stream);
    assert_eq!(status, 200);
    assert!(
        !head.to_ascii_lowercase().contains("connection: close"),
        "first response keeps the connection alive: {head}"
    );
    stream.write_all(req.as_bytes()).unwrap();
    let (status, head) = read_one_response(&mut stream);
    assert_eq!(status, 200);
    assert!(
        head.to_ascii_lowercase().contains("connection: close"),
        "response at http_max_requests must announce the close: {head}"
    );
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut rest = Vec::new();
    let n = stream.read_to_end(&mut rest).unwrap();
    assert_eq!(n, 0, "connection recycled after the request cap");
    assert_eq!(metrics.http_recycled.load(Ordering::Relaxed), 1);

    // Idle timeout: a keep-alive connection that goes quiet is closed.
    let mut idle = TcpStream::connect(server.addr()).unwrap();
    idle.write_all(req.as_bytes()).unwrap();
    let (status, _) = read_one_response(&mut idle);
    assert_eq!(status, 200);
    idle.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let started = std::time::Instant::now();
    let mut buf = Vec::new();
    let n = idle.read_to_end(&mut buf).unwrap();
    assert_eq!(n, 0, "idle keep-alive connection should be closed");
    assert!(
        started.elapsed() >= Duration::from_millis(100),
        "the idle close should wait out the timeout"
    );
    assert!(metrics.http_idle_closed.load(Ordering::Relaxed) >= 1);
    server.shutdown();
}
