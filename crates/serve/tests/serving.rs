//! End-to-end serving tests over real loopback sockets: bit-identity
//! with direct engine calls, deadline → partial propagation, typed
//! admission rejections, both wire surfaces, and durable-engine metrics.

use planar_core::{
    Cmp, ConcurrencyConfig, ConcurrentDurableShardedIndexSet, ConcurrentShardedIndexSet,
    ExecutionConfig, FeatureTable, FsyncPolicy, IndexConfig, InequalityQuery, ParameterDomain,
    ShardConfig, ShardedIndexSet, TempDir, TopKQuery, VecStore, WalOptions,
};
use planar_serve::json::Json;
use planar_serve::{
    error_code, AdmissionConfig, BatchPolicy, Client, Request, Response, ServeConfig, Server,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// A deterministic sharded engine: `n` rows in 2-d, 3 shards.
fn build_sharded(n: usize) -> ShardedIndexSet<VecStore> {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| vec![1.0 + (i % 17) as f64 * 0.5, 1.0 + (i % 23) as f64 * 0.25])
        .collect();
    let table = FeatureTable::from_rows(2, rows).unwrap();
    let domain = ParameterDomain::uniform_continuous(2, 0.25, 4.0).unwrap();
    ShardedIndexSet::build(
        table,
        domain,
        IndexConfig::with_budget(4),
        ShardConfig::round_robin(3),
    )
    .unwrap()
}

fn engine(n: usize) -> Arc<ConcurrentShardedIndexSet<VecStore>> {
    Arc::new(ConcurrentShardedIndexSet::new(
        build_sharded(n),
        ConcurrencyConfig::default(),
    ))
}

fn query(b: f64) -> InequalityQuery {
    InequalityQuery::new(vec![1.0, 1.5], Cmp::Leq, b).unwrap()
}

#[test]
fn binary_loopback_is_bit_identical_to_direct_calls() {
    let eng = engine(500);
    let server = Server::start(Arc::clone(&eng), ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let thresholds = [4.0, 7.5, 11.0, 20.0];
    let direct: Vec<Vec<u32>> = {
        let qs: Vec<InequalityQuery> = thresholds.iter().map(|&b| query(b)).collect();
        eng.snapshot()
            .query_batch_isolated(&qs, &ExecutionConfig::default())
            .into_iter()
            .map(|r| r.unwrap().matches)
            .collect()
    };
    for (&b, want) in thresholds.iter().zip(&direct) {
        match client.query(&[1.0, 1.5], Cmp::Leq, b).unwrap() {
            Response::Matches { ids, provenance } => {
                assert_eq!(&ids, want, "served answer must match direct call at b={b}");
                assert!(!provenance.partial);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    // Top-k: distances must be bit-exact, not just approximately equal.
    let tq = TopKQuery::new(query(9.0), 5).unwrap();
    let direct_nn = eng
        .snapshot()
        .top_k_batch_isolated(std::slice::from_ref(&tq), &ExecutionConfig::default())
        .remove(0)
        .unwrap()
        .neighbors;
    match client.top_k(&[1.0, 1.5], Cmp::Leq, 9.0, 5).unwrap() {
        Response::Neighbors { neighbors, .. } => {
            assert_eq!(neighbors.len(), direct_nn.len());
            for ((id, d), (wid, wd)) in neighbors.iter().zip(&direct_nn) {
                assert_eq!(id, wid);
                assert_eq!(d.to_bits(), wd.to_bits(), "distance must be bit-exact");
            }
        }
        other => panic!("unexpected response {other:?}"),
    }
    server.shutdown();
}

#[test]
fn concurrent_clients_coalesce_and_stay_correct() {
    let eng = engine(400);
    let clients = 8;
    let per_client = 6;
    let cfg = ServeConfig {
        batch: BatchPolicy {
            max_batch: clients,
            max_wait: Duration::from_millis(200),
        },
        ..ServeConfig::default()
    };
    let server = Server::start(Arc::clone(&eng), cfg).unwrap();
    let addr = server.addr();

    // Ground truth per threshold, computed directly.
    let direct: Vec<Vec<u32>> = (0..per_client)
        .map(|r| {
            let q = query(4.0 + r as f64);
            eng.snapshot()
                .query_batch_isolated(std::slice::from_ref(&q), &ExecutionConfig::default())
                .remove(0)
                .unwrap()
                .matches
        })
        .collect();

    let barrier = Arc::new(Barrier::new(clients));
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let direct = direct.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                barrier.wait();
                for (r, want) in direct.iter().enumerate() {
                    match client.query(&[1.0, 1.5], Cmp::Leq, 4.0 + r as f64).unwrap() {
                        Response::Matches { ids, .. } => assert_eq!(&ids, want),
                        other => panic!("unexpected response {other:?}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let metrics = server.metrics();
    let accepted = metrics.accepted.load(std::sync::atomic::Ordering::Relaxed);
    let batches = metrics.batches.load(std::sync::atomic::Ordering::Relaxed);
    let max_batch = metrics.max_batch.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(accepted, (clients * per_client) as u64);
    assert!(batches > 0);
    assert!(
        max_batch >= 2,
        "concurrent clients should coalesce (max batch {max_batch})"
    );
    server.shutdown();
}

#[test]
fn deadlines_propagate_to_partial_end_to_end() {
    let eng = engine(2000);
    let clients = 4;
    let cfg = ServeConfig {
        batch: BatchPolicy {
            max_batch: clients,
            max_wait: Duration::from_millis(500),
        },
        ..ServeConfig::default()
    };
    let server = Server::start(Arc::clone(&eng), cfg).unwrap();
    let addr = server.addr();

    // Fire a coalesced batch whose every member carries a ~zero deadline:
    // the batch budget expires before the engine can start most slots.
    let barrier = Arc::new(Barrier::new(clients));
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                barrier.wait();
                match client
                    .query_as(
                        0,
                        Some(Duration::from_micros(1)),
                        &[1.0, 1.5],
                        Cmp::Leq,
                        20.0,
                    )
                    .unwrap()
                {
                    Response::Matches { ids, provenance } => (ids, provenance),
                    other => panic!("unexpected response {other:?}"),
                }
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let served_partials = results.iter().filter(|(_, p)| p.partial).count();
    assert!(
        served_partials >= 1,
        "a ~zero deadline through the server must yield partial answers"
    );
    for (ids, p) in &results {
        if p.partial {
            assert!(ids.is_empty(), "a deadline placeholder carries no matches");
        }
    }

    // The same contract holds on a direct batch call with the same
    // budget — the server adds transport, not semantics.
    let qs: Vec<InequalityQuery> = (0..clients).map(|_| query(20.0)).collect();
    let direct = eng.snapshot().query_batch_isolated(
        &qs,
        &ExecutionConfig::default().with_deadline(Duration::from_micros(1)),
    );
    let direct_partials = direct
        .iter()
        .filter(|r| {
            r.as_ref().is_ok_and(|o| {
                o.served_by
                    .iter()
                    .any(|sb| matches!(sb, planar_core::ServedBy::Partial { .. }))
            })
        })
        .count();
    assert!(
        direct_partials >= 1,
        "direct calls under the same budget also go partial"
    );

    // Without deadlines the same queries come back complete and
    // identical to the direct answers.
    let mut client = Client::connect(addr).unwrap();
    let want = eng
        .snapshot()
        .query_batch_isolated(&qs[..1], &ExecutionConfig::default())
        .remove(0)
        .unwrap()
        .matches;
    match client.query(&[1.0, 1.5], Cmp::Leq, 20.0).unwrap() {
        Response::Matches { ids, provenance } => {
            assert!(!provenance.partial);
            assert_eq!(ids, want);
        }
        other => panic!("unexpected response {other:?}"),
    }

    let partial_metric = server
        .metrics()
        .partials
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(partial_metric >= served_partials as u64);
    server.shutdown();
}

#[test]
fn tenant_quota_yields_typed_retry() {
    let eng = engine(100);
    let cfg = ServeConfig {
        admission: AdmissionConfig {
            tenant_rate: 0.001, // effectively no refill during the test
            tenant_burst: 2.0,
            ..AdmissionConfig::default()
        },
        ..ServeConfig::default()
    };
    let server = Server::start(eng, cfg).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    for _ in 0..2 {
        match client
            .query_as(5, None, &[1.0, 1.5], Cmp::Leq, 6.0)
            .unwrap()
        {
            Response::Matches { .. } => {}
            other => panic!("burst should be admitted, got {other:?}"),
        }
    }
    match client
        .query_as(5, None, &[1.0, 1.5], Cmp::Leq, 6.0)
        .unwrap()
    {
        Response::Retry { retry_after_us } => assert!(retry_after_us >= 1),
        other => panic!("expected a typed Retry, got {other:?}"),
    }
    // Another tenant is unaffected, on the same connection.
    match client
        .query_as(6, None, &[1.0, 1.5], Cmp::Leq, 6.0)
        .unwrap()
    {
        Response::Matches { .. } => {}
        other => panic!("tenant 6 has its own bucket, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn full_queue_yields_typed_overload_and_connection_survives() {
    let eng = engine(100);
    let cfg = ServeConfig {
        admission: AdmissionConfig {
            max_queue: 0, // every enqueue rejected: deterministic overload
            ..AdmissionConfig::default()
        },
        ..ServeConfig::default()
    };
    let server = Server::start(eng, cfg).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    match client.query(&[1.0, 1.5], Cmp::Leq, 6.0).unwrap() {
        Response::Overload { .. } => {}
        other => panic!("expected a typed Overload, got {other:?}"),
    }
    // The connection is still usable — overload is a response, not a hang
    // or a dropped socket.
    let json = client.metrics().unwrap();
    let doc = Json::parse(&json).unwrap();
    let rejected = doc
        .get("server")
        .and_then(|s| s.get("rejected_overload"))
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(rejected, 1);
    server.shutdown();
}

#[test]
fn invalid_query_yields_typed_error() {
    let eng = engine(100);
    let server = Server::start(eng, ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    // NaN coefficients fail the engine's typed validation.
    match client.query(&[f64::NAN, 1.0], Cmp::Leq, 1.0).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, error_code::INVALID_QUERY),
        other => panic!("expected a typed error, got {other:?}"),
    }
    // Unknown frame kinds get a MALFORMED error and the connection
    // stays framed (CRC was valid, so framing is intact).
    match client.call(&Request::Metrics) {
        Ok(Response::Metrics { .. }) => {}
        other => panic!("connection should survive, got {other:?}"),
    }
    server.shutdown();
}

/// One blocking HTTP exchange over a fresh connection.
fn http_roundtrip(addr: std::net::SocketAddr, request: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8(raw).unwrap();
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .unwrap();
    let body = text
        .split("\r\n\r\n")
        .nth(1)
        .unwrap_or_default()
        .to_string();
    (status, body)
}

#[test]
fn http_surface_matches_binary_answers() {
    let eng = engine(300);
    let server = Server::start(Arc::clone(&eng), ServeConfig::default()).unwrap();
    let addr = server.addr();

    let want = eng
        .snapshot()
        .query_batch_isolated(
            std::slice::from_ref(&query(8.0)),
            &ExecutionConfig::default(),
        )
        .remove(0)
        .unwrap()
        .matches;

    let body = r#"{"a": [1.0, 1.5], "cmp": "leq", "b": 8.0}"#;
    let req = format!(
        "POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let (status, resp_body) = http_roundtrip(addr, &req);
    assert_eq!(status, 200, "body: {resp_body}");
    let doc = Json::parse(&resp_body).unwrap();
    let ids: Vec<u32> = doc
        .get("ids")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|v| v.as_u64().unwrap() as u32)
        .collect();
    assert_eq!(ids, want, "HTTP answers must match direct calls");
    assert_eq!(doc.get("partial"), Some(&Json::Bool(false)));

    // Top-k over HTTP.
    let body = r#"{"a": [1.0, 1.5], "cmp": "leq", "b": 8.0, "k": 3}"#;
    let req = format!(
        "POST /topk HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let (status, resp_body) = http_roundtrip(addr, &req);
    assert_eq!(status, 200, "body: {resp_body}");
    let doc = Json::parse(&resp_body).unwrap();
    assert_eq!(
        doc.get("neighbors").and_then(Json::as_arr).unwrap().len(),
        3
    );

    // Metrics scrape: a JSON document with both server and engine blocks.
    let (status, resp_body) = http_roundtrip(
        addr,
        "GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    let doc = Json::parse(&resp_body).unwrap();
    assert!(doc.get("server").and_then(|s| s.get("accepted")).is_some());
    assert!(doc.get("engine").and_then(|e| e.get("count")).is_some());

    // Malformed body → 400 with a typed code; unknown route → 404.
    let req = "POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\nConnection: close\r\n\r\n{]";
    let (status, resp_body) = http_roundtrip(addr, req);
    assert_eq!(status, 400, "body: {resp_body}");
    let (status, _) = http_roundtrip(
        addr,
        "GET /nope HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 404);
    server.shutdown();
}

#[test]
fn http_quota_maps_to_429_with_retry_after() {
    let eng = engine(100);
    let cfg = ServeConfig {
        admission: AdmissionConfig {
            tenant_rate: 0.001,
            tenant_burst: 1.0,
            ..AdmissionConfig::default()
        },
        ..ServeConfig::default()
    };
    let server = Server::start(eng, cfg).unwrap();
    let body = r#"{"a": [1.0, 1.5], "cmp": "leq", "b": 6.0, "tenant": 3}"#;
    let req = format!(
        "POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let (status, _) = http_roundtrip(server.addr(), &req);
    assert_eq!(status, 200);
    let (status, resp_body) = http_roundtrip(server.addr(), &req);
    assert_eq!(status, 429, "body: {resp_body}");
    let doc = Json::parse(&resp_body).unwrap();
    assert!(doc.get("retry_after_us").and_then(Json::as_u64).unwrap() >= 1);
    server.shutdown();
}

#[test]
fn durable_engine_serves_and_reports_lifecycle_metrics() {
    let dir = TempDir::new("serve_durable").unwrap();
    let store = ConcurrentDurableShardedIndexSet::create(
        dir.path(),
        build_sharded(200),
        WalOptions::default().fsync(FsyncPolicy::EveryN(4)),
        ConcurrencyConfig::default(),
    )
    .unwrap();
    let eng = Arc::new(store);
    let server = Server::start(Arc::clone(&eng), ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let want = eng
        .snapshot()
        .query_batch_isolated(
            std::slice::from_ref(&query(7.0)),
            &ExecutionConfig::default(),
        )
        .remove(0)
        .unwrap()
        .matches;
    match client.query(&[1.0, 1.5], Cmp::Leq, 7.0).unwrap() {
        Response::Matches { ids, .. } => assert_eq!(ids, want),
        other => panic!("unexpected response {other:?}"),
    }

    // The durable engine's lifecycle hook stamps WAL/epoch state into the
    // scrape: the engine block is the full 40-field snapshot.
    let json = client.metrics().unwrap();
    let doc = Json::parse(&json).unwrap();
    let engine_block = doc.get("engine").expect("engine block present");
    assert!(engine_block.get("count").is_some());
    assert!(engine_block.get("wal_appended_lsn").is_some());
    server.shutdown();
}
