//! # planar-serve — a network front-end for the planar index
//!
//! A std-only, long-running query service wrapping the concurrent engine
//! ([`planar_core::ConcurrentShardedIndexSet`] or its durable sibling):
//! thread-per-connection on [`std::net::TcpListener`], one port, three
//! wire surfaces sniffed from the first eight bytes —
//!
//! * the compact [`wire`] binary protocol (`PLNRQRY1` preamble, CRC-64
//!   sealed frames via the shared [`planar_core::frame`] helpers);
//! * a minimal [`http`] JSON surface (`GET /metrics`, `POST /query`,
//!   `POST /topk`);
//! * the `PLNRSHP1` replication ship protocol ([`planar_core::SHIP_MAGIC`]
//!   banner): the connection becomes a [`planar_core::ShipEndpoint`] the
//!   embedding process attaches to its [`planar_core::Primary`] (or
//!   [`planar_core::Replica`]) via [`ServerHandle::accept_replica`], so
//!   queries, metrics, and replication share one port.
//!
//! The performance core is the [`batcher`]: concurrent clients' decoded
//! requests coalesce into `query_batch` / `top_k_batch` calls against a
//! single epoch snapshot, recovering the batch-execution amortization the
//! engine already measures offline. The batch-close policy adapts to the
//! observed arrival rate — closing early when traffic is sparse (no added
//! latency), filling deeper as load rises (more amortization exactly when
//! it pays). Per-request deadlines ride into
//! [`planar_core::ExecutionConfig::with_deadline`], so the engine's
//! partial-answer contract ([`planar_core::ServedBy::Partial`]) reaches
//! the client as a `partial` provenance flag instead of a timeout.
//!
//! Overload is governed by [`admit`]: a bounded request queue (typed
//! `Overload` rejections) and per-tenant token quotas (typed `Retry` with
//! a backoff hint) — the service degrades to explicit rejections, never
//! to unbounded queues or hangs.
//!
//! ```no_run
//! use planar_core::{
//!     Cmp, ConcurrencyConfig, ConcurrentShardedIndexSet, FeatureTable, IndexConfig,
//!     ParameterDomain, ShardConfig, ShardedIndexSet, VecStore,
//! };
//! use planar_serve::{Client, Response, ServeConfig, Server};
//! use std::sync::Arc;
//!
//! let table = FeatureTable::from_rows(2, vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
//! let domain = ParameterDomain::uniform_continuous(2, 0.5, 2.0).unwrap();
//! let set = ShardedIndexSet::<VecStore>::build(
//!     table, domain, IndexConfig::with_budget(3), ShardConfig::round_robin(1),
//! ).unwrap();
//! let engine = Arc::new(ConcurrentShardedIndexSet::new(set, ConcurrencyConfig::default()));
//! let server = Server::start(engine, ServeConfig::default()).unwrap();
//!
//! let mut client = Client::connect(server.addr()).unwrap();
//! match client.query(&[1.0, 1.0], Cmp::Leq, 5.0).unwrap() {
//!     Response::Matches { ids, .. } => println!("{ids:?}"),
//!     other => panic!("{other:?}"),
//! }
//! server.shutdown();
//! ```

pub mod admit;
pub mod batcher;
pub mod client;
mod http;
pub mod json;
pub mod metrics;
pub mod wire;

pub use admit::{Admission, AdmissionConfig};
pub use batcher::{BatchPolicy, MicroBatcher, Work};
pub use client::Client;
pub use metrics::{LatencyHistogram, ServerMetrics};
pub use wire::{error_code, Provenance, Request, Response};

use planar_core::{
    endpoint_pair, ConcurrentDurableShardedIndexSet, ConcurrentShardedIndexSet, ExecutionConfig,
    InequalityQuery, ShardedIndexSet, ShipEndpoint, ShipEndpointDriver, Snapshot, StatsAggregator,
    TopKQuery, VecStore, SHIP_MAGIC,
};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poll interval for shutdown checks on idle connections.
const IDLE_POLL: Duration = Duration::from_millis(50);
/// Budget for reading the rest of a frame once its first byte arrived.
const FRAME_READ_TIMEOUT: Duration = Duration::from_secs(2);

/// What the server needs from an engine: epoch-snapshot reads plus an
/// optional hook to stamp lifecycle state (WAL, epochs, group commit)
/// into the metrics aggregator at scrape time.
pub trait Engine: Send + Sync + 'static {
    /// Pin the current epoch for one coalesced batch.
    fn snapshot(&self) -> Snapshot<ShardedIndexSet<VecStore>>;
    /// Fold engine-lifecycle state into `agg` (no-op by default).
    fn record_lifecycle(&self, _agg: &mut StatsAggregator) {}
}

impl Engine for ConcurrentShardedIndexSet<VecStore> {
    fn snapshot(&self) -> Snapshot<ShardedIndexSet<VecStore>> {
        ConcurrentShardedIndexSet::snapshot(self)
    }
}

impl Engine for ConcurrentDurableShardedIndexSet<VecStore> {
    fn snapshot(&self) -> Snapshot<ShardedIndexSet<VecStore>> {
        ConcurrentDurableShardedIndexSet::snapshot(self)
    }

    fn record_lifecycle(&self, agg: &mut StatsAggregator) {
        agg.record_durable_sharded(self);
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Micro-batcher close policy.
    pub batch: BatchPolicy,
    /// Admission control (queue bound, connection cap, tenant quotas).
    pub admission: AdmissionConfig,
    /// Execution configuration for coalesced batches (threads etc.);
    /// per-request deadlines are layered on top per batch.
    pub exec: ExecutionConfig,
    /// Dispatcher threads draining the batcher queue. One is right for
    /// almost everything — the engine parallelizes inside a batch.
    pub dispatchers: usize,
    /// Most requests served on one HTTP keep-alive connection before the
    /// server answers with `Connection: close` and recycles it — bounds
    /// how long one client can pin a connection slot.
    pub http_max_requests: usize,
    /// How long an HTTP keep-alive connection may sit idle between
    /// requests before the server closes it.
    pub http_idle_timeout: Duration,
    /// Largest framed ship message accepted on a replication connection.
    /// A length above this is stream desync: the connection is closed
    /// (the dialing [`planar_core::TcpTransport`] reconnects and heals).
    pub ship_max_message: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            batch: BatchPolicy::default(),
            admission: AdmissionConfig::default(),
            exec: ExecutionConfig::default(),
            dispatchers: 1,
            http_max_requests: 1024,
            http_idle_timeout: Duration::from_secs(30),
            ship_max_message: 1 << 30,
        }
    }
}

/// Shared server state (batcher, admission, metrics, shutdown flag).
pub(crate) struct Inner<E: Engine> {
    pub(crate) batcher: MicroBatcher<E>,
    pub(crate) admission: Admission,
    pub(crate) metrics: Arc<ServerMetrics>,
    pub(crate) shutdown: AtomicBool,
    pub(crate) active: AtomicUsize,
    pub(crate) http_max_requests: usize,
    pub(crate) http_idle_timeout: Duration,
    ship_max_message: usize,
    /// Replication endpoints sniffed off the listener, waiting for the
    /// embedding process to claim them ([`ServerHandle::accept_replica`]).
    ships: Mutex<VecDeque<ShipEndpoint>>,
    /// Live ship-connection drivers: closed on shutdown so their relay
    /// loops drain and exit instead of waiting out a dead socket.
    ship_drivers: Mutex<Vec<ShipEndpointDriver>>,
}

/// Decode-independent request handling shared by both wire surfaces:
/// admission, query construction, enqueue, response.
pub(crate) fn process<E: Engine>(inner: &Inner<E>, req: Request) -> Response {
    let (work, tenant, deadline_us) = match req {
        Request::Metrics => {
            return Response::Metrics {
                json: inner.batcher.metrics_json(),
            }
        }
        Request::Query {
            tenant,
            deadline_us,
            a,
            cmp,
            b,
        } => match InequalityQuery::new(a, cmp, b) {
            Ok(q) => (Work::Query(q), tenant, deadline_us),
            Err(e) => return batcher::error_response(&e),
        },
        Request::TopK {
            tenant,
            deadline_us,
            a,
            cmp,
            b,
            k,
        } => {
            let q = InequalityQuery::new(a, cmp, b).and_then(|q| TopKQuery::new(q, k as usize));
            match q {
                Ok(q) => (Work::TopK(q), tenant, deadline_us),
                Err(e) => return batcher::error_response(&e),
            }
        }
    };

    if let Err(backoff) = inner.admission.admit(tenant) {
        inner.metrics.rejected_quota.fetch_add(1, Relaxed);
        return Response::Retry {
            retry_after_us: (backoff.as_micros().min(u32::MAX as u128) as u32).max(1),
        };
    }
    let deadline = (deadline_us > 0).then(|| Duration::from_micros(deadline_us as u64));
    match inner.batcher.enqueue(work, deadline) {
        Ok(rx) => {
            inner.metrics.accepted.fetch_add(1, Relaxed);
            match rx.recv() {
                Ok(resp) => resp,
                Err(_) => Response::Error {
                    code: error_code::INTERNAL,
                    message: "dispatcher exited before answering".to_string(),
                },
            }
        }
        Err(depth) => {
            inner.metrics.rejected_overload.fetch_add(1, Relaxed);
            Response::Overload {
                queue_depth: depth as u32,
            }
        }
    }
}

/// The server factory. [`Server::start`] binds, spawns the accept loop
/// and dispatcher threads, and returns a [`ServerHandle`].
pub struct Server;

impl Server {
    /// Start serving `engine` per `cfg`. Non-blocking: the accept loop
    /// runs on its own thread.
    pub fn start<E: Engine>(engine: Arc<E>, cfg: ServeConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(ServerMetrics::new());
        let stats = Arc::new(Mutex::new(StatsAggregator::new()));
        let batcher = MicroBatcher::new(
            engine,
            cfg.batch.clone(),
            cfg.exec,
            cfg.admission.max_queue,
            Arc::clone(&metrics),
            stats,
        );
        let inner = Arc::new(Inner {
            batcher,
            admission: Admission::new(cfg.admission),
            metrics,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            http_max_requests: cfg.http_max_requests.max(1),
            http_idle_timeout: cfg.http_idle_timeout,
            ship_max_message: cfg.ship_max_message,
            ships: Mutex::new(VecDeque::new()),
            ship_drivers: Mutex::new(Vec::new()),
        });

        let mut dispatchers = Vec::with_capacity(cfg.dispatchers.max(1));
        for i in 0..cfg.dispatchers.max(1) {
            let b = inner.batcher.clone();
            dispatchers.push(
                std::thread::Builder::new()
                    .name(format!("planar-dispatch-{i}"))
                    .spawn(move || b.run())?,
            );
        }

        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::Builder::new()
            .name("planar-accept".to_string())
            .spawn(move || accept_loop(listener, accept_inner))?;

        Ok(ServerHandle {
            addr,
            control: inner,
            accept: Some(accept),
            dispatchers,
        })
    }
}

/// Handle on a running server: its address, metrics, and shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    control: Arc<dyn Control>,
    accept: Option<JoinHandle<()>>,
    dispatchers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live server counters.
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        self.control.metrics_handle()
    }

    /// Claim the next replication connection sniffed off the listener
    /// (a peer dialed with the `PLNRSHP1` banner), waiting up to
    /// `timeout`. Box clones of the returned endpoint as a link's `down`
    /// and `up` — e.g. `primary.add_replica_pending(...)` for an inbound
    /// replica, or `Replica::rewire` when following an upstream primary
    /// through this port. `None` on timeout or shutdown.
    pub fn accept_replica(&self, timeout: Duration) -> Option<ShipEndpoint> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(ep) = self.control.take_ship() {
                return Some(ep);
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Stop accepting, drain the batcher, join the worker threads.
    /// Connection handler threads observe the flag within one poll
    /// interval and exit on their own.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.control.signal_shutdown() {
            return; // already shut down
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.dispatchers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Object-safe control surface over [`Inner`] so [`ServerHandle`] need
/// not be generic over the engine; the hot path stays monomorphized.
trait Control: Send + Sync {
    /// Shared metrics handle.
    fn metrics_handle(&self) -> Arc<ServerMetrics>;
    /// Set the shutdown flag and wake the dispatchers; returns whether it
    /// was already set.
    fn signal_shutdown(&self) -> bool;
    /// Pop the next unclaimed replication endpoint, if any.
    fn take_ship(&self) -> Option<ShipEndpoint>;
}

impl<E: Engine> Control for Inner<E> {
    fn metrics_handle(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    fn signal_shutdown(&self) -> bool {
        let was = self.shutdown.swap(true, Relaxed);
        if !was {
            self.batcher.shutdown();
            // Close every live ship connection so its relay threads
            // drain queued outbound messages and exit within one poll
            // interval — a long-lived replication link must not pin
            // shutdown the way it pins a connection slot.
            for driver in self
                .ship_drivers
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .drain(..)
            {
                driver.close();
            }
        }
        was
    }

    fn take_ship(&self) -> Option<ShipEndpoint> {
        self.ships
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
    }
}

fn accept_loop<E: Engine>(listener: TcpListener, inner: Arc<Inner<E>>) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(s) => s,
            Err(_) => continue,
        };
        if inner.shutdown.load(Relaxed) {
            return;
        }
        inner.metrics.connections.fetch_add(1, Relaxed);
        let max = inner.admission.config().max_connections;
        let conn_inner = Arc::clone(&inner);
        if inner.active.load(Relaxed) >= max {
            inner.metrics.connections_rejected.fetch_add(1, Relaxed);
            // Sniff briefly so the rejection is typed on either surface.
            let _ = std::thread::Builder::new()
                .name("planar-reject".to_string())
                .spawn(move || reject_conn(stream, &conn_inner));
            continue;
        }
        inner.active.fetch_add(1, Relaxed);
        let _ = std::thread::Builder::new()
            .name("planar-conn".to_string())
            .spawn(move || {
                let _ = handle_conn(stream, &conn_inner);
                conn_inner.active.fetch_sub(1, Relaxed);
            });
    }
}

/// Tell an over-cap connection it is rejected, on whichever protocol it
/// speaks, then close it.
fn reject_conn<E: Engine>(mut stream: TcpStream, inner: &Inner<E>) {
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let Ok(Some(preamble)) = read_preamble(&mut stream, inner) else {
        return;
    };
    let depth = inner.batcher.depth() as u32;
    if &preamble == SHIP_MAGIC {
        // A replication peer over the connection cap: closing without a
        // banner response makes its TcpTransport back off and redial.
    } else if &preamble == wire::MAGIC {
        let frame = wire::encode_response(&Response::Overload { queue_depth: depth });
        let _ = stream.write_all(&frame);
    } else {
        let body = format!("{{\"error\":\"overloaded\",\"queue_depth\":{depth}}}");
        let _ = stream.write_all(
            format!(
                "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        );
    }
}

/// Read the 8-byte protocol preamble, tolerating read timeouts while
/// watching the shutdown flag. `Ok(None)` = connection closed early or
/// shutdown.
fn read_preamble<E: Engine>(
    stream: &mut TcpStream,
    inner: &Inner<E>,
) -> io::Result<Option<[u8; 8]>> {
    let mut preamble = [0u8; 8];
    let mut got = 0;
    while got < preamble.len() {
        match stream.read(&mut preamble[got..]) {
            Ok(0) => return Ok(None),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if inner.shutdown.load(Relaxed) {
                    return Ok(None);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(Some(preamble))
}

/// Per-connection entry: sniff the protocol, then run its loop.
fn handle_conn<E: Engine>(mut stream: TcpStream, inner: &Inner<E>) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(IDLE_POLL))?;
    let Some(preamble) = read_preamble(&mut stream, inner)? else {
        return Ok(());
    };
    if &preamble == wire::MAGIC {
        binary_loop(stream, inner)
    } else if &preamble == SHIP_MAGIC {
        ship_loop(stream, inner)
    } else {
        http::serve_conn(stream, preamble.to_vec(), inner)
    }
}

/// The replication relay: ferry `u32`-length-prefixed ship messages
/// between this socket and a [`ShipEndpoint`] the embedding process
/// claims via [`ServerHandle::accept_replica`]. The reader runs on the
/// connection thread under the 50 ms poll timeout (so shutdown is
/// observed on an idle link); one writer thread drains the endpoint's
/// outbound queue. Framing violations close the connection — the dialing
/// [`planar_core::TcpTransport`] reconnects and the replication layer
/// heals by `Hello`/resume or re-seed.
fn ship_loop<E: Engine>(mut stream: TcpStream, inner: &Inner<E>) -> io::Result<()> {
    inner.metrics.ship_connections.fetch_add(1, Relaxed);
    let (endpoint, driver) = endpoint_pair();
    {
        let mut ships = inner.ships.lock().unwrap_or_else(|e| e.into_inner());
        ships.push_back(endpoint);
    }
    {
        let mut drivers = inner.ship_drivers.lock().unwrap_or_else(|e| e.into_inner());
        // Compact out connections that already finished.
        drivers.retain(|d| !d.is_closed());
        drivers.push(driver.clone());
    }

    let writer = {
        let stream = stream.try_clone()?;
        let driver = driver.clone();
        let metrics = Arc::clone(&inner.metrics);
        std::thread::Builder::new()
            .name("planar-ship-writer".to_string())
            .spawn(move || ship_writer(stream, &driver, &metrics))?
    };

    // Reader loop. The socket inherited handle_conn's IDLE_POLL read
    // timeout, so every 50 ms it re-checks shutdown and driver state.
    let max_message = inner.ship_max_message;
    let mut rx: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    'conn: loop {
        if inner.shutdown.load(Relaxed) || driver.is_closed() {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break, // peer closed
            Ok(n) => {
                rx.extend_from_slice(&chunk[..n]);
                // Drain every complete frame that arrived.
                loop {
                    if rx.len() < 4 {
                        break;
                    }
                    let len = u32::from_le_bytes(rx[..4].try_into().expect("4 bytes")) as usize;
                    if len < SHIP_MAGIC.len() + 1 || len > max_message {
                        break 'conn; // stream desync: close, peer reconnects
                    }
                    if rx.len() < 4 + len {
                        break;
                    }
                    let msg: Vec<u8> = rx[4..4 + len].to_vec();
                    rx.drain(..4 + len);
                    if &msg[..SHIP_MAGIC.len()] != SHIP_MAGIC {
                        break 'conn; // not a ship message: desync
                    }
                    inner.metrics.ship_messages_in.fetch_add(1, Relaxed);
                    driver.push_inbound(msg);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(_) => break,
        }
    }
    driver.close();
    let _ = writer.join();
    inner.metrics.ship_disconnects.fetch_add(1, Relaxed);
    Ok(())
}

/// Writer half of a ship relay: frame and send outbound messages until
/// the connection closes, then drain whatever is still queued so a clean
/// shutdown never drops acknowledged progress.
fn ship_writer(mut stream: TcpStream, driver: &ShipEndpointDriver, metrics: &ServerMetrics) {
    loop {
        match driver.wait_outbound(IDLE_POLL) {
            Some(msg) => {
                let mut framed = Vec::with_capacity(4 + msg.len());
                framed.extend_from_slice(&(msg.len() as u32).to_le_bytes());
                framed.extend_from_slice(&msg);
                if stream.write_all(&framed).is_err() {
                    driver.close();
                    return;
                }
                metrics.ship_messages_out.fetch_add(1, Relaxed);
            }
            None => {
                if driver.is_closed() {
                    let _ = stream.flush();
                    return;
                }
            }
        }
    }
}

/// The binary-protocol request loop: one frame in, one frame out.
fn binary_loop<E: Engine>(mut stream: TcpStream, inner: &Inner<E>) -> io::Result<()> {
    loop {
        // Wait for the next frame's first byte without holding a blocking
        // read, so shutdown is observed on idle connections.
        let mut probe = [0u8; 1];
        loop {
            match stream.peek(&mut probe) {
                Ok(0) => return Ok(()),
                Ok(_) => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if inner.shutdown.load(Relaxed) {
                        return Ok(());
                    }
                }
                Err(e) => return Err(e),
            }
        }
        // A frame is arriving: read it whole under a generous budget
        // (clients write frames in one piece; a stalled sender is fatal
        // for this connection only).
        stream.set_read_timeout(Some(FRAME_READ_TIMEOUT))?;
        let frame = wire::read_frame(&mut stream)?;
        stream.set_read_timeout(Some(IDLE_POLL))?;
        let Some((kind, body)) = frame else {
            return Ok(());
        };
        let resp = match wire::decode_request(kind, &body) {
            Some(req) => process(inner, req),
            None => {
                inner.metrics.malformed.fetch_add(1, Relaxed);
                Response::Error {
                    code: error_code::MALFORMED,
                    message: "unparseable request frame".to_string(),
                }
            }
        };
        wire::write_frame(&mut stream, &wire::encode_response(&resp))?;
    }
}
