//! Server-side counters and latency histograms for `/metrics`.
//!
//! Everything here is lock-free (`AtomicU64`) so the hot request path
//! never contends on a metrics mutex. The `/metrics` document merges
//! these server counters with the engine's
//! [`planar_core::StatsSnapshot`] (rendered by its hand-rolled
//! `to_json`), so one scrape shows both the serving layer (admission,
//! coalescing, queue depth, latency percentiles) and the engine
//! (pruning, WAL, epochs, replication).

use planar_core::JsonObject;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Log₂-bucketed latency histogram in microseconds: bucket `i` counts
/// samples in `[2^i, 2^(i+1))` µs (bucket 0 also catches sub-µs). 30
/// buckets reach ~18 minutes — far past any sane request.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; 30],
    sum_us: AtomicU64,
    count: AtomicU64,
    max_us: AtomicU64,
}

impl LatencyHistogram {
    /// Record one sample.
    pub fn record(&self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        let idx = (64 - us.max(1).leading_zeros() as usize - 1).min(self.buckets.len() - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Approximate percentile (`p` in `[0, 1]`) as the upper bound of the
    /// bucket holding the `p`-th sample, in µs. 0 when empty.
    pub fn percentile_us(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64 * p).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        self.max_us.load(Ordering::Relaxed)
    }

    /// Mean latency in µs (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum_us.load(Ordering::Relaxed) as f64 / n as f64
    }

    /// Render `{count, mean_us, p50_us, p90_us, p99_us, max_us}`.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .field_u64("count", self.count())
            .field_f64("mean_us", self.mean_us())
            .field_u64("p50_us", self.percentile_us(0.50))
            .field_u64("p90_us", self.percentile_us(0.90))
            .field_u64("p99_us", self.percentile_us(0.99))
            .field_u64("max_us", self.max_us.load(Ordering::Relaxed))
            .finish()
    }
}

/// Process-wide serving counters.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Connections turned away (connection cap).
    pub connections_rejected: AtomicU64,
    /// Requests admitted into the batcher queue.
    pub accepted: AtomicU64,
    /// Requests rejected by per-tenant quota (typed `Retry`).
    pub rejected_quota: AtomicU64,
    /// Requests rejected by queue-depth backpressure (typed `Overload`).
    pub rejected_overload: AtomicU64,
    /// Malformed frames / HTTP requests dropped.
    pub malformed: AtomicU64,
    /// Batches dispatched to the engine.
    pub batches: AtomicU64,
    /// Requests carried by those batches (`coalesced / batches` is the
    /// mean coalesced batch size).
    pub coalesced: AtomicU64,
    /// Largest coalesced batch observed.
    pub max_batch: AtomicU64,
    /// Current batcher queue depth (gauge).
    pub queue_depth: AtomicU64,
    /// Responses flagged partial (deadline placeholders).
    pub partials: AtomicU64,
    /// Replication (`PLNRSHP1`) connections sniffed off the listener.
    pub ship_connections: AtomicU64,
    /// Ship messages relayed inbound (socket → endpoint).
    pub ship_messages_in: AtomicU64,
    /// Ship messages relayed outbound (endpoint → socket).
    pub ship_messages_out: AtomicU64,
    /// Replication connections torn down (peer close, desync, shutdown).
    pub ship_disconnects: AtomicU64,
    /// HTTP keep-alive connections recycled at the per-connection request
    /// cap (`Connection: close` on the final response).
    pub http_recycled: AtomicU64,
    /// HTTP keep-alive connections closed for sitting idle past the
    /// configured timeout.
    pub http_idle_closed: AtomicU64,
    /// Enqueue→response latency of inequality queries.
    pub query_latency: LatencyHistogram,
    /// Enqueue→response latency of top-k queries.
    pub topk_latency: LatencyHistogram,
}

impl ServerMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Render the server-side block of the metrics document.
    pub fn to_json(&self) -> String {
        let load = Ordering::Relaxed;
        JsonObject::new()
            .field_u64("connections", self.connections.load(load))
            .field_u64("connections_rejected", self.connections_rejected.load(load))
            .field_u64("accepted", self.accepted.load(load))
            .field_u64("rejected_quota", self.rejected_quota.load(load))
            .field_u64("rejected_overload", self.rejected_overload.load(load))
            .field_u64("malformed", self.malformed.load(load))
            .field_u64("batches", self.batches.load(load))
            .field_u64("coalesced_requests", self.coalesced.load(load))
            .field_f64("mean_batch", {
                let b = self.batches.load(load);
                if b == 0 {
                    0.0
                } else {
                    self.coalesced.load(load) as f64 / b as f64
                }
            })
            .field_u64("max_batch", self.max_batch.load(load))
            .field_u64("queue_depth", self.queue_depth.load(load))
            .field_u64("partials", self.partials.load(load))
            .field_u64("ship_connections", self.ship_connections.load(load))
            .field_u64("ship_messages_in", self.ship_messages_in.load(load))
            .field_u64("ship_messages_out", self.ship_messages_out.load(load))
            .field_u64("ship_disconnects", self.ship_disconnects.load(load))
            .field_u64("http_recycled", self.http_recycled.load(load))
            .field_u64("http_idle_closed", self.http_idle_closed.load(load))
            .field_raw("query_latency", &self.query_latency.to_json())
            .field_raw("topk_latency", &self.topk_latency.to_json())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_bracket_samples() {
        let h = LatencyHistogram::default();
        for us in [1u64, 10, 100, 1000, 10_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 5);
        // p50 lands in the bucket holding 100µs: [64, 128) → upper 128.
        assert_eq!(h.percentile_us(0.5), 128);
        // p99 → the last sample's bucket [8192, 16384) → upper 16384.
        assert_eq!(h.percentile_us(0.99), 16384);
        assert!(h.mean_us() > 0.0);
        let json = h.to_json();
        assert!(json.contains("\"count\":5"));
        assert!(json.contains("\"max_us\":10000"));
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.percentile_us(0.99), 0);
        assert_eq!(h.mean_us(), 0.0);
    }

    #[test]
    fn server_metrics_render() {
        let m = ServerMetrics::new();
        m.accepted.store(10, Ordering::Relaxed);
        m.batches.store(2, Ordering::Relaxed);
        m.coalesced.store(10, Ordering::Relaxed);
        let json = m.to_json();
        assert!(json.contains("\"accepted\":10"));
        assert!(json.contains("\"mean_batch\":5"));
        assert!(json.contains("\"query_latency\":{"));
    }
}
