//! Minimal JSON value parser for HTTP request bodies.
//!
//! The serving layer accepts tiny, flat request documents
//! (`{"a": [...], "cmp": "leq", "b": 3.0, ...}`), so this is a strict
//! recursive-descent parser over the JSON grammar — no serde, matching
//! the workspace's no-external-deps rule. Encoding goes through
//! [`planar_core::JsonObject`]; this module only decodes.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as f64).
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order irrelevant to callers).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse one complete JSON document; trailing non-whitespace is an
    /// error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (None for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integer view (rejects fractions and negatives).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        if self.depth >= MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.depth += 1;
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.depth += 1;
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 1;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("bad low surrogate".into());
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or("bad surrogate pair")?
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err("lone low surrogate".into());
                            } else {
                                char::from_u32(cp).ok_or("bad codepoint")?
                            };
                            out.push(ch);
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // bytes are valid UTF-8; find the char boundary).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        // Called with pos at the first hex digit ('u' already consumed);
        // leaves pos just past the fourth digit.
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_shape() {
        let v = Json::parse(r#"{"a": [1.0, -2.5e1], "cmp": "leq", "b": 3, "k": 5, "tenant": 7}"#)
            .unwrap();
        let a: Vec<f64> = v
            .get("a")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|x| x.as_f64().unwrap())
            .collect();
        assert_eq!(a, vec![1.0, -25.0]);
        assert_eq!(v.get("cmp").unwrap().as_str(), Some("leq"));
        assert_eq!(v.get("b").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("k").unwrap().as_u64(), Some(5));
        assert_eq!(v.get("tenant").unwrap().as_u64(), Some(7));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn escapes_and_unicode() {
        let v = Json::parse(r#"{"s": "a\"b\\c\nd\u0041\ud83d\ude00"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\ndA😀"));
    }

    #[test]
    fn round_trips_core_encoder() {
        // What core's JsonObject emits, this parser must read back.
        let doc = planar_core::JsonObject::new()
            .field_u64("n", 42)
            .field_f64("x", -1.5)
            .field_bool("ok", true)
            .field_str("s", "tab\there \"q\"")
            .field_raw("inner", "{\"k\":[1,2,3]}")
            .finish();
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("x").unwrap().as_f64(), Some(-1.5));
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("s").unwrap().as_str(), Some("tab\there \"q\""));
        let inner = v.get("inner").unwrap().get("k").unwrap().as_arr().unwrap();
        assert_eq!(inner.len(), 3);
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"\\u12\"",
            "nan",
            "{\"a\":}",
            "\"\\ud800x\"",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(20) + &"]".repeat(20);
        assert!(Json::parse(&ok).is_ok());
    }
}
