//! The adaptive micro-batcher: the serving-side analogue of
//! `query_batch`.
//!
//! Connection handlers decode requests and [`MicroBatcher::enqueue`]
//! them; dispatcher threads coalesce the queue into
//! `query_batch_isolated` / `top_k_batch_isolated` calls against one
//! epoch snapshot, so concurrent clients get the same batch-execution
//! amortization (shard-major cache residency, one snapshot pin, one
//! dispatch) that `BENCH_parallel.json` and `BENCH_shard.json` measured
//! for offline batches.
//!
//! ## Batch-close policy
//!
//! A batch closes when any of these holds:
//!
//! * **depth** — the queue reached [`BatchPolicy::max_batch`];
//! * **budget** — the batch has been open for [`BatchPolicy::max_wait`]
//!   total (the hard latency bound a lone request can ever pay);
//! * **gap** — no new arrival landed within `2 × EWMA(inter-arrival)`
//!   of the previous one: the burst that opened the batch has drained,
//!   so waiting longer adds latency without plausibly adding depth.
//!   This is what lets a closed-loop client population smaller than
//!   `max_batch` dispatch promptly — once every in-flight client has
//!   enqueued, the next arrival cannot come until responses go out, and
//!   the gap timeout fires within microseconds instead of burning the
//!   whole budget.
//!
//! EWMA samples are clamped to `max_wait` before folding, so the long
//! silence while a previous batch executes cannot inflate the estimate
//! and make the policy close depth-1 batches right after each dispatch.
//! Before the first two arrivals there is no EWMA; the policy waits the
//! full `max_wait`, which makes cold-start coalescing deterministic for
//! tests.
//!
//! ## Deadlines
//!
//! Each request may carry a deadline (µs from receipt). At dispatch the
//! tightest deadline in the batch becomes the batch's
//! [`ExecutionConfig::with_deadline`] budget; queries the engine could
//! not start in time come back as [`ServedBy::Partial`] placeholders,
//! which the batcher surfaces as `partial` provenance on the response —
//! the engine's partial-answer contract carried end to end.

use crate::metrics::ServerMetrics;
use crate::wire::{error_code, Provenance, Response};
use crate::Engine;
use planar_core::{ExecutionConfig, InequalityQuery, PlanarError, StatsAggregator, TopKQuery};
use std::collections::VecDeque;
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// EWMA smoothing factor for the inter-arrival estimate.
const EWMA_ALPHA: f64 = 0.2;

/// Minimum gap-timeout while a batch is filling: a burst whose arrivals
/// are serialized through the queue mutex can show near-zero gaps, and
/// closing on those would strand the tail of the burst.
const GAP_PATIENCE_FLOOR: Duration = Duration::from_micros(20);

/// Batch-close policy knobs.
#[derive(Debug, Clone)]
pub struct BatchPolicy {
    /// Deepest coalesced batch (close on depth).
    pub max_batch: usize,
    /// Hard cap on how long an open batch may wait for more arrivals.
    pub max_wait: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_wait: Duration::from_micros(500),
        }
    }
}

/// Work item kinds the batcher coalesces.
#[derive(Debug, Clone)]
pub enum Work {
    /// An inequality query.
    Query(InequalityQuery),
    /// A top-k query.
    TopK(TopKQuery),
}

pub(crate) struct Pending {
    work: Work,
    deadline: Option<Instant>,
    enqueued: Instant,
    reply: SyncSender<Response>,
}

struct State {
    queue: VecDeque<Pending>,
    ewma_gap: Option<Duration>,
    last_arrival: Option<Instant>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
}

/// The shared micro-batcher: many producers (connection handlers), one
/// or more dispatcher threads draining into the engine.
pub struct MicroBatcher<E> {
    engine: Arc<E>,
    shared: Arc<Shared>,
    metrics: Arc<ServerMetrics>,
    stats: Arc<Mutex<StatsAggregator>>,
    policy: BatchPolicy,
    exec: ExecutionConfig,
    max_queue: usize,
}

impl<E> Clone for MicroBatcher<E> {
    fn clone(&self) -> Self {
        Self {
            engine: Arc::clone(&self.engine),
            shared: Arc::clone(&self.shared),
            metrics: Arc::clone(&self.metrics),
            stats: Arc::clone(&self.stats),
            policy: self.policy.clone(),
            exec: self.exec,
            max_queue: self.max_queue,
        }
    }
}

impl<E: Engine> MicroBatcher<E> {
    pub(crate) fn new(
        engine: Arc<E>,
        policy: BatchPolicy,
        exec: ExecutionConfig,
        max_queue: usize,
        metrics: Arc<ServerMetrics>,
        stats: Arc<Mutex<StatsAggregator>>,
    ) -> Self {
        Self {
            engine,
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    queue: VecDeque::new(),
                    ewma_gap: None,
                    last_arrival: None,
                    shutdown: false,
                }),
                cv: Condvar::new(),
            }),
            metrics,
            stats,
            policy,
            exec,
            max_queue,
        }
    }

    /// Enqueue one request. `Ok(rx)` delivers the response once a
    /// dispatcher has executed the batch containing it; `Err(depth)`
    /// means the queue is at capacity (the caller answers `Overload`).
    pub(crate) fn enqueue(
        &self,
        work: Work,
        deadline: Option<Duration>,
    ) -> Result<Receiver<Response>, usize> {
        let now = Instant::now();
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        {
            let mut st = self.shared.state.lock().expect("batcher lock poisoned");
            if st.queue.len() >= self.max_queue {
                return Err(st.queue.len());
            }
            if let Some(last) = st.last_arrival {
                // Clamp the sample: the silence while a batch executes is
                // not a property of the arrival process, and one long gap
                // must not wreck the burst-rate estimate.
                let gap = now
                    .saturating_duration_since(last)
                    .min(self.policy.max_wait);
                st.ewma_gap = Some(match st.ewma_gap {
                    None => gap,
                    Some(prev) => prev.mul_f64(1.0 - EWMA_ALPHA) + gap.mul_f64(EWMA_ALPHA),
                });
            }
            st.last_arrival = Some(now);
            st.queue.push_back(Pending {
                work,
                deadline: deadline.map(|d| now + d),
                enqueued: now,
                reply: tx,
            });
            self.metrics
                .queue_depth
                .store(st.queue.len() as u64, std::sync::atomic::Ordering::Relaxed);
        }
        self.shared.cv.notify_one();
        Ok(rx)
    }

    /// Current queue depth (for backpressure decisions and tests).
    pub fn depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("batcher lock poisoned")
            .queue
            .len()
    }

    /// Wake every dispatcher and make them exit once the queue drains.
    pub(crate) fn shutdown(&self) {
        self.shared
            .state
            .lock()
            .expect("batcher lock poisoned")
            .shutdown = true;
        self.shared.cv.notify_all();
    }

    /// Dispatcher loop: block for work, adaptively close a batch, execute
    /// it, repeat. Run by one or more dedicated threads; multiple
    /// dispatchers drain the same queue safely (the mutex arbitrates).
    pub(crate) fn run(&self) {
        loop {
            let batch = match self.next_batch() {
                Some(b) => b,
                None => return,
            };
            self.execute(batch);
        }
    }

    /// Block until a batch closes (or shutdown drains). `None` = exit.
    fn next_batch(&self) -> Option<Vec<Pending>> {
        let mut st = self.shared.state.lock().expect("batcher lock poisoned");
        loop {
            if st.queue.is_empty() {
                if st.shutdown {
                    return None;
                }
                st = self.shared.cv.wait(st).expect("batcher lock poisoned");
                continue;
            }
            // A batch is open: wait out the adaptive close policy.
            let opened = Instant::now();
            loop {
                let depth = st.queue.len();
                if depth >= self.policy.max_batch || st.shutdown {
                    break;
                }
                let elapsed = opened.elapsed();
                if elapsed >= self.policy.max_wait {
                    break;
                }
                let budget_left = self.policy.max_wait - elapsed;
                let patience = match st.ewma_gap {
                    // No arrival-rate estimate yet: be patient once.
                    None => budget_left,
                    // Sparse stream: even one more slot is not expected
                    // to fill within the budget — dispatch now.
                    Some(gap) if gap.mul_f64(2.0) >= self.policy.max_wait => break,
                    Some(gap) => gap.mul_f64(2.0).max(GAP_PATIENCE_FLOOR).min(budget_left),
                };
                // The burst that opened the batch has drained once the
                // newest arrival is older than the patience window.
                let since_last = match st.last_arrival {
                    Some(t) => t.elapsed(),
                    None => Duration::ZERO,
                };
                if since_last >= patience {
                    break;
                }
                let (guard, timeout) = self
                    .shared
                    .cv
                    .wait_timeout(st, patience - since_last)
                    .expect("batcher lock poisoned");
                st = guard;
                if timeout.timed_out() && st.queue.len() == depth {
                    break;
                }
            }
            let take = st.queue.len().min(self.policy.max_batch);
            let batch: Vec<Pending> = st.queue.drain(..take).collect();
            self.metrics
                .queue_depth
                .store(st.queue.len() as u64, std::sync::atomic::Ordering::Relaxed);
            if !batch.is_empty() {
                return Some(batch);
            }
        }
    }

    /// Execute one closed batch against a single epoch snapshot and
    /// deliver the responses.
    fn execute(&self, batch: Vec<Pending>) {
        use std::sync::atomic::Ordering::Relaxed;
        let now = Instant::now();

        // The tightest per-request deadline becomes the batch budget —
        // already-expired deadlines clamp to zero, which the engine turns
        // into Partial placeholders rather than an error.
        let mut exec = self.exec;
        if let Some(tightest) = batch.iter().filter_map(|p| p.deadline).min() {
            exec = exec.with_deadline(tightest.saturating_duration_since(now));
        }

        let mut queries = Vec::new();
        let mut topks = Vec::new();
        for (slot, p) in batch.iter().enumerate() {
            match &p.work {
                Work::Query(q) => queries.push((slot, q.clone())),
                Work::TopK(q) => topks.push((slot, q.clone())),
            }
        }

        let snapshot = self.engine.snapshot();
        let mut responses: Vec<Option<Response>> = (0..batch.len()).map(|_| None).collect();

        if !queries.is_empty() {
            let qs: Vec<InequalityQuery> = queries.iter().map(|(_, q)| q.clone()).collect();
            let outs = snapshot.query_batch_isolated(&qs, &exec);
            let mut agg = self.stats.lock().expect("stats lock poisoned");
            for ((slot, _), out) in queries.iter().zip(outs) {
                responses[*slot] = Some(match out {
                    Ok(o) => {
                        agg.add_sharded(&o.shard_stats);
                        Response::Matches {
                            ids: o.matches,
                            provenance: Provenance::from_served_by(&o.served_by),
                        }
                    }
                    Err(e) => error_response(&e),
                });
            }
        }
        if !topks.is_empty() {
            let qs: Vec<TopKQuery> = topks.iter().map(|(_, q)| q.clone()).collect();
            let outs = snapshot.top_k_batch_isolated(&qs, &exec);
            for ((slot, _), out) in topks.iter().zip(outs) {
                responses[*slot] = Some(match out {
                    Ok(o) => Response::Neighbors {
                        neighbors: o.neighbors,
                        provenance: Provenance::from_served_by(&o.served_by),
                    },
                    Err(e) => error_response(&e),
                });
            }
        }

        self.metrics.batches.fetch_add(1, Relaxed);
        self.metrics
            .coalesced
            .fetch_add(batch.len() as u64, Relaxed);
        self.metrics
            .max_batch
            .fetch_max(batch.len() as u64, Relaxed);

        let done = Instant::now();
        for (p, resp) in batch.iter().zip(responses) {
            let resp = resp.expect("every slot answered");
            let latency = done.saturating_duration_since(p.enqueued);
            match p.work {
                Work::Query(_) => self.metrics.query_latency.record(latency),
                Work::TopK(_) => self.metrics.topk_latency.record(latency),
            }
            if matches!(
                &resp,
                Response::Matches { provenance, .. } | Response::Neighbors { provenance, .. }
                    if provenance.partial
            ) {
                self.metrics.partials.fetch_add(1, Relaxed);
            }
            // A vanished client (dropped receiver) is not an error.
            let _ = p.reply.send(resp);
        }
    }

    /// Render the full metrics document: server counters plus the
    /// engine's stats snapshot (lifecycle state stamped at render time).
    pub(crate) fn metrics_json(&self) -> String {
        let engine_json = {
            let mut agg = self.stats.lock().expect("stats lock poisoned");
            self.engine.record_lifecycle(&mut agg);
            agg.snapshot().to_json()
        };
        planar_core::JsonObject::new()
            .field_raw("server", &self.metrics.to_json())
            .field_raw("engine", &engine_json)
            .finish()
    }
}

/// Map a typed engine error to a wire error response.
pub(crate) fn error_response(e: &PlanarError) -> Response {
    let code = match e {
        PlanarError::InvalidQuery(_)
        | PlanarError::DimensionMismatch { .. }
        | PlanarError::KNotPositive
        | PlanarError::NotFinite => error_code::INVALID_QUERY,
        _ => error_code::INTERNAL,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}
