//! A small blocking client for the `PLNRQRY1` binary protocol.
//!
//! One request in flight per connection (the protocol is strictly
//! request/response per frame); open several clients for concurrency —
//! the server coalesces across connections, which is exactly what the
//! micro-batcher exploits.

use crate::wire::{self, Request, Response};
use planar_core::Cmp;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected binary-protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect and send the protocol preamble.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let mut writer = BufWriter::new(stream);
        writer.write_all(wire::MAGIC)?;
        writer.flush()?;
        Ok(Client { reader, writer })
    }

    /// Send one request and block for its response.
    pub fn call(&mut self, req: &Request) -> io::Result<Response> {
        wire::write_frame(&mut self.writer, &wire::encode_request(req))?;
        let (kind, body) = wire::read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed mid-request")
        })?;
        wire::decode_response(kind, &body)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed response frame"))
    }

    /// Inequality query as tenant 0 with no deadline.
    pub fn query(&mut self, a: &[f64], cmp: Cmp, b: f64) -> io::Result<Response> {
        self.query_as(0, None, a, cmp, b)
    }

    /// Inequality query with explicit tenant and deadline.
    pub fn query_as(
        &mut self,
        tenant: u32,
        deadline: Option<Duration>,
        a: &[f64],
        cmp: Cmp,
        b: f64,
    ) -> io::Result<Response> {
        self.call(&Request::Query {
            tenant,
            deadline_us: deadline_us(deadline),
            a: a.to_vec(),
            cmp,
            b,
        })
    }

    /// Top-k query as tenant 0 with no deadline.
    pub fn top_k(&mut self, a: &[f64], cmp: Cmp, b: f64, k: u32) -> io::Result<Response> {
        self.top_k_as(0, None, a, cmp, b, k)
    }

    /// Top-k query with explicit tenant and deadline.
    pub fn top_k_as(
        &mut self,
        tenant: u32,
        deadline: Option<Duration>,
        a: &[f64],
        cmp: Cmp,
        b: f64,
        k: u32,
    ) -> io::Result<Response> {
        self.call(&Request::TopK {
            tenant,
            deadline_us: deadline_us(deadline),
            a: a.to_vec(),
            cmp,
            b,
            k,
        })
    }

    /// Fetch the metrics document.
    pub fn metrics(&mut self) -> io::Result<String> {
        match self.call(&Request::Metrics)? {
            Response::Metrics { json } => Ok(json),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a metrics response, got {other:?}"),
            )),
        }
    }
}

/// Deadline encoding: 0 = none, so a zero duration rounds up to 1µs
/// (still "instantly expired" for any real batch).
fn deadline_us(deadline: Option<Duration>) -> u32 {
    match deadline {
        None => 0,
        Some(d) => (d.as_micros().min(u32::MAX as u128) as u32).max(1),
    }
}
