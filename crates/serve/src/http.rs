//! Minimal HTTP/1.1 surface sharing the binary protocol's port.
//!
//! The server sniffs the first eight bytes of each connection: the
//! `PLNRQRY1` magic selects the binary protocol, anything else is fed to
//! this hand-rolled HTTP/1.1 handler (std-only — no hyper). Three
//! routes:
//!
//! * `GET /metrics` — server counters + engine stats snapshot, JSON;
//! * `POST /query` — body `{"a": [..], "cmp": "leq"|"geq", "b": n,
//!   "tenant"?: n, "deadline_us"?: n}` → `{"ids": [..], "partial": b,
//!   "degraded": b, "completed": n}`;
//! * `POST /topk` — same body plus `"k": n` →
//!   `{"neighbors": [[id, dist], ..], ..}`.
//!
//! Admission rejections map onto HTTP the obvious way: quota exhaustion
//! is `429` with a `Retry-After` header, queue-depth backpressure is
//! `503`. Both carry the same typed JSON bodies the binary protocol
//! returns, so a load balancer and a binary client see one overload
//! story. Keep-alive is honored (`Connection: close` respected) but
//! bounded: a connection serves at most
//! [`crate::ServeConfig::http_max_requests`] requests (the final
//! response carries `Connection: close`) and is dropped after
//! [`crate::ServeConfig::http_idle_timeout`] without a new request, so
//! no client pins a connection slot forever. Header and body sizes are
//! bounded before allocation.

use crate::json::Json;
use crate::wire::{error_code, Request, Response};
use crate::{Engine, Inner};
use planar_core::stats::json_f64;
use planar_core::{Cmp, JsonObject};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering::Relaxed;
use std::time::Instant;

/// Bound on the request head (request line + headers).
const MAX_HEAD: usize = 8 * 1024;
/// Bound on a request body.
const MAX_BODY: usize = 1024 * 1024;

/// Serve one HTTP connection. `carry` holds bytes already consumed by
/// protocol sniffing (the non-magic preamble).
pub(crate) fn serve_conn<E: Engine>(
    mut stream: TcpStream,
    carry: Vec<u8>,
    inner: &Inner<E>,
) -> io::Result<()> {
    let mut buf = carry;
    let mut served = 0usize;
    loop {
        // Accumulate the request head. Between requests (empty buffer,
        // nothing in flight) an idle deadline applies: a keep-alive
        // connection that sends nothing for http_idle_timeout is closed
        // so it cannot pin a connection slot forever.
        let mut idle_deadline = Some(Instant::now() + inner.http_idle_timeout);
        let head_end = loop {
            if let Some(pos) = find_double_crlf(&buf) {
                break pos;
            }
            if !buf.is_empty() {
                idle_deadline = None; // a request started arriving
            }
            if buf.len() > MAX_HEAD {
                write_response(
                    &mut stream,
                    431,
                    "Request Header Fields Too Large",
                    &[],
                    "{}",
                    true,
                )?;
                return Ok(());
            }
            match fill(&mut stream, &mut buf, inner, idle_deadline)? {
                Filled::Data => {}
                Filled::Eof => {
                    if buf.is_empty() {
                        return Ok(()); // clean close between requests
                    }
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "EOF inside an HTTP request head",
                    ));
                }
                Filled::Shutdown => return Ok(()),
                Filled::Idle => {
                    inner.metrics.http_idle_closed.fetch_add(1, Relaxed);
                    return Ok(());
                }
            }
        };

        let head = match std::str::from_utf8(&buf[..head_end]) {
            Ok(h) => h.to_string(),
            Err(_) => {
                write_response(&mut stream, 400, "Bad Request", &[], "{}", true)?;
                return Ok(());
            }
        };
        let Some(parsed) = ParsedHead::parse(&head) else {
            write_response(&mut stream, 400, "Bad Request", &[], "{}", true)?;
            return Ok(());
        };
        if parsed.content_length > MAX_BODY {
            write_response(&mut stream, 413, "Payload Too Large", &[], "{}", true)?;
            return Ok(());
        }

        // Accumulate the body.
        let body_start = head_end + 4;
        let total = body_start + parsed.content_length;
        while buf.len() < total {
            match fill(&mut stream, &mut buf, inner, None)? {
                Filled::Data => {}
                Filled::Eof => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "EOF inside an HTTP request body",
                    ))
                }
                Filled::Shutdown => return Ok(()),
                Filled::Idle => unreachable!("no idle deadline inside a request"),
            }
        }
        let body = buf[body_start..total].to_vec();
        buf.drain(..total);

        served += 1;
        // The final keep-alive response on a connection that hit the
        // per-connection request cap announces the close.
        let close = !parsed.keep_alive || served >= inner.http_max_requests;
        route(&mut stream, &parsed, &body, inner, close)?;
        if close {
            if parsed.keep_alive {
                inner.metrics.http_recycled.fetch_add(1, Relaxed);
            }
            return Ok(());
        }
    }
}

enum Filled {
    Data,
    Eof,
    Shutdown,
    /// The idle deadline passed with no request bytes in flight.
    Idle,
}

/// Read more bytes, tolerating read timeouts while watching shutdown —
/// and, when `idle_deadline` is set, the keep-alive idle cutoff.
fn fill<E: Engine>(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    inner: &Inner<E>,
    idle_deadline: Option<Instant>,
) -> io::Result<Filled> {
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(Filled::Eof),
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                return Ok(Filled::Data);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if inner.shutdown.load(Relaxed) {
                    return Ok(Filled::Shutdown);
                }
                if idle_deadline.is_some_and(|d| Instant::now() >= d) {
                    return Ok(Filled::Idle);
                }
                continue;
            }
            Err(e) => return Err(e),
        }
    }
}

fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

struct ParsedHead {
    method: String,
    path: String,
    content_length: usize,
    keep_alive: bool,
}

impl ParsedHead {
    fn parse(head: &str) -> Option<ParsedHead> {
        let mut lines = head.split("\r\n");
        let request_line = lines.next()?;
        let mut parts = request_line.split(' ');
        let method = parts.next()?.to_string();
        let path = parts.next()?.to_string();
        let version = parts.next()?;
        if !version.starts_with("HTTP/1.") {
            return None;
        }
        let mut content_length = 0usize;
        let mut keep_alive = version == "HTTP/1.1";
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            match name.as_str() {
                "content-length" => content_length = value.parse().ok()?,
                "connection" => {
                    let v = value.to_ascii_lowercase();
                    if v.contains("close") {
                        keep_alive = false;
                    } else if v.contains("keep-alive") {
                        keep_alive = true;
                    }
                }
                _ => {}
            }
        }
        Some(ParsedHead {
            method,
            path,
            content_length,
            keep_alive,
        })
    }
}

/// Dispatch one parsed HTTP request and write the response. `close`
/// announces `Connection: close` on the response (last request the
/// server will serve on this connection).
fn route<E: Engine>(
    stream: &mut TcpStream,
    head: &ParsedHead,
    body: &[u8],
    inner: &Inner<E>,
    close: bool,
) -> io::Result<()> {
    match (head.method.as_str(), head.path.as_str()) {
        ("GET", "/metrics") => {
            let json = crate::process(inner, Request::Metrics);
            let Response::Metrics { json } = json else {
                unreachable!("metrics request always yields a metrics response");
            };
            write_response(stream, 200, "OK", &[], &json, close)
        }
        ("POST", "/query") => match parse_query_body(body, false) {
            Ok(req) => respond(stream, crate::process(inner, req), close),
            Err(msg) => {
                inner.metrics.malformed.fetch_add(1, Relaxed);
                bad_request(stream, &msg, close)
            }
        },
        ("POST", "/topk") => match parse_query_body(body, true) {
            Ok(req) => respond(stream, crate::process(inner, req), close),
            Err(msg) => {
                inner.metrics.malformed.fetch_add(1, Relaxed);
                bad_request(stream, &msg, close)
            }
        },
        ("GET" | "POST", _) => write_response(stream, 404, "Not Found", &[], "{}", close),
        _ => write_response(stream, 405, "Method Not Allowed", &[], "{}", close),
    }
}

/// Decode a `/query` or `/topk` JSON body into a wire request.
fn parse_query_body(body: &[u8], want_k: bool) -> Result<Request, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let v = Json::parse(text)?;
    let a = v
        .get("a")
        .and_then(Json::as_arr)
        .ok_or("missing \"a\" array")?
        .iter()
        .map(|x| x.as_f64().ok_or("non-numeric coefficient"))
        .collect::<Result<Vec<f64>, _>>()?;
    let cmp = match v.get("cmp").and_then(Json::as_str) {
        Some("leq") => Cmp::Leq,
        Some("geq") => Cmp::Geq,
        _ => return Err("\"cmp\" must be \"leq\" or \"geq\"".into()),
    };
    let b = v.get("b").and_then(Json::as_f64).ok_or("missing \"b\"")?;
    let tenant = v.get("tenant").and_then(Json::as_u64).unwrap_or(0) as u32;
    let deadline_us = v.get("deadline_us").and_then(Json::as_u64).unwrap_or(0) as u32;
    if want_k {
        let k = v.get("k").and_then(Json::as_u64).ok_or("missing \"k\"")? as u32;
        Ok(Request::TopK {
            tenant,
            deadline_us,
            a,
            cmp,
            b,
            k,
        })
    } else {
        Ok(Request::Query {
            tenant,
            deadline_us,
            a,
            cmp,
            b,
        })
    }
}

/// Map a wire response onto HTTP status + JSON body.
fn respond(stream: &mut TcpStream, resp: Response, close: bool) -> io::Result<()> {
    match resp {
        Response::Matches { ids, provenance } => {
            let ids_json = format!(
                "[{}]",
                ids.iter()
                    .map(|i| i.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            );
            let body = JsonObject::new()
                .field_raw("ids", &ids_json)
                .field_bool("partial", provenance.partial)
                .field_bool("degraded", provenance.degraded)
                .field_u64("completed", provenance.completed as u64)
                .finish();
            write_response(stream, 200, "OK", &[], &body, close)
        }
        Response::Neighbors {
            neighbors,
            provenance,
        } => {
            let nn = format!(
                "[{}]",
                neighbors
                    .iter()
                    .map(|(id, d)| format!("[{},{}]", id, json_f64(*d)))
                    .collect::<Vec<_>>()
                    .join(",")
            );
            let body = JsonObject::new()
                .field_raw("neighbors", &nn)
                .field_bool("partial", provenance.partial)
                .field_bool("degraded", provenance.degraded)
                .field_u64("completed", provenance.completed as u64)
                .finish();
            write_response(stream, 200, "OK", &[], &body, close)
        }
        Response::Retry { retry_after_us } => {
            let secs = (retry_after_us as u64).div_ceil(1_000_000).max(1);
            let body = JsonObject::new()
                .field_str("error", "quota exhausted")
                .field_u64("retry_after_us", retry_after_us as u64)
                .finish();
            write_response(
                stream,
                429,
                "Too Many Requests",
                &[("Retry-After", &secs.to_string())],
                &body,
                close,
            )
        }
        Response::Overload { queue_depth } => {
            let body = JsonObject::new()
                .field_str("error", "overloaded")
                .field_u64("queue_depth", queue_depth as u64)
                .finish();
            write_response(stream, 503, "Service Unavailable", &[], &body, close)
        }
        Response::Error { code, message } => {
            let body = JsonObject::new()
                .field_u64("code", code as u64)
                .field_str("error", &message)
                .finish();
            let (status, reason) = if code == error_code::INTERNAL {
                (500, "Internal Server Error")
            } else {
                (400, "Bad Request")
            };
            write_response(stream, status, reason, &[], &body, close)
        }
        Response::Metrics { json } => write_response(stream, 200, "OK", &[], &json, close),
    }
}

fn bad_request(stream: &mut TcpStream, msg: &str, close: bool) -> io::Result<()> {
    let body = JsonObject::new()
        .field_u64("code", error_code::MALFORMED as u64)
        .field_str("error", msg)
        .finish();
    write_response(stream, 400, "Bad Request", &[], &body, close)
}

/// Write one HTTP/1.1 response with a JSON body. `close` adds
/// `Connection: close` — the server stops reading this connection after
/// the write, and the client should too.
fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    extra: &[(&str, &str)],
    body: &str,
    close: bool,
) -> io::Result<()> {
    let mut out = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
        body.len()
    );
    if close {
        out.push_str("Connection: close\r\n");
    }
    for (name, value) in extra {
        out.push_str(name);
        out.push_str(": ");
        out.push_str(value);
        out.push_str("\r\n");
    }
    out.push_str("\r\n");
    out.push_str(body);
    stream.write_all(out.as_bytes())?;
    stream.flush()
}
