//! The `PLNRQRY1` compact binary protocol.
//!
//! A connection opens with the 8-byte magic `PLNRQRY1` (the server uses
//! it to tell binary clients from HTTP ones on the same port), then
//! carries a sequence of frames in each direction:
//!
//! ```text
//! | body_len u32 | kind u8 | body | crc64 u64 |      (integers LE)
//! ```
//!
//! The CRC-64/XZ seals everything before it (header + body) with the
//! shared [`planar_core::frame`] helpers — the same trailer the WAL
//! frames, snapshot sections, and replication messages use, so in-flight
//! corruption is detected the same way everywhere. `body_len` is bounded
//! by [`MAX_BODY`] before any allocation, so a corrupt length can neither
//! OOM the peer nor index past a buffer.
//!
//! Requests carry the tenant (for admission control) and an optional
//! deadline budget in microseconds, measured from server receipt; the
//! deadline propagates into
//! [`planar_core::ExecutionConfig::with_deadline`], and answers the
//! engine could not start in time come back flagged `partial` — the
//! client-visible face of [`planar_core::ServedBy::Partial`].

use planar_core::frame::{open_sealed, seal_vec, CRC_LEN};
use planar_core::{Cmp, ServedBy};
use std::io::{self, Read, Write};

/// Connection preamble identifying the binary protocol.
pub const MAGIC: &[u8; 8] = b"PLNRQRY1";

/// Frame header: body length + kind tag.
const FRAME_HEADER: usize = 4 + 1;
/// Hard bound on a frame body. Large enough for a 100k-id answer, small
/// enough that a corrupt length field cannot provoke a huge allocation.
pub const MAX_BODY: usize = 16 << 20;

/// Request kinds.
const REQ_QUERY: u8 = 0x01;
const REQ_TOPK: u8 = 0x02;
const REQ_METRICS: u8 = 0x03;

/// Response kinds.
const RESP_MATCHES: u8 = 0x81;
const RESP_NEIGHBORS: u8 = 0x82;
const RESP_RETRY: u8 = 0x83;
const RESP_OVERLOAD: u8 = 0x84;
const RESP_ERROR: u8 = 0x85;
const RESP_METRICS: u8 = 0x86;

/// Provenance flag bits on answer responses.
const FLAG_PARTIAL: u8 = 0x1;
const FLAG_DEGRADED: u8 = 0x2;

/// Typed error codes on [`Response::Error`].
pub mod error_code {
    /// The request was malformed at the wire level (bad lengths, unknown
    /// comparison tag, …).
    pub const MALFORMED: u8 = 1;
    /// The query failed the engine's typed validation
    /// (`PlanarError::InvalidQuery` and friends) — a client error.
    pub const INVALID_QUERY: u8 = 2;
    /// The engine failed internally (worker panic, poisoned state).
    pub const INTERNAL: u8 = 3;
}

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// An inequality query: all points with `⟨a, φ(x)⟩ cmp b`.
    Query {
        /// Tenant for per-tenant admission quotas (0 = anonymous).
        tenant: u32,
        /// Deadline budget in µs from server receipt (0 = none).
        deadline_us: u32,
        /// Query coefficients.
        a: Vec<f64>,
        /// Comparison direction.
        cmp: Cmp,
        /// Threshold.
        b: f64,
    },
    /// A top-k query over the same predicate.
    TopK {
        /// Tenant for per-tenant admission quotas (0 = anonymous).
        tenant: u32,
        /// Deadline budget in µs from server receipt (0 = none).
        deadline_us: u32,
        /// Query coefficients.
        a: Vec<f64>,
        /// Comparison direction.
        cmp: Cmp,
        /// Threshold.
        b: f64,
        /// Neighbors requested.
        k: u32,
    },
    /// Fetch the metrics document (same payload as `GET /metrics`).
    Metrics,
}

/// Serving provenance summarized per response, as flag bits + a count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Provenance {
    /// Some shard's slot was a deadline placeholder: the answer is
    /// missing that shard's contribution (empty matches for fully
    /// skipped queries).
    pub partial: bool,
    /// Some shard served degraded (exact scan, every index quarantined).
    pub degraded: bool,
    /// Batch slots that completed before the deadline (meaningful when
    /// `partial`; equals the coalesced batch size otherwise).
    pub completed: u32,
}

impl Provenance {
    /// Summarize per-shard provenance into the wire form.
    pub fn from_served_by(served_by: &[ServedBy]) -> Self {
        let mut p = Provenance {
            partial: false,
            degraded: false,
            completed: 0,
        };
        for sb in served_by {
            match sb {
                ServedBy::Partial { completed, .. } => {
                    p.partial = true;
                    p.completed = *completed as u32;
                }
                ServedBy::Degraded => p.degraded = true,
                _ => {}
            }
        }
        p
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Inequality answer: matching global ids in the engine's canonical
    /// order (ascending shard, interval order within) — byte-identical
    /// to a direct `query_batch` call's `matches`.
    Matches {
        /// Matching ids.
        ids: Vec<u32>,
        /// Serving provenance.
        provenance: Provenance,
    },
    /// Top-k answer: `(id, distance)` ascending by `(distance, id)`,
    /// distances bit-exact (encoded via `f64::to_le_bytes`).
    Neighbors {
        /// Neighbors.
        neighbors: Vec<(u32, f64)>,
        /// Serving provenance.
        provenance: Provenance,
    },
    /// Admission control: the tenant's quota is exhausted — retry after
    /// the given backoff. Typed, not an error: overload degrades to
    /// explicit rejections, never to hangs.
    Retry {
        /// Suggested backoff before retrying, µs.
        retry_after_us: u32,
    },
    /// Admission control: the request queue is full — shed load.
    Overload {
        /// Queue depth observed at rejection.
        queue_depth: u32,
    },
    /// A typed per-request error (see [`error_code`]); the connection
    /// stays usable.
    Error {
        /// One of [`error_code`].
        code: u8,
        /// Human-readable message.
        message: String,
    },
    /// The metrics document (JSON text).
    Metrics {
        /// JSON payload.
        json: String,
    },
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn cmp_tag(cmp: Cmp) -> u8 {
    match cmp {
        Cmp::Leq => 0,
        Cmp::Geq => 1,
    }
}

fn encode_predicate(buf: &mut Vec<u8>, tenant: u32, deadline_us: u32, a: &[f64], cmp: Cmp, b: f64) {
    put_u32(buf, tenant);
    put_u32(buf, deadline_us);
    buf.push(cmp_tag(cmp));
    put_f64(buf, b);
    put_u32(buf, a.len() as u32);
    for &c in a {
        put_f64(buf, c);
    }
}

/// Encode a request into one sealed frame.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let (kind, body) = match req {
        Request::Query {
            tenant,
            deadline_us,
            a,
            cmp,
            b,
        } => {
            let mut body = Vec::with_capacity(21 + a.len() * 8);
            encode_predicate(&mut body, *tenant, *deadline_us, a, *cmp, *b);
            (REQ_QUERY, body)
        }
        Request::TopK {
            tenant,
            deadline_us,
            a,
            cmp,
            b,
            k,
        } => {
            let mut body = Vec::with_capacity(25 + a.len() * 8);
            encode_predicate(&mut body, *tenant, *deadline_us, a, *cmp, *b);
            put_u32(&mut body, *k);
            (REQ_TOPK, body)
        }
        Request::Metrics => (REQ_METRICS, Vec::new()),
    };
    frame(kind, body)
}

/// Encode a response into one sealed frame.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let (kind, body) = match resp {
        Response::Matches { ids, provenance } => {
            let mut body = Vec::with_capacity(9 + ids.len() * 4);
            put_provenance(&mut body, provenance);
            put_u32(&mut body, ids.len() as u32);
            for &id in ids {
                put_u32(&mut body, id);
            }
            (RESP_MATCHES, body)
        }
        Response::Neighbors {
            neighbors,
            provenance,
        } => {
            let mut body = Vec::with_capacity(9 + neighbors.len() * 12);
            put_provenance(&mut body, provenance);
            put_u32(&mut body, neighbors.len() as u32);
            for &(id, dist) in neighbors {
                put_u32(&mut body, id);
                put_f64(&mut body, dist);
            }
            (RESP_NEIGHBORS, body)
        }
        Response::Retry { retry_after_us } => {
            let mut body = Vec::with_capacity(4);
            put_u32(&mut body, *retry_after_us);
            (RESP_RETRY, body)
        }
        Response::Overload { queue_depth } => {
            let mut body = Vec::with_capacity(4);
            put_u32(&mut body, *queue_depth);
            (RESP_OVERLOAD, body)
        }
        Response::Error { code, message } => {
            let mut body = Vec::with_capacity(5 + message.len());
            body.push(*code);
            put_u32(&mut body, message.len() as u32);
            body.extend_from_slice(message.as_bytes());
            (RESP_ERROR, body)
        }
        Response::Metrics { json } => {
            let mut body = Vec::with_capacity(4 + json.len());
            put_u32(&mut body, json.len() as u32);
            body.extend_from_slice(json.as_bytes());
            (RESP_METRICS, body)
        }
    };
    frame(kind, body)
}

fn put_provenance(buf: &mut Vec<u8>, p: &Provenance) {
    let mut flags = 0u8;
    if p.partial {
        flags |= FLAG_PARTIAL;
    }
    if p.degraded {
        flags |= FLAG_DEGRADED;
    }
    buf.push(flags);
    put_u32(buf, p.completed);
}

fn frame(kind: u8, body: Vec<u8>) -> Vec<u8> {
    debug_assert!(body.len() <= MAX_BODY);
    let mut out = Vec::with_capacity(FRAME_HEADER + body.len() + CRC_LEN);
    put_u32(&mut out, body.len() as u32);
    out.push(kind);
    out.extend_from_slice(&body);
    seal_vec(&mut out);
    out
}

/// A cursor over a frame body with length-bounded reads.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn f64(&mut self) -> Option<f64> {
        self.take(8)
            .map(|s| f64::from_le_bytes(s.try_into().unwrap()))
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn parse_cmp(tag: u8) -> Option<Cmp> {
    match tag {
        0 => Some(Cmp::Leq),
        1 => Some(Cmp::Geq),
        _ => None,
    }
}

fn parse_predicate(c: &mut Cursor) -> Option<(u32, u32, Vec<f64>, Cmp, f64)> {
    let tenant = c.u32()?;
    let deadline_us = c.u32()?;
    let cmp = parse_cmp(c.u8()?)?;
    let b = c.f64()?;
    let dim = c.u32()? as usize;
    // Bound before allocating: dim f64s must fit in what remains.
    if dim > (c.bytes.len() - c.pos) / 8 {
        return None;
    }
    let a = (0..dim).map(|_| c.f64()).collect::<Option<Vec<_>>>()?;
    Some((tenant, deadline_us, a, cmp, b))
}

/// Decode a request frame body. `None` means malformed.
pub fn decode_request(kind: u8, body: &[u8]) -> Option<Request> {
    let mut c = Cursor::new(body);
    let req = match kind {
        REQ_QUERY => {
            let (tenant, deadline_us, a, cmp, b) = parse_predicate(&mut c)?;
            Request::Query {
                tenant,
                deadline_us,
                a,
                cmp,
                b,
            }
        }
        REQ_TOPK => {
            let (tenant, deadline_us, a, cmp, b) = parse_predicate(&mut c)?;
            let k = c.u32()?;
            Request::TopK {
                tenant,
                deadline_us,
                a,
                cmp,
                b,
                k,
            }
        }
        REQ_METRICS => Request::Metrics,
        _ => return None,
    };
    c.done().then_some(req)
}

fn parse_provenance(c: &mut Cursor) -> Option<Provenance> {
    let flags = c.u8()?;
    let completed = c.u32()?;
    Some(Provenance {
        partial: flags & FLAG_PARTIAL != 0,
        degraded: flags & FLAG_DEGRADED != 0,
        completed,
    })
}

/// Decode a response frame body. `None` means malformed.
pub fn decode_response(kind: u8, body: &[u8]) -> Option<Response> {
    let mut c = Cursor::new(body);
    let resp = match kind {
        RESP_MATCHES => {
            let provenance = parse_provenance(&mut c)?;
            let n = c.u32()? as usize;
            if n > (c.bytes.len() - c.pos) / 4 {
                return None;
            }
            let ids = (0..n).map(|_| c.u32()).collect::<Option<Vec<_>>>()?;
            Response::Matches { ids, provenance }
        }
        RESP_NEIGHBORS => {
            let provenance = parse_provenance(&mut c)?;
            let n = c.u32()? as usize;
            if n > (c.bytes.len() - c.pos) / 12 {
                return None;
            }
            let neighbors = (0..n)
                .map(|_| Some((c.u32()?, c.f64()?)))
                .collect::<Option<Vec<_>>>()?;
            Response::Neighbors {
                neighbors,
                provenance,
            }
        }
        RESP_RETRY => Response::Retry {
            retry_after_us: c.u32()?,
        },
        RESP_OVERLOAD => Response::Overload {
            queue_depth: c.u32()?,
        },
        RESP_ERROR => {
            let code = c.u8()?;
            let len = c.u32()? as usize;
            let message = String::from_utf8(c.take(len)?.to_vec()).ok()?;
            Response::Error { code, message }
        }
        RESP_METRICS => {
            let len = c.u32()? as usize;
            let json = String::from_utf8(c.take(len)?.to_vec()).ok()?;
            Response::Metrics { json }
        }
        _ => return None,
    };
    c.done().then_some(resp)
}

/// Read one frame off a stream: `Ok(Some((kind, body)))` on a sealed,
/// length-bounded frame; `Ok(None)` on clean EOF at a frame boundary;
/// `Err` on I/O failure, an oversized length, or a CRC mismatch (the
/// connection is then unusable — framing is lost).
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<(u8, Vec<u8>)>> {
    let mut header = [0u8; FRAME_HEADER];
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame header",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let body_len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
    let kind = header[4];
    if body_len > MAX_BODY {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame body of {body_len} bytes exceeds the {MAX_BODY} bound"),
        ));
    }
    let mut rest = vec![0u8; body_len + CRC_LEN];
    r.read_exact(&mut rest)?;
    let mut sealed = Vec::with_capacity(FRAME_HEADER + rest.len());
    sealed.extend_from_slice(&header);
    sealed.extend_from_slice(&rest);
    let body = open_sealed(&sealed)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "frame failed its CRC"))?;
    Ok(Some((kind, body[FRAME_HEADER..].to_vec())))
}

/// Write one pre-encoded frame.
pub fn write_frame<W: Write>(w: &mut W, frame: &[u8]) -> io::Result<()> {
    w.write_all(frame)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let frame = encode_request(&req);
        let mut r = io::Cursor::new(frame);
        let (kind, body) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(decode_request(kind, &body), Some(req));
    }

    fn round_trip_response(resp: Response) {
        let frame = encode_response(&resp);
        let mut r = io::Cursor::new(frame);
        let (kind, body) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(decode_response(kind, &body), Some(resp));
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Query {
            tenant: 7,
            deadline_us: 250,
            a: vec![1.0, -2.5, f64::MIN_POSITIVE],
            cmp: Cmp::Leq,
            b: 9.25,
        });
        round_trip_request(Request::TopK {
            tenant: 0,
            deadline_us: 0,
            a: vec![0.5; 16],
            cmp: Cmp::Geq,
            b: -3.0,
            k: 12,
        });
        round_trip_request(Request::Metrics);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Matches {
            ids: vec![3, 1, 4, 1_000_000],
            provenance: Provenance {
                partial: true,
                degraded: false,
                completed: 17,
            },
        });
        round_trip_response(Response::Neighbors {
            neighbors: vec![(9, 0.125), (2, f64::MAX)],
            provenance: Provenance::default(),
        });
        round_trip_response(Response::Retry { retry_after_us: 42 });
        round_trip_response(Response::Overload { queue_depth: 512 });
        round_trip_response(Response::Error {
            code: error_code::INVALID_QUERY,
            message: "zero coefficient on axis 2".into(),
        });
        round_trip_response(Response::Metrics {
            json: "{\"count\":0}".into(),
        });
    }

    #[test]
    fn distances_are_bit_exact() {
        let vals = [0.1 + 0.2, f64::MIN_POSITIVE, 1e-300, 1.0 / 3.0];
        let resp = Response::Neighbors {
            neighbors: vals
                .iter()
                .enumerate()
                .map(|(i, &v)| (i as u32, v))
                .collect(),
            provenance: Provenance::default(),
        };
        let frame = encode_response(&resp);
        let mut r = io::Cursor::new(frame);
        let (kind, body) = read_frame(&mut r).unwrap().unwrap();
        let Some(Response::Neighbors { neighbors, .. }) = decode_response(kind, &body) else {
            panic!("wrong variant");
        };
        for (got, want) in neighbors.iter().zip(&vals) {
            assert_eq!(got.1.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn corrupt_frames_are_rejected() {
        let frame = encode_request(&Request::Metrics);
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x10;
            let mut r = io::Cursor::new(bad);
            match read_frame(&mut r) {
                Err(_) => {}
                Ok(Some((kind, body))) => {
                    // A flip inside the length header can still parse as a
                    // longer/shorter frame only if the CRC also matched —
                    // impossible for a single flip, so anything that
                    // decodes must be a *different* frame. Reject it at
                    // the decode layer instead.
                    assert!(
                        decode_request(kind, &body).is_none(),
                        "flip at {i} produced a valid frame"
                    );
                }
                Ok(None) => {}
            }
        }
    }

    #[test]
    fn truncated_stream_is_eof_not_a_frame() {
        let frame = encode_request(&Request::Metrics);
        let mut r = io::Cursor::new(frame[..frame.len() - 1].to_vec());
        assert!(read_frame(&mut r).is_err());
        let mut empty = io::Cursor::new(Vec::new());
        assert!(read_frame(&mut empty).unwrap().is_none());
    }

    #[test]
    fn oversized_length_is_bounded() {
        let mut bad = Vec::new();
        bad.extend_from_slice(&(MAX_BODY as u32 + 1).to_le_bytes());
        bad.push(REQ_QUERY);
        let mut r = io::Cursor::new(bad);
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn predicate_dim_is_length_bounded() {
        // A body claiming 2^29 coefficients with no bytes behind it must
        // fail before allocating.
        let mut body = Vec::new();
        put_u32(&mut body, 0);
        put_u32(&mut body, 0);
        body.push(0);
        put_f64(&mut body, 1.0);
        put_u32(&mut body, 1 << 29);
        assert_eq!(decode_request(REQ_QUERY, &body), None);
    }
}
