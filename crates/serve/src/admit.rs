//! Admission control: bounded queueing and per-tenant token quotas.
//!
//! Overload must degrade to *typed* rejections — [`Response::Retry`] when
//! a tenant outruns its quota, [`Response::Overload`] when the shared
//! request queue is full — never to unbounded queue growth, latency
//! collapse, or dropped connections. The checks run before a request is
//! enqueued, so a rejected request costs the server one frame decode and
//! nothing else.
//!
//! The `Retry` hint escalates: consecutive rejections of one tenant walk
//! the shared [`planar_core::Backoff`] schedule (capped exponential,
//! deterministic jitter — the same policy replication links use to
//! reconnect), so a client that ignores its hints is told to wait longer
//! and longer instead of hammering the token bucket at a fixed cadence.
//! One admitted request resets the schedule.
//!
//! [`Response::Retry`]: crate::wire::Response::Retry
//! [`Response::Overload`]: crate::wire::Response::Overload

use planar_core::Backoff;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// First escalation step for a rejected tenant's retry hint.
const BACKOFF_BASE_MS: u64 = 1;
/// Ceiling on the escalated retry hint.
const BACKOFF_CAP_MS: u64 = 1_000;

/// Admission-control configuration.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Deepest the shared request queue may grow before new requests are
    /// rejected with `Overload` (queue-depth backpressure).
    pub max_queue: usize,
    /// Most concurrent connections the server accepts; excess connections
    /// receive an `Overload` response and are closed.
    pub max_connections: usize,
    /// Per-tenant sustained request rate (tokens per second);
    /// `f64::INFINITY` disables quotas.
    pub tenant_rate: f64,
    /// Per-tenant burst capacity (bucket depth).
    pub tenant_burst: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            max_queue: 1024,
            max_connections: 256,
            tenant_rate: f64::INFINITY,
            tenant_burst: 64.0,
        }
    }
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last: Instant,
    /// Escalates the retry hint across consecutive rejections.
    backoff: Backoff,
}

/// Token-bucket quota state, one bucket per tenant.
#[derive(Debug)]
pub struct Admission {
    cfg: AdmissionConfig,
    buckets: Mutex<HashMap<u32, Bucket>>,
    /// Process-local clock origin for the backoff schedules.
    origin: Instant,
}

impl Admission {
    /// New controller with the given configuration.
    pub fn new(cfg: AdmissionConfig) -> Self {
        Self {
            cfg,
            buckets: Mutex::new(HashMap::new()),
            origin: Instant::now(),
        }
    }

    /// The configuration this controller enforces.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Try to admit one request from `tenant`. `Ok(())` consumes one
    /// token; `Err(backoff)` means the quota is exhausted and the tenant
    /// should retry after `backoff` — at least the single-token refill
    /// time, escalating under the shared [`Backoff`] schedule while the
    /// tenant keeps getting rejected.
    pub fn admit(&self, tenant: u32) -> Result<(), Duration> {
        if self.cfg.tenant_rate.is_infinite() {
            return Ok(());
        }
        let now = Instant::now();
        let now_ms = now.saturating_duration_since(self.origin).as_millis() as u64;
        let mut buckets = self.buckets.lock().expect("admission lock poisoned");
        let bucket = buckets.entry(tenant).or_insert_with(|| Bucket {
            tokens: self.cfg.tenant_burst,
            last: now,
            backoff: Backoff::new(
                BACKOFF_BASE_MS,
                BACKOFF_CAP_MS,
                0xADA1_77C0 ^ u64::from(tenant),
            ),
        });
        let dt = now.saturating_duration_since(bucket.last).as_secs_f64();
        bucket.tokens = (bucket.tokens + dt * self.cfg.tenant_rate).min(self.cfg.tenant_burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            bucket.backoff.success();
            Ok(())
        } else {
            let deficit = 1.0 - bucket.tokens;
            let refill = Duration::from_secs_f64(deficit / self.cfg.tenant_rate);
            bucket.backoff.failure(now_ms);
            let escalated = Duration::from_millis(bucket.backoff.retry_after_ms(now_ms));
            Err(refill.max(escalated))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_rate_always_admits() {
        let adm = Admission::new(AdmissionConfig::default());
        for _ in 0..10_000 {
            assert!(adm.admit(1).is_ok());
        }
    }

    #[test]
    fn burst_then_reject_then_refill() {
        let adm = Admission::new(AdmissionConfig {
            tenant_rate: 1000.0,
            tenant_burst: 4.0,
            ..AdmissionConfig::default()
        });
        for _ in 0..4 {
            assert!(adm.admit(9).is_ok(), "burst should admit");
        }
        // The bucket is (almost) empty now; a 1000/s refill cannot have
        // restored a whole token within this loop, so the next request
        // is rejected with a sub-millisecond backoff.
        let backoff = adm.admit(9).expect_err("burst exhausted");
        assert!(backoff <= Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        assert!(adm.admit(9).is_ok(), "tokens refill over time");
    }

    #[test]
    fn rejection_hints_escalate_then_reset() {
        let adm = Admission::new(AdmissionConfig {
            tenant_rate: 100.0, // 10 ms refill — small next to the escalated hints
            tenant_burst: 1.0,
            ..AdmissionConfig::default()
        });
        assert!(adm.admit(3).is_ok());
        let first = adm.admit(3).expect_err("bucket exhausted");
        let mut last = first;
        for _ in 0..8 {
            last = adm.admit(3).expect_err("still exhausted");
        }
        assert!(
            last > first,
            "hints should escalate across consecutive rejections ({first:?} → {last:?})"
        );
        // One admitted request resets the schedule.
        std::thread::sleep(Duration::from_millis(15));
        assert!(adm.admit(3).is_ok(), "tokens refilled");
        let after = adm.admit(3).expect_err("exhausted again");
        assert!(
            after < last,
            "an admit should reset the escalation ({after:?} vs {last:?})"
        );
    }

    #[test]
    fn tenants_are_isolated() {
        let adm = Admission::new(AdmissionConfig {
            tenant_rate: 0.001, // effectively no refill during the test
            tenant_burst: 1.0,
            ..AdmissionConfig::default()
        });
        assert!(adm.admit(1).is_ok());
        assert!(adm.admit(1).is_err(), "tenant 1 exhausted");
        assert!(adm.admit(2).is_ok(), "tenant 2 has its own bucket");
    }
}
