//! A hashing-based *approximate* hyperplane-to-nearest-point baseline, in
//! the spirit of the two-vector hyperplane hash of Jain et al. \[14\].
//!
//! The paper's §7.5.2 contrasts the Planar index's exact top-k retrieval
//! with approximate hashing methods; this module provides such a method so
//! the recall gap can be measured (see the `fig_table3` harness and the
//! `active_learning` example).
//!
//! Construction: `L` hash tables, each defined by two random unit vectors
//! `(u, v)` in homogeneous space `(x, 1)` (so hyperplane offsets are
//! handled uniformly). A data point hashes to the 2-bit bucket
//! `[sign(u·x̃), sign(v·x̃)]`; a query hyperplane with normal `w̃ = (w, −b)`
//! probes the bucket `[sign(u·w̃), −sign(v·w̃)]`. Points nearly
//! perpendicular to `w̃` (i.e. near the hyperplane) collide with elevated
//! probability. Candidates from all tables are deduplicated and ranked by
//! true distance; the method is approximate because near points may hash
//! elsewhere in every table.

use planar_core::FeatureTable;
use planar_geom::dot_slices;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One hash table: two homogeneous projection vectors and four 2-bit
/// sign buckets of point ids.
type HashTable = ([Vec<f64>; 2], [Vec<u32>; 4]);

/// A two-vector hyperplane hash index over a fixed pool.
#[derive(Debug, Clone)]
pub struct HyperplaneHash {
    /// Per table: the two projection vectors (homogeneous, dim+1).
    tables: Vec<HashTable>,
    dim: usize,
}

impl HyperplaneHash {
    /// Build `tables` hash tables over the pool.
    pub fn build(pool: &FeatureTable, tables: usize, seed: u64) -> Self {
        let dim = pool.dim();
        let mut rng = StdRng::seed_from_u64(seed);
        let random_unit = |rng: &mut StdRng| -> Vec<f64> {
            let v: Vec<f64> = (0..dim + 1)
                .map(|_| crate::hashing::gaussian(rng))
                .collect();
            let norm = planar_geom::norm(&v).max(f64::MIN_POSITIVE);
            v.into_iter().map(|x| x / norm).collect()
        };
        let mut built = Vec::with_capacity(tables);
        for _ in 0..tables {
            let u = random_unit(&mut rng);
            let v = random_unit(&mut rng);
            let mut buckets: [Vec<u32>; 4] = Default::default();
            for (id, row) in pool.iter() {
                let b = Self::data_bucket(&u, &v, row);
                buckets[b].push(id);
            }
            built.push(([u, v], buckets));
        }
        Self { tables: built, dim }
    }

    fn homogeneous_dot(vector: &[f64], point: &[f64]) -> f64 {
        dot_slices(&vector[..point.len()], point) + vector[point.len()]
    }

    fn data_bucket(u: &[f64], v: &[f64], row: &[f64]) -> usize {
        let b0 = usize::from(Self::homogeneous_dot(u, row) >= 0.0);
        let b1 = usize::from(Self::homogeneous_dot(v, row) >= 0.0);
        b0 << 1 | b1
    }

    fn query_bucket(u: &[f64], v: &[f64], w: &[f64], b: f64) -> usize {
        // Homogeneous query normal (w, −b).
        let mut wt = w.to_vec();
        wt.push(-b);
        let q0 = usize::from(dot_slices(u, &wt) >= 0.0);
        let q1 = usize::from(dot_slices(v, &wt) < 0.0); // flipped second bit
        q0 << 1 | q1
    }

    /// Approximate top-k nearest satisfying points: collect bucket
    /// candidates from every table, rank by true distance, keep `k`.
    /// `satisfies`/`distance` come from the caller's query semantics.
    pub fn top_k(
        &self,
        pool: &FeatureTable,
        w: &[f64],
        b: f64,
        k: usize,
        satisfies: impl Fn(&[f64]) -> bool,
    ) -> Vec<(u32, f64)> {
        debug_assert_eq!(w.len(), self.dim);
        let norm = planar_geom::norm(w).max(f64::MIN_POSITIVE);
        let mut seen = std::collections::HashSet::new();
        let mut candidates: Vec<(u32, f64)> = Vec::new();
        for ([u, v], buckets) in &self.tables {
            let bucket = Self::query_bucket(u, v, w, b);
            for &id in &buckets[bucket] {
                if seen.insert(id) {
                    let row = pool.row(id);
                    if satisfies(row) {
                        let dist = (dot_slices(w, row) - b).abs() / norm;
                        candidates.push((id, dist));
                    }
                }
            }
        }
        candidates.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        candidates.truncate(k);
        candidates
    }

    /// Number of hash tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }
}

/// One standard Gaussian sample (Box–Muller; local copy to keep this crate
/// independent of `planar-datagen`).
pub(crate) fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = loop {
        let u: f64 = rng.random();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Recall of an approximate top-k result against the exact one: the
/// fraction of exact ids that the approximate result found.
pub fn recall(exact: &[(u32, f64)], approx: &[(u32, f64)]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let approx_ids: std::collections::HashSet<u32> = approx.iter().map(|(id, _)| *id).collect();
    let hit = exact
        .iter()
        .filter(|(id, _)| approx_ids.contains(id))
        .count();
    hit as f64 / exact.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use planar_core::{Cmp, InequalityQuery, SeqScan, TopKQuery};

    fn pool(n: usize) -> FeatureTable {
        let mut rng = StdRng::seed_from_u64(77);
        FeatureTable::from_rows(
            3,
            (0..n)
                .map(|_| (0..3).map(|_| rng.random_range(0.0..10.0)).collect())
                .collect::<Vec<Vec<f64>>>(),
        )
        .unwrap()
    }

    #[test]
    fn candidates_are_ranked_and_satisfying() {
        let p = pool(500);
        let h = HyperplaneHash::build(&p, 8, 1);
        let (w, b) = (vec![1.0, 1.0, 1.0], 15.0);
        let q = InequalityQuery::new(w.clone(), Cmp::Leq, b).unwrap();
        let got = h.top_k(&p, &w, b, 10, |row| q.satisfies(row));
        assert!(got.len() <= 10);
        for pair in got.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
        for (id, _) in &got {
            assert!(q.satisfies(p.row(*id)));
        }
    }

    #[test]
    fn more_tables_no_worse_recall_on_average() {
        let p = pool(2000);
        let (w, b) = (vec![1.0, 2.0, 0.5], 18.0);
        let q = InequalityQuery::new(w.clone(), Cmp::Leq, b).unwrap();
        let exact = SeqScan::new(&p)
            .top_k(&TopKQuery::new(q.clone(), 20).unwrap())
            .unwrap();
        let mut recalls = Vec::new();
        for tables in [1, 4, 16, 64] {
            let mut sum = 0.0;
            for seed in 0..5 {
                let h = HyperplaneHash::build(&p, tables, seed);
                let approx = h.top_k(&p, &w, b, 20, |row| q.satisfies(row));
                sum += recall(&exact, &approx);
            }
            recalls.push(sum / 5.0);
        }
        // Monotone trend (allowing small noise): last ≥ first, and the
        // 64-table variant should recover most of the exact set.
        assert!(recalls[3] >= recalls[0], "{recalls:?}");
        assert!(recalls[3] > 0.5, "{recalls:?}");
        // But it is genuinely approximate — typically below-perfect with
        // few tables.
        assert!(recalls[0] < 1.0, "{recalls:?}");
    }

    #[test]
    fn recall_helper() {
        let exact = vec![(1, 0.1), (2, 0.2)];
        assert_eq!(recall(&exact, &[(1, 0.1)]), 0.5);
        assert_eq!(recall(&exact, &exact), 1.0);
        assert_eq!(recall(&[], &[]), 1.0);
    }
}
