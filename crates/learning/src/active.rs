//! The pool-based active-learning loop (paper §7.5.2, citing Settles \[26\]).
//!
//! Each round, uncertainty sampling queries the oracle for the labels of
//! the `k` unlabeled points nearest the current decision hyperplane on
//! each side, updates the perceptron with them, and measures accuracy on
//! the full pool. Retrieval goes through the Planar index — exactly — and
//! the per-round statistics record how much of the pool the index touched
//! (the quantity of Table 3).

use crate::classifier::LinearClassifier;
use crate::retrieval::{Side, TopKRetriever};
use crate::{LearningError, Result};
use planar_core::{FeatureTable, ParameterDomain};
use std::collections::HashSet;

/// Per-round outcome of the active-learning loop.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundReport {
    /// Round number (1-based).
    pub round: usize,
    /// Pool accuracy of the classifier *after* this round's updates.
    pub accuracy: f64,
    /// Cumulative labels requested from the oracle.
    pub labels_used: usize,
    /// Fraction of the pool touched by this round's two retrievals, in
    /// percent (Table 3's "checked points" metric).
    pub checked_percentage: f64,
}

/// The labeling oracle: the ground-truth concept queried for labels.
pub type Oracle = Box<dyn Fn(&[f64]) -> bool>;

/// Pool-based active learner with exact Planar-index retrieval.
pub struct ActiveLearner {
    retriever: TopKRetriever,
    oracle: Oracle,
    classifier: LinearClassifier,
    labeled: HashSet<u32>,
    labeled_data: Vec<(Vec<f64>, bool)>,
}

/// Maximum passes over the labeled set when retraining each round (stops
/// early once the labeled set is separated).
const RETRAIN_EPOCHS: usize = 50;

impl ActiveLearner {
    /// Create a learner over `pool` with the ground-truth `oracle` and
    /// weight domain `domain` (the octant the classifier's weights live
    /// in).
    ///
    /// # Errors
    ///
    /// [`LearningError::EmptyPool`] or index-construction errors.
    pub fn new(
        pool: FeatureTable,
        domain: ParameterDomain,
        budget: usize,
        initial_threshold: f64,
        oracle: impl Fn(&[f64]) -> bool + 'static,
    ) -> Result<Self> {
        if pool.is_empty() {
            return Err(LearningError::EmptyPool);
        }
        let dim = pool.dim();
        // Feature scale for the classifier's homogeneous bias: the pool's
        // mean row norm.
        let scale = pool
            .iter()
            .map(|(_, row)| planar_geom::norm(row))
            .sum::<f64>()
            / pool.len() as f64;
        let retriever = TopKRetriever::build(pool, domain, budget)?;
        Ok(Self {
            retriever,
            oracle: Box::new(oracle),
            classifier: LinearClassifier::new(dim, initial_threshold, 1.0)?.with_scale(scale),
            labeled: HashSet::new(),
            labeled_data: Vec::new(),
        })
    }

    /// The current classifier.
    pub fn classifier(&self) -> &LinearClassifier {
        &self.classifier
    }

    /// Number of oracle labels consumed so far.
    pub fn labels_used(&self) -> usize {
        self.labeled.len()
    }

    /// Run one uncertainty-sampling round with `k` queries per side;
    /// returns the round report.
    ///
    /// # Errors
    ///
    /// Retrieval errors.
    pub fn step(&mut self, round: usize, k: usize) -> Result<RoundReport> {
        let w = self.classifier.weights().to_vec();
        let b = self.classifier.bias();
        let mut checked = 0usize;
        let mut batch: Vec<u32> = Vec::new();
        for side in [Side::Positive, Side::Negative] {
            let (neighbors, stats) = self.retriever.closest(&w, b, side, k)?;
            checked += stats.checked();
            batch.extend(neighbors.into_iter().map(|(id, _)| id));
        }
        // Label the batch (new points only), then retrain on everything
        // labeled so far — the standard active-learning round.
        for id in batch {
            if self.labeled.insert(id) {
                let row = self.retriever.pool().row(id).to_vec();
                let label = (self.oracle)(&row);
                self.labeled_data.push((row, label));
            }
        }
        for _ in 0..RETRAIN_EPOCHS {
            let mut mistakes = 0;
            for (row, label) in &self.labeled_data {
                if self.classifier.update(row, *label) {
                    mistakes += 1;
                }
            }
            if mistakes == 0 {
                break;
            }
        }
        let accuracy = self.pool_accuracy();
        Ok(RoundReport {
            round,
            accuracy,
            labels_used: self.labeled.len(),
            checked_percentage: 100.0 * checked as f64
                / (2 * self.retriever.pool().len()).max(1) as f64,
        })
    }

    /// Run `rounds` rounds with `k` labels per side per round.
    ///
    /// # Errors
    ///
    /// Retrieval errors.
    pub fn run(&mut self, rounds: usize, k: usize) -> Result<Vec<RoundReport>> {
        (1..=rounds).map(|r| self.step(r, k)).collect()
    }

    /// Accuracy of the current classifier against the oracle over the
    /// whole pool.
    pub fn pool_accuracy(&self) -> f64 {
        let pool = self.retriever.pool();
        let correct = pool
            .iter()
            .filter(|(_, row)| self.classifier.predict(row) == (self.oracle)(row))
            .count();
        correct as f64 / pool.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform_pool(n: usize, dim: usize, seed: u64) -> FeatureTable {
        let mut rng = StdRng::seed_from_u64(seed);
        FeatureTable::from_rows(
            dim,
            (0..n)
                .map(|_| (0..dim).map(|_| rng.random_range(1.0..100.0)).collect())
                .collect::<Vec<Vec<f64>>>(),
        )
        .unwrap()
    }

    #[test]
    fn active_learning_improves_accuracy() {
        let pool = uniform_pool(2000, 3, 9);
        let domain = ParameterDomain::uniform_continuous(3, 0.2, 5.0).unwrap();
        // Ground truth: 2x + y + 3z ≥ 300.
        let mut learner = ActiveLearner::new(pool, domain, 10, 150.0, |x| {
            2.0 * x[0] + x[1] + 3.0 * x[2] >= 300.0
        })
        .unwrap();
        let initial = learner.pool_accuracy();
        let reports = learner.run(40, 5).unwrap();
        let last = reports.last().unwrap();
        assert!(
            last.accuracy > initial.max(0.9),
            "initial {initial}, final {}",
            last.accuracy
        );
        // Uncertainty sampling labels a small fraction of the pool.
        assert!(last.labels_used < 500, "labels {}", last.labels_used);
        // Reports carry consistent metadata.
        assert_eq!(reports.len(), 40);
        assert!(reports.iter().all(|r| r.checked_percentage <= 100.0));
        assert!(reports
            .windows(2)
            .all(|w| w[0].labels_used <= w[1].labels_used));
    }

    #[test]
    fn empty_pool_rejected() {
        let pool = FeatureTable::new(2).unwrap();
        let domain = ParameterDomain::uniform_continuous(2, 0.5, 2.0).unwrap();
        assert!(matches!(
            ActiveLearner::new(pool, domain, 4, 1.0, |_| true),
            Err(LearningError::EmptyPool)
        ));
    }

    #[test]
    fn labels_are_never_requested_twice() {
        let pool = uniform_pool(50, 2, 3);
        let domain = ParameterDomain::uniform_continuous(2, 0.5, 2.0).unwrap();
        let mut learner =
            ActiveLearner::new(pool, domain, 4, 100.0, |x| x[0] + x[1] >= 100.0).unwrap();
        // More rounds than the pool can supply fresh labels for.
        learner.run(30, 5).unwrap();
        assert!(learner.labels_used() <= 50);
    }
}
