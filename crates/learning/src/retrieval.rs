//! Exact hyperplane-to-closest-points retrieval through the Planar index.
//!
//! Given the classifier hyperplane `⟨w, x⟩ = b`, uncertainty sampling wants
//! the `k` unlabeled points nearest the hyperplane on each side: the
//! positive side is the top-k query with constraint `⟨w, x⟩ ≥ b`, the
//! negative side with `≤` (paper §6). The identity feature map applies —
//! Problem 2 reduces to the hyperplane-to-nearest-point query of [14, 18],
//! answered here exactly.

use crate::Result;
use planar_core::{
    Cmp, FeatureTable, IndexConfig, InequalityQuery, ParameterDomain, PlanarIndexSet, SeqScan,
    TopKQuery, VecStore,
};

/// Which side of the hyperplane to retrieve from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Points with `⟨w, x⟩ ≥ b` (predicted positive).
    Positive,
    /// Points with `⟨w, x⟩ ≤ b` (predicted negative).
    Negative,
}

/// Exact top-k retriever over a fixed pool.
#[derive(Debug, Clone)]
pub struct TopKRetriever {
    set: PlanarIndexSet<VecStore>,
    pool: FeatureTable,
}

impl TopKRetriever {
    /// Index a pool of points for hyperplanes whose weights fall in
    /// `domain`.
    ///
    /// # Errors
    ///
    /// Index-construction errors.
    pub fn build(pool: FeatureTable, domain: ParameterDomain, budget: usize) -> Result<Self> {
        let set = PlanarIndexSet::build(pool.clone(), domain, IndexConfig::with_budget(budget))?;
        Ok(Self { set, pool })
    }

    /// The `k` points nearest the hyperplane `⟨w, x⟩ = b` on `side`,
    /// sorted by ascending distance — via the Planar index (Algorithm 2).
    ///
    /// # Errors
    ///
    /// Query validation errors.
    pub fn closest(
        &self,
        w: &[f64],
        b: f64,
        side: Side,
        k: usize,
    ) -> Result<(Vec<(u32, f64)>, planar_core::index::TopKStats)> {
        let cmp = match side {
            Side::Positive => Cmp::Geq,
            Side::Negative => Cmp::Leq,
        };
        let q = TopKQuery::new(InequalityQuery::new(w.to_vec(), cmp, b)?, k)?;
        let out = self.set.top_k(&q)?;
        Ok((out.neighbors, out.stats))
    }

    /// The same retrieval by brute force (the baseline of Table 3).
    ///
    /// # Errors
    ///
    /// Query validation errors.
    pub fn closest_scan(&self, w: &[f64], b: f64, side: Side, k: usize) -> Result<Vec<(u32, f64)>> {
        let cmp = match side {
            Side::Positive => Cmp::Geq,
            Side::Negative => Cmp::Leq,
        };
        let q = TopKQuery::new(InequalityQuery::new(w.to_vec(), cmp, b)?, k)?;
        Ok(SeqScan::new(&self.pool).top_k(&q)?)
    }

    /// The pool being indexed.
    pub fn pool(&self) -> &FeatureTable {
        &self.pool
    }

    /// The underlying index set.
    pub fn index_set(&self) -> &PlanarIndexSet<VecStore> {
        &self.set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> FeatureTable {
        FeatureTable::from_rows(
            2,
            vec![
                vec![1.0, 1.0], // margin to x+y=5: -3
                vec![2.0, 2.9], // -0.1
                vec![2.6, 2.5], // +0.1
                vec![6.0, 6.0], // +7
                vec![2.5, 2.5], // 0 (on the plane)
            ],
        )
        .unwrap()
    }

    fn retriever() -> TopKRetriever {
        TopKRetriever::build(
            pool(),
            ParameterDomain::uniform_continuous(2, 0.5, 2.0).unwrap(),
            8,
        )
        .unwrap()
    }

    #[test]
    fn closest_on_each_side() {
        let r = retriever();
        let (pos, _) = r.closest(&[1.0, 1.0], 5.0, Side::Positive, 2).unwrap();
        // On-plane point satisfies ≥ and has distance 0.
        assert_eq!(pos[0].0, 4);
        assert_eq!(pos[1].0, 2);
        let (neg, _) = r.closest(&[1.0, 1.0], 5.0, Side::Negative, 2).unwrap();
        assert_eq!(neg[0].0, 4); // on-plane also satisfies ≤
        assert_eq!(neg[1].0, 1);
    }

    #[test]
    fn index_and_scan_agree() {
        let r = retriever();
        for side in [Side::Positive, Side::Negative] {
            for k in [1, 3, 10] {
                let (idx, _) = r.closest(&[1.3, 0.8], 4.0, side, k).unwrap();
                let scan = r.closest_scan(&[1.3, 0.8], 4.0, side, k).unwrap();
                assert_eq!(idx, scan, "side {side:?} k {k}");
            }
        }
    }

    #[test]
    fn stats_track_checked_points() {
        let r = retriever();
        let (_, stats) = r.closest(&[1.0, 1.0], 5.0, Side::Negative, 1).unwrap();
        assert!(stats.checked() <= r.pool().len());
        assert!(stats.checked_percentage() <= 100.0);
    }
}
