//! # planar-learning
//!
//! The pool-based active-learning application of the Planar index (paper
//! §7.5.2, Table 3).
//!
//! In pool-based active learning with uncertainty sampling, each round asks
//! for the unlabeled points *closest to the current classifier hyperplane*
//! on each side — exactly the paper's top-k nearest-neighbor query
//! (Problem 2) with the identity feature map. The paper's point is that the
//! Planar index answers this **exactly** for any `k`, unlike the
//! hashing-based approximate methods of Jain et al. \[14\] and Liu et
//! al. \[18\], while still beating a sequential scan.
//!
//! This crate provides:
//!
//! * [`classifier::LinearClassifier`] — a perceptron-trained linear model
//!   (weights kept positive so its hyperplane stays inside the indexed
//!   octant; see the module docs for why this is the right setup here);
//! * [`retrieval::TopKRetriever`] — exact hyperplane-to-closest-points
//!   retrieval through a `PlanarIndexSet`, with a scan twin for timing
//!   comparisons;
//! * [`hashing::HyperplaneHash`] — a simplified two-vector hyperplane hash
//!   in the spirit of \[14\], the *approximate* baseline whose recall the
//!   exact index is compared against;
//! * [`active::ActiveLearner`] — the full uncertainty-sampling loop
//!   producing per-round accuracy and retrieval statistics.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod active;
pub mod classifier;
pub mod hashing;
pub mod retrieval;

pub use active::{ActiveLearner, RoundReport};
pub use classifier::LinearClassifier;
pub use hashing::HyperplaneHash;
pub use retrieval::{Side, TopKRetriever};

/// Errors of the learning layer.
#[derive(Debug, Clone, PartialEq)]
pub enum LearningError {
    /// The pool is empty.
    EmptyPool,
    /// Dimensionality mismatch between pool and classifier.
    DimensionMismatch {
        /// expected dimensionality
        expected: usize,
        /// found dimensionality
        found: usize,
    },
    /// An underlying index error.
    Index(planar_core::PlanarError),
}

impl core::fmt::Display for LearningError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LearningError::EmptyPool => write!(f, "pool must be non-empty"),
            LearningError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            LearningError::Index(e) => write!(f, "index error: {e}"),
        }
    }
}

impl std::error::Error for LearningError {}

impl From<planar_core::PlanarError> for LearningError {
    fn from(e: planar_core::PlanarError) -> Self {
        LearningError::Index(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = core::result::Result<T, LearningError>;
