//! A perceptron-trained linear classifier whose hyperplane drives
//! uncertainty sampling.
//!
//! ## Why positive weights?
//!
//! A `PlanarIndexSet` is prepared for one hyper-octant of query
//! coefficients (§4.5) — the sign pattern of the classifier weights. To
//! keep every round's retrieval on the indexed path, the classifier
//! projects its weights onto the positive orthant after each update
//! (scoring-model style: features are oriented so that more is more
//! positive). Ground-truth concepts in the experiments are drawn the same
//! way, so the projection costs no accuracy there. A sign-changing
//! classifier would still be answered *correctly* (the set transparently
//! falls back to a scan for out-of-octant queries); it would only lose the
//! speedup.

use crate::{LearningError, Result};
use planar_geom::dot_slices;

/// Smallest weight value after projection (weights must stay strictly
/// positive to remain inside the indexed octant).
const MIN_WEIGHT: f64 = 1e-6;

/// A linear classifier `sign(⟨w, x⟩ − b)` with positive weights, trained
/// with passive-aggressive (PA-I) updates on the homogeneous
/// representation `(x, scale)`.
///
/// `scale` should match the typical norm of the feature vectors (e.g. the
/// pool's mean row norm): it puts the bias feature on the same footing as
/// the data features, so the threshold can move as fast as the weights —
/// with a unit bias feature and 100-magnitude data, the threshold would
/// crawl.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearClassifier {
    w: Vec<f64>,
    b: f64,
    lr: f64,
    scale: f64,
}

impl LinearClassifier {
    /// A fresh classifier with uniform weights, threshold `b`, PA
    /// aggressiveness cap `learning_rate`, and unit feature scale.
    ///
    /// # Errors
    ///
    /// [`LearningError::EmptyPool`] for zero dimensions.
    pub fn new(dim: usize, b: f64, learning_rate: f64) -> Result<Self> {
        if dim == 0 {
            return Err(LearningError::EmptyPool);
        }
        Ok(Self {
            w: vec![1.0; dim],
            b,
            lr: learning_rate,
            scale: 1.0,
        })
    }

    /// Set the feature scale (typical feature-vector norm).
    #[must_use]
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale.max(f64::MIN_POSITIVE);
        self
    }

    /// The weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.w
    }

    /// The threshold `b`.
    pub fn bias(&self) -> f64 {
        self.b
    }

    /// Predicted label: `true` = positive side (`⟨w, x⟩ ≥ b`).
    pub fn predict(&self, x: &[f64]) -> bool {
        dot_slices(&self.w, x) >= self.b
    }

    /// Signed margin `⟨w, x⟩ − b`.
    pub fn margin(&self, x: &[f64]) -> f64 {
        dot_slices(&self.w, x) - self.b
    }

    /// PA-I update on one labeled example; returns whether the example had
    /// positive hinge loss (and thus an update happened).
    ///
    /// With `y ∈ {−1, +1}` and hinge loss `ℓ = max(0, 1 − y·margin)`, the
    /// step is `τ = min(C, ℓ / (|x|² + scale²))` — the smallest step (up to
    /// the aggressiveness cap `C`) achieving unit margin on this example in
    /// the homogeneous representation `(x, scale)`. This scales correctly
    /// with feature magnitude, which matters here: uncertainty sampling
    /// feeds the classifier boundary points, where fixed-step perceptrons
    /// oscillate. Weights are re-projected onto the positive orthant.
    pub fn update(&mut self, x: &[f64], label: bool) -> bool {
        let y = if label { 1.0 } else { -1.0 };
        let loss = (1.0 - y * self.margin(x)).max(0.0);
        if loss <= 0.0 {
            return false;
        }
        let norm_sq = dot_slices(x, x) + self.scale * self.scale;
        let tau = (loss / norm_sq).min(self.lr);
        for (wi, xi) in self.w.iter_mut().zip(x) {
            *wi = (*wi + y * tau * xi).max(MIN_WEIGHT);
        }
        self.b -= y * tau * self.scale * self.scale;
        true
    }

    /// Accuracy against a labeled set.
    pub fn accuracy(&self, xs: &[Vec<f64>], labels: &[bool]) -> f64 {
        if xs.is_empty() {
            return 1.0;
        }
        let correct = xs
            .iter()
            .zip(labels)
            .filter(|(x, &l)| self.predict(x) == l)
            .count();
        correct as f64 / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(LinearClassifier::new(0, 0.0, 0.1).is_err());
        let c = LinearClassifier::new(3, 5.0, 0.1).unwrap();
        assert_eq!(c.weights(), &[1.0, 1.0, 1.0]);
        assert_eq!(c.bias(), 5.0);
    }

    #[test]
    fn predict_and_margin() {
        let c = LinearClassifier::new(2, 3.0, 0.1).unwrap();
        assert!(c.predict(&[2.0, 2.0])); // 4 ≥ 3
        assert!(!c.predict(&[1.0, 1.0])); // 2 < 3
        assert_eq!(c.margin(&[2.0, 2.0]), 1.0);
    }

    #[test]
    fn update_only_on_mistakes() {
        let mut c = LinearClassifier::new(2, 3.0, 0.5).unwrap();
        assert!(!c.update(&[2.0, 2.0], true)); // already correct
        assert!(c.update(&[2.0, 2.0], false)); // force negative
        assert!(c.weights().iter().all(|&w| w > 0.0), "projection");
    }

    #[test]
    fn learns_a_separable_positive_concept() {
        // Truth: 2x + y ≥ 10.
        let truth = |x: &[f64]| 2.0 * x[0] + x[1] >= 10.0;
        let mut rng_state = 123456789u64;
        let mut next = || {
            // Tiny LCG keeps this test dependency-free.
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng_state >> 33) as f64) / (u32::MAX as f64) * 10.0
        };
        let xs: Vec<Vec<f64>> = (0..500).map(|_| vec![next(), next()]).collect();
        let labels: Vec<bool> = xs.iter().map(|x| truth(x)).collect();
        let mut c = LinearClassifier::new(2, 5.0, 1.0).unwrap().with_scale(7.0);
        for _ in 0..50 {
            for (x, &l) in xs.iter().zip(&labels) {
                c.update(x, l);
            }
        }
        let acc = c.accuracy(&xs, &labels);
        assert!(acc > 0.93, "accuracy {acc}");
    }

    #[test]
    fn accuracy_of_empty_set_is_one() {
        let c = LinearClassifier::new(2, 0.0, 0.1).unwrap();
        assert_eq!(c.accuracy(&[], &[]), 1.0);
    }
}
