#!/usr/bin/env bash
# Repo-wide gate: formatting, lints, and the full test suite.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== fault suite (injection + durability + WAL crash proptests) =="
cargo test -p planar-core -q --features fault-injection \
  --test fault_injection --test durability_proptests --test wal_crash_proptests

echo "== planar-core unit tests with fault injection compiled in =="
cargo test -p planar-core -q --features fault-injection --lib

echo "All checks passed."
