#!/usr/bin/env bash
# Repo-wide gate: formatting, lints, and the full test suite.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== fault suite (injection + durability + WAL crash proptests) =="
cargo test -p planar-core -q --features fault-injection \
  --test fault_injection --test durability_proptests --test wal_crash_proptests

echo "== concurrency suite (snapshot isolation + group-commit crash sweep) =="
cargo test -p planar-core -q --test concurrent_proptests

echo "== replication suite (transport fault sweep + failover promotion) =="
cargo test -p planar-core -q --features fault-injection \
  --test replication_faults --test failover_proptests

echo "== chaos suite (socket-level chaos proxy sweep + quorum crash/reopen) =="
cargo test -p planar-serve -q --test netrepl_chaos
cargo test -p planar-core -q --features fault-injection --lib quorum

echo "== quantization suite (quantized ≡ unquantized twins, both dispatches) =="
cargo test -p planar-core -q --test quant_proptests
PLANAR_FORCE_PORTABLE=1 cargo test -p planar-core -q --test quant_proptests

echo "== serving suite (loopback wire round trips, coalescing identity, overload) =="
cargo test -p planar-serve -q

echo "== planar-core unit tests with fault injection compiled in =="
cargo test -p planar-core -q --features fault-injection --lib

echo "== ThreadSanitizer smoke over epoch publish/reclaim (nightly) =="
# TSan needs an instrumented std (-Zbuild-std), which needs the nightly
# rust-src component; without it std's internals drown the report in
# false positives, so skip rather than mislead.
sysroot="$(rustc +nightly --print sysroot 2>/dev/null || true)"
if [ -n "${sysroot}" ] && [ -f "${sysroot}/lib/rustlib/src/rust/library/Cargo.lock" ]; then
  RUSTFLAGS="-Zsanitizer=thread" cargo +nightly test -p planar-core --lib tsan_smoke \
    -Zbuild-std --target x86_64-unknown-linux-gnu
else
  echo "   nightly rust-src not installed; skipping TSan smoke (CI 'concurrency' job runs it)"
fi

echo "All checks passed."
